//! Raw-performance scenario: the Figure 4 / Figure 5 measurements — switch
//! throughput and end-to-end latency with the switch doing nothing, encoding
//! or decoding.
//!
//! Run with:
//! ```sh
//! cargo run --release --example line_rate_switch
//! ```

use zipline_repro::zipline::experiment::latency::{
    run_latency_experiment, LatencyExperimentConfig,
};
use zipline_repro::zipline::experiment::learning::{
    run_learning_experiment, LearningExperimentConfig,
};
use zipline_repro::zipline::experiment::throughput::{
    run_throughput_experiment, ThroughputExperimentConfig,
};

fn main() {
    // ---------------------------------------------------------------- Fig 4
    let throughput_config = ThroughputExperimentConfig {
        frames_per_run: 20_000,
        ..ThroughputExperimentConfig::paper_default()
    };
    println!("Figure 4 — observed network throughput (generator capped at 7 Mpkt/s):");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "op", "frame [B]", "Gbit/s", "Mpkt/s"
    );
    let results = run_throughput_experiment(&throughput_config).expect("throughput experiment");
    for r in &results {
        println!(
            "{:<8} {:>10} {:>12.1} {:>12.2}",
            r.operation.label(),
            r.frame_size,
            r.gbps,
            r.mpps
        );
        assert_eq!(
            r.frames_dropped, 0,
            "the switch must never drop at line rate"
        );
    }

    // ---------------------------------------------------------------- Fig 5
    let latency_config = LatencyExperimentConfig::paper_default();
    println!("\nFigure 5 — end-to-end RTT via the switch:");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "op", "mean [µs]", "min [µs]", "max [µs]"
    );
    let results = run_latency_experiment(&latency_config).expect("latency experiment");
    for r in &results {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2}",
            r.operation.label(),
            r.mean_rtt.as_micros_f64(),
            r.min_rtt.as_micros_f64(),
            r.max_rtt.as_micros_f64()
        );
    }

    // ------------------------------------------------- dynamic learning
    let learning_config = LearningExperimentConfig {
        repetitions: 5,
        ..LearningExperimentConfig::paper_default()
    };
    let result = run_learning_experiment(&learning_config).expect("learning experiment");
    println!(
        "\nDynamic learning: a new basis-ID pair becomes effective after {:.2} ± {:.2} ms \
         (paper: 1.77 ± 0.08 ms)",
        result.mean_delay.as_millis_f64(),
        result.stddev.as_millis_f64(),
    );
    println!(
        "packets of the same basis that stayed uncompressed while learning: {:?}",
        result.uncompressed_during_learning
    );
}
