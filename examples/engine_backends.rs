//! # Backend matrix: GD vs deflate vs passthrough, one generic pipeline
//!
//! The ZipLine paper's Figure 3 compares Generalized Deduplication against
//! the gzip tool offline. With the `CompressionBackend` abstraction the
//! comparison runs *live*: the same generic [`EngineStream`] drives the
//! paper's sensor and campus-DNS workloads through
//!
//! * [`GdBackend`] — the sharded GD engine (8 shards, 4 workers),
//! * [`DeflateBackend`] — gzip, one member per 8 KiB batch,
//! * [`PassthroughBackend`] — the ratio floor (1.0 by construction),
//!
//! and prints compression ratio and throughput side by side. Every backend
//! is checked for a byte-exact round trip through its mirrored
//! [`EngineDecompressor`] before its row is reported.
//!
//! Run with:
//! ```sh
//! cargo run --release --example engine_backends
//! ```
//!
//! [`GdBackend`]: zipline_repro::zipline_engine::GdBackend
//! [`DeflateBackend`]: zipline_repro::zipline_engine::DeflateBackend
//! [`PassthroughBackend`]: zipline_repro::zipline_engine::PassthroughBackend
//! [`EngineStream`]: zipline_repro::zipline_engine::EngineStream
//! [`EngineDecompressor`]: zipline_repro::zipline_engine::EngineDecompressor

use std::time::Instant;

use zipline_repro::zipline_engine::{
    CompressionBackend, CompressionEngine, DeflateBackend, EngineBuilder, EngineDecompressor,
    PassthroughBackend,
};
use zipline_repro::zipline_gd::packet::PacketType;
use zipline_repro::zipline_traces::{
    ChunkWorkload, DnsWorkload, DnsWorkloadConfig, SensorWorkload, SensorWorkloadConfig,
};

/// One row of the matrix: a workload streamed through one backend.
struct Row {
    backend: &'static str,
    bytes_in: u64,
    wire_bytes: u64,
    payloads: u64,
    micros: u128,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.wire_bytes as f64 / self.bytes_in as f64
    }

    fn mib_per_s(&self) -> f64 {
        let secs = self.micros as f64 / 1e6;
        (self.bytes_in as f64 / (1024.0 * 1024.0)) / secs.max(1e-9)
    }
}

/// Streams `workload` through `engine`, verifies the byte-exact round trip
/// against the mirrored decompressor, and returns the row. One generic
/// function covers every backend — that is the point of the trait.
fn run_backend<B: CompressionBackend>(
    name: &'static str,
    mut engine: CompressionEngine<B>,
    mut decoder: EngineDecompressor<B>,
    batch_units: usize,
    workload: &dyn ChunkWorkload,
) -> Row {
    let mut wire: Vec<(PacketType, Vec<u8>)> = Vec::new();
    let start = Instant::now();
    let mut stream = zipline_repro::zipline_engine::EngineStream::new(
        &mut engine,
        batch_units,
        |packet_type, bytes: &[u8]| wire.push((packet_type, bytes.to_vec())),
    );
    stream.consume_workload(workload).expect("workload streams");
    let summary = stream.finish().expect("stream flushes");
    let micros = start.elapsed().as_micros();

    let mut restored = Vec::new();
    for (packet_type, bytes) in &wire {
        decoder
            .restore_payload_into(*packet_type, bytes, &mut restored)
            .expect("payload decodes");
    }
    let original: Vec<u8> = workload.chunks().flatten().collect();
    assert_eq!(restored, original, "{name}: lossless round trip");

    Row {
        backend: name,
        bytes_in: summary.bytes_in,
        wire_bytes: summary.wire_bytes,
        payloads: summary.payloads_emitted,
        micros,
    }
}

fn run_workload(title: &str, workload: &dyn ChunkWorkload) {
    println!("== {title} ==");
    let gd_builder = EngineBuilder::new().shards(8).workers(4);
    let gd_decoder = gd_builder.build_decompressor().expect("valid GD decoder");
    let gd_engine = gd_builder.build().expect("valid GD engine");
    let rows = [
        run_backend(
            "gd", gd_engine, gd_decoder, 256, // chunks per batch
            workload,
        ),
        run_backend(
            "deflate",
            EngineBuilder::new()
                .backend(DeflateBackend::default())
                .build()
                .expect("valid deflate engine"),
            EngineBuilder::new()
                .backend(DeflateBackend::default())
                .build_decompressor()
                .expect("valid deflate decoder"),
            8192, // bytes per gzip member
            workload,
        ),
        run_backend(
            "passthrough",
            EngineBuilder::new()
                .backend(PassthroughBackend::new())
                .build()
                .expect("valid passthrough engine"),
            EngineBuilder::new()
                .backend(PassthroughBackend::new())
                .build_decompressor()
                .expect("valid passthrough decoder"),
            8192,
            workload,
        ),
    ];
    println!(
        "  {:<12} {:>10} {:>10} {:>9} {:>7} {:>11}",
        "backend", "bytes_in", "wire", "payloads", "ratio", "MiB/s"
    );
    for row in &rows {
        println!(
            "  {:<12} {:>10} {:>10} {:>9} {:>7.3} {:>11.1}",
            row.backend,
            row.bytes_in,
            row.wire_bytes,
            row.payloads,
            row.ratio(),
            row.mib_per_s(),
        );
    }
    let floor = rows
        .iter()
        .find(|r| r.backend == "passthrough")
        .expect("floor row");
    assert!((floor.ratio() - 1.0).abs() < f64::EPSILON, "floor is 1.0");
    println!();
}

fn main() {
    // The paper's two Figure 3 workloads at example scale.
    let sensor = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 20_000,
        sensors: 64,
        readings_per_sensor: 16,
        ..SensorWorkloadConfig::paper_scale()
    });
    run_workload("synthetic sensor readouts (32 B chunks)", &sensor);

    let dns = DnsWorkload::new(DnsWorkloadConfig::paper_scale());
    run_workload("campus DNS queries (34 B chunks)", &dns);

    println!("ok");
}
