//! Trace tooling: write an evaluation workload to a pcap file (the format
//! the paper replays at its switch) and replay a pcap file through the
//! simulated ZipLine deployment.
//!
//! Usage:
//! ```sh
//! # Write a small synthetic sensor trace to sensor.pcap, then replay it.
//! cargo run --release --example pcap_replay -- write  sensor.pcap 20000
//! cargo run --release --example pcap_replay -- replay sensor.pcap
//! ```
//! With no arguments it does both steps using a temporary file.

use std::process::ExitCode;
use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_net::pcap::{read_trace, PcapWriter};
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_repro::zipline_traces::trace::{chunks_to_pcap, TraceConfig};

fn write_trace_file(path: &str, chunks: usize) -> Result<(), String> {
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks,
        sensors: 128,
        readings_per_sensor: 10,
        ..SensorWorkloadConfig::paper_scale()
    });
    let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let written = chunks_to_pcap(&workload, &TraceConfig::default(), file)
        .map_err(|e| format!("writing pcap: {e}"))?;
    println!(
        "wrote {written} packets ({} distinct bases) to {path}",
        workload.config().distinct_patterns()
    );
    // Keep the writer type exercised for the docs even when unused elsewhere.
    let _ = PcapWriter::new(Vec::new());
    Ok(())
}

fn replay_trace_file(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let packets = read_trace(&bytes).map_err(|e| format!("parsing pcap: {e}"))?;
    println!(
        "replaying {} packets from {path} through the ZipLine deployment…",
        packets.len()
    );

    let frames = packets
        .iter()
        .map(|p| p.to_frame().map_err(|e| format!("frame parse: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    let sent_payloads: Vec<Vec<u8>> = frames.iter().map(|f| f.payload.clone()).collect();

    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test())
        .map_err(|e| format!("deployment: {e}"))?;
    let outcome = deployment
        .run_frames(frames)
        .map_err(|e| format!("simulation: {e}"))?;

    if outcome.received_payloads != sent_payloads {
        return Err("payloads were not restored byte-exactly".into());
    }
    println!(
        "  {} packets delivered, all byte-exact; {} compressed / {} uncompressed / {} raw",
        outcome.frames_received,
        outcome.encoder_stats.emitted_compressed,
        outcome.encoder_stats.emitted_uncompressed,
        outcome.encoder_stats.emitted_raw
    );
    println!(
        "  payload bytes between the switches: {} of {} (ratio {:.3})",
        outcome.payload_bytes_between_switches,
        outcome.payload_bytes_in,
        outcome.compression_ratio().unwrap_or(1.0)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => {
            let path = std::env::temp_dir().join("zipline_demo_trace.pcap");
            let path = path.to_string_lossy().to_string();
            write_trace_file(&path, 20_000).and_then(|()| replay_trace_file(&path))
        }
        [cmd, path, chunks] if cmd == "write" => match chunks.parse::<usize>() {
            Ok(count) => write_trace_file(path, count),
            Err(_) => Err("chunk count must be a number".to_string()),
        },
        [cmd, path] if cmd == "replay" => replay_trace_file(path),
        _ => Err("usage: pcap_replay [write <file> <chunks> | replay <file>]".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
