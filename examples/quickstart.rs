//! Quickstart: compress and decompress a stream of chunks with Generalized
//! Deduplication, then run the same payloads through a simulated two-switch
//! ZipLine deployment.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_gd::codec::{compress, decompress};
use zipline_repro::zipline_gd::GdConfig;

fn main() {
    // ------------------------------------------------------------------
    // 1. Host-side GD compression: the algorithm alone, no switches.
    // ------------------------------------------------------------------
    let config = GdConfig::paper_default();
    println!(
        "GD parameters: Hamming({}, {}), m = {}, {}-bit identifiers",
        config.n(),
        config.k(),
        config.m,
        config.id_bits
    );

    // A stream of sensor-style readings: many chunks share a few bases.
    let mut data = Vec::new();
    for i in 0..2_000u32 {
        let mut chunk = [0u8; 32];
        chunk[0] = (i % 5) as u8; // five distinct readings
        chunk[31] = 0xEE;
        if i % 7 == 0 {
            chunk[16] ^= 0x01; // occasional single-bit noise
        }
        data.extend_from_slice(&chunk);
    }

    let stream = compress(&config, &data).expect("compression succeeds");
    let restored = decompress(&stream).expect("decompression succeeds");
    assert_eq!(restored, data, "lossless round trip");

    let compressed_bytes = stream.serialized_len();
    println!(
        "host-side GD:   {} B -> {} B (ratio {:.3})",
        data.len(),
        compressed_bytes,
        compressed_bytes as f64 / data.len() as f64
    );

    // ------------------------------------------------------------------
    // 2. The same payloads through the in-network deployment:
    //    sender -> encoder switch -> decoder switch -> receiver.
    // ------------------------------------------------------------------
    let mut deployment =
        ZipLineDeployment::new(DeploymentConfig::fast_test()).expect("valid deployment");
    let payloads: Vec<Vec<u8>> = data.chunks(32).map(|c| c.to_vec()).collect();
    let frames = payloads
        .iter()
        .map(|p| {
            zipline_repro::zipline_net::EthernetFrame::new(
                zipline_repro::zipline_net::MacAddress::local(2),
                zipline_repro::zipline_net::MacAddress::local(1),
                zipline_repro::zipline_net::ethernet::ETHERTYPE_IPV4,
                p.clone(),
            )
        })
        .collect();
    let outcome = deployment.run_frames(frames).expect("simulation runs");

    assert_eq!(
        outcome.received_payloads, payloads,
        "in-network round trip is lossless"
    );
    println!(
        "in-network GD:  {} B -> {} B between the switches (ratio {:.3})",
        outcome.payload_bytes_in,
        outcome.payload_bytes_between_switches,
        outcome.compression_ratio().unwrap()
    );
    println!(
        "packet types:   {} compressed, {} uncompressed, {} raw; {} bases learned",
        outcome.encoder_stats.emitted_compressed,
        outcome.encoder_stats.emitted_uncompressed,
        outcome.encoder_stats.emitted_raw,
        outcome.control_plane_stats.mappings_activated,
    );
    println!("done: every payload was restored byte-exactly at the receiver.");
}
