//! # `zipline-engine` walkthrough: streaming sharded compression
//!
//! The ZipLine paper offloads GD compression to the switch; `zipline-engine`
//! is the complementary host-side engine. This example is a README-style
//! tour of the whole pipeline:
//!
//! 1. build a [`CompressionEngine`] — a sharded dictionary plus a fixed
//!    worker pool — from the paper's GD parameters;
//! 2. stream an IoT sensor workload through [`EngineStream`]: records go
//!    in, wire-ready ZipLine payloads (types 1/2/3) come out through one
//!    reused scratch buffer;
//! 3. mirror the stream through an [`EngineDecompressor`] and check the
//!    byte-exact round trip;
//! 4. inspect the per-shard dictionary statistics and the merged
//!    [`DictionarySnapshot`] a controller would ship to a decoder switch.
//!
//! Run with:
//! ```sh
//! cargo run --release --example engine_stream
//! ```
//!
//! [`CompressionEngine`]: zipline_repro::zipline_engine::CompressionEngine
//! [`EngineStream`]: zipline_repro::zipline_engine::EngineStream
//! [`EngineDecompressor`]: zipline_repro::zipline_engine::EngineDecompressor
//! [`DictionarySnapshot`]: zipline_repro::zipline_engine::DictionarySnapshot

use zipline_repro::zipline_engine::{EngineBuilder, EngineStream, SpawnPolicy};
use zipline_repro::zipline_gd::packet::PacketType;
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_repro::zipline_traces::ChunkWorkload;

fn main() {
    // ------------------------------------------------------------------
    // 1. The engine: paper GD parameters, 8 dictionary shards, 4 workers.
    //    Output bytes depend only on the shard count — worker count and
    //    spawn policy are pure wall-clock knobs (SpawnPolicy::Auto spawns
    //    threads only on multi-core hosts).
    // ------------------------------------------------------------------
    let builder = EngineBuilder::new()
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Auto);
    let mut decoder = builder.build_decompressor().expect("valid decoder config");
    let mut engine = builder.build().expect("valid engine config");
    let config = *engine.config();
    println!(
        "engine: Hamming({}, {}), {} shards x {} ids/shard, {} workers",
        config.gd.n(),
        config.gd.k(),
        config.shards,
        engine.dictionary().shard_capacity(),
        config.workers,
    );

    // ------------------------------------------------------------------
    // 2. Stream a sensor workload through the engine. The sink receives
    //    every wire payload; here we collect them like a NIC queue would.
    // ------------------------------------------------------------------
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 20_000,
        sensors: 64,
        readings_per_sensor: 16,
        ..SensorWorkloadConfig::paper_scale()
    });
    let mut wire: Vec<(PacketType, Vec<u8>)> = Vec::new();
    let mut stream = EngineStream::new(&mut engine, 256, |packet_type, bytes| {
        wire.push((packet_type, bytes.to_vec()));
    });
    stream
        .consume_workload(&workload)
        .expect("workload streams");
    let summary = stream.finish().expect("stream flushes");

    let by_type = |t: PacketType| wire.iter().filter(|(pt, _)| *pt == t).count();
    println!(
        "streamed {} B in {} payloads out ({} compressed, {} uncompressed, {} raw)",
        summary.bytes_in,
        summary.payloads_emitted,
        by_type(PacketType::Compressed),
        by_type(PacketType::Uncompressed),
        by_type(PacketType::Raw),
    );
    println!(
        "wire bytes: {} ({:.3} of input)",
        summary.wire_bytes,
        summary.wire_bytes as f64 / summary.bytes_in as f64
    );

    // ------------------------------------------------------------------
    // 3. Decode side: a mirrored sharded decompressor rebuilds the
    //    dictionary from the payload stream itself.
    // ------------------------------------------------------------------
    let mut restored = Vec::new();
    for (packet_type, bytes) in &wire {
        decoder
            .restore_payload_into(*packet_type, bytes, &mut restored)
            .expect("payload decodes");
    }
    let original: Vec<u8> = workload.chunks().flatten().collect();
    assert_eq!(restored, original, "lossless round trip");
    println!("round trip: {} B restored byte-exactly", restored.len());

    // ------------------------------------------------------------------
    // 4. Shard statistics and the controller-facing snapshot.
    // ------------------------------------------------------------------
    let stats = engine.stats();
    println!(
        "engine stats: {} chunks, {} bases learned, ratio {:.3}",
        stats.chunks_in,
        stats.bases_learned,
        stats.compression_ratio().unwrap_or(1.0)
    );
    let snapshot = engine.snapshot();
    println!(
        "dictionary snapshot: {} mappings across {} shards",
        snapshot.len(),
        snapshot.shard_count
    );
    for (shard, (len, shard_stats)) in snapshot
        .shard_lens
        .iter()
        .zip(&snapshot.shard_stats)
        .enumerate()
    {
        println!(
            "  shard {shard}: {len:>4} bases, {:>6} lookups, {:>6} hits, {} evictions",
            shard_stats.lookups, shard_stats.hits, shard_stats.evictions
        );
    }
    println!("ok");
}
