//! `gdzip`: a small file compressor built on the GD stream codec, with a
//! side-by-side comparison against the gzip baseline — the "lightweight,
//! online compression mechanism suitable to the IoT" use of GD the paper's
//! background section describes.
//!
//! Usage:
//! ```sh
//! cargo run --release --example gd_file_compressor -- compress   <input> <output.gdz>
//! cargo run --release --example gd_file_compressor -- decompress <input.gdz> <output>
//! cargo run --release --example gd_file_compressor -- stats      <input>
//! ```
//! With no arguments it runs `stats` on a built-in synthetic sensor log.

use std::process::ExitCode;
use zipline_repro::zipline_deflate;
use zipline_repro::zipline_gd::codec::{CompressedStream, GdCompressor, GdDecompressor};
use zipline_repro::zipline_gd::GdConfig;
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_repro::zipline_traces::ChunkWorkload;

fn compress_file(input: &str, output: &str) -> Result<(), String> {
    let data = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let config = GdConfig::paper_default();
    let mut compressor = GdCompressor::new(&config).map_err(|e| e.to_string())?;
    let stream = compressor.compress(&data).map_err(|e| e.to_string())?;
    let bytes = stream.to_bytes();
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "{input}: {} B -> {} B (ratio {:.3}); {} bases learned, {} chunks referenced by id",
        data.len(),
        bytes.len(),
        bytes.len() as f64 / data.len().max(1) as f64,
        compressor.stats().bases_learned,
        compressor.stats().emitted_compressed,
    );
    Ok(())
}

fn decompress_file(input: &str, output: &str) -> Result<(), String> {
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let stream = CompressedStream::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let mut decompressor = GdDecompressor::new(&stream.config).map_err(|e| e.to_string())?;
    let data = decompressor
        .decompress(&stream)
        .map_err(|e| e.to_string())?;
    std::fs::write(output, &data).map_err(|e| format!("writing {output}: {e}"))?;
    println!("{input}: restored {} B into {output}", data.len());
    Ok(())
}

fn stats(data: &[u8], label: &str) -> Result<(), String> {
    let config = GdConfig::paper_default();
    let mut compressor = GdCompressor::new(&config).map_err(|e| e.to_string())?;
    let stream = compressor.compress(data).map_err(|e| e.to_string())?;
    let gd_bytes = stream.to_bytes();
    // Verify losslessness before reporting anything.
    let mut decompressor = GdDecompressor::new(&config).map_err(|e| e.to_string())?;
    let restored = decompressor
        .decompress(&stream)
        .map_err(|e| e.to_string())?;
    if restored != data {
        return Err("internal error: GD round trip mismatch".into());
    }
    let gz = zipline_deflate::gzip_compress(data, zipline_deflate::Level::Default);

    println!("{label}: {} B", data.len());
    println!(
        "  GD  (m = {}, {} B chunks): {:>10} B  ratio {:.3}   {} distinct bases",
        config.m,
        config.chunk_bytes,
        gd_bytes.len(),
        gd_bytes.len() as f64 / data.len().max(1) as f64,
        compressor.dictionary().len(),
    );
    println!(
        "  gzip (DEFLATE, level 6):   {:>10} B  ratio {:.3}",
        gz.len(),
        gz.len() as f64 / data.len().max(1) as f64
    );
    println!(
        "  GD compresses chunk-by-chunk with O(1) state per chunk and random access; DEFLATE \
         needs the whole window ({} B minimum per the paper) and cannot run in a switch pipeline.",
        3 * 1024
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => {
            // Built-in demo: a synthetic sensor log.
            let workload = SensorWorkload::new(SensorWorkloadConfig {
                chunks: 50_000,
                sensors: 128,
                readings_per_sensor: 10,
                ..SensorWorkloadConfig::paper_scale()
            });
            let mut data = Vec::new();
            for chunk in workload.chunks() {
                data.extend_from_slice(&chunk);
            }
            stats(&data, "built-in synthetic sensor log")
        }
        [cmd, input] if cmd == "stats" => std::fs::read(input)
            .map_err(|e| format!("reading {input}: {e}"))
            .and_then(|data| stats(&data, input)),
        [cmd, input, output] if cmd == "compress" => compress_file(input, output),
        [cmd, input, output] if cmd == "decompress" => decompress_file(input, output),
        _ => Err("usage: gd_file_compressor [stats <file> | compress <in> <out> | decompress <in> <out>]"
            .to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
