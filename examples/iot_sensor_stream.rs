//! IoT sensor-stream scenario: the paper's synthetic dataset (scaled down by
//! default) replayed through the full ZipLine deployment with dynamic
//! learning, compared against the static-table ideal and gzip.
//!
//! Run with:
//! ```sh
//! cargo run --release --example iot_sensor_stream            # scaled-down
//! cargo run --release --example iot_sensor_stream -- --full  # 3 124 000 chunks
//! ```

use zipline_repro::zipline::experiment::compression::{
    run_compression_experiment, CompressionExperimentConfig, CompressionMode,
};
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_repro::zipline_traces::ChunkWorkload;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let workload_config = if full {
        SensorWorkloadConfig::paper_scale()
    } else {
        SensorWorkloadConfig {
            chunks: 100_000,
            sensors: 128,
            readings_per_sensor: 32,
            ..SensorWorkloadConfig::paper_scale()
        }
    };
    let workload = SensorWorkload::new(workload_config.clone());
    println!(
        "synthetic sensor workload: {} chunks of {} B ({} sensors x {} readings = {} distinct bases)",
        workload.total_chunks(),
        workload.chunk_len(),
        workload_config.sensors,
        workload_config.readings_per_sensor,
        workload_config.distinct_patterns(),
    );

    let experiment_config = if full {
        CompressionExperimentConfig::paper_default()
    } else {
        CompressionExperimentConfig::fast_test()
    };
    let results =
        run_compression_experiment(&workload, &CompressionMode::all(), &experiment_config)
            .expect("experiment runs");

    let original = results
        .iter()
        .find(|r| r.mode == CompressionMode::Original)
        .expect("original measured");
    println!(
        "\n{:<18} {:>14} {:>8}",
        "scenario", "payload bytes", "ratio"
    );
    for result in &results {
        println!(
            "{:<18} {:>14} {:>8.2}",
            result.mode.label(),
            result.resulting_bytes,
            result.ratio
        );
    }
    println!(
        "\nsavings with dynamic learning: {:.0} % of {} MB never crosses the inter-switch link",
        (1.0 - results
            .iter()
            .find(|r| r.mode == CompressionMode::DynamicLearning)
            .unwrap()
            .ratio)
            * 100.0,
        original.resulting_bytes / 1_000_000
    );
}
