//! # Pipelined async ingest: overlapping record production with compression
//!
//! `EngineStream` is synchronous — ingest stalls while a batch compresses.
//! [`PipelinedStream`] overlaps the two through a bounded, backpressured
//! channel feeding a dedicated engine worker thread (std `mpsc` only, no
//! async runtime), with batch buffers double-buffered and recycled. This
//! example walks the whole surface:
//!
//! 1. build an engine opted in to pipelining via
//!    [`EngineBuilder::pipelined`];
//! 2. stream a sensor workload through [`PipelinedStream`] and through the
//!    synchronous [`EngineStream`], and verify the wire output is
//!    **bit-identical** — the pipeline is a latency/throughput knob, never
//!    a format change;
//! 3. do the same through the host path
//!    ([`EngineHostPath::compress_workload_to_frames_pipelined`]), where
//!    live-sync control frames stay interleaved in the exact positions the
//!    decoder needs;
//! 4. time both paths (on a single-core host the pipelined stream degrades
//!    to inline execution and the two are expected to tie — the overlap
//!    pays on multi-core hosts).
//!
//! Run with:
//! ```sh
//! cargo run --release --example pipelined_ingest
//! ```
//!
//! [`PipelinedStream`]: zipline_repro::zipline_engine::PipelinedStream
//! [`EngineStream`]: zipline_repro::zipline_engine::EngineStream
//! [`EngineBuilder::pipelined`]: zipline_repro::zipline_engine::EngineBuilder::pipelined
//! [`EngineHostPath::compress_workload_to_frames_pipelined`]: zipline_repro::zipline::host::EngineHostPath::compress_workload_to_frames_pipelined

use std::time::Instant;

use zipline_repro::zipline::host::{EngineHostPath, HostPathConfig};
use zipline_repro::zipline_engine::{EngineBuilder, EngineStream, PipelinedStream, SpawnPolicy};
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};

fn main() {
    // ------------------------------------------------------------------
    // 1. Two engines with the same shape; one opted in to pipelining.
    //    SpawnPolicy::Auto spawns the ingest worker only on multi-core
    //    hosts — on one core both paths run inline and stay comparable.
    // ------------------------------------------------------------------
    let builder = || {
        EngineBuilder::new()
            .shards(8)
            .workers(4)
            .spawn(SpawnPolicy::Auto)
    };
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 40_000,
        ..SensorWorkloadConfig::small()
    });

    // ------------------------------------------------------------------
    // 2. Bit-identity: the pipelined stream emits exactly the synchronous
    //    stream's payload sequence.
    // ------------------------------------------------------------------
    let mut sync_engine = builder().build().expect("valid engine config");
    let mut sync_wire: Vec<u8> = Vec::new();
    let sync_started = Instant::now();
    let mut sync_stream = EngineStream::new(&mut sync_engine, 256, |_, bytes| {
        sync_wire.extend_from_slice(bytes);
    });
    sync_stream
        .consume_workload(&workload)
        .expect("stream accepts the workload");
    let sync_summary = sync_stream.finish().expect("stream finishes");
    let sync_elapsed = sync_started.elapsed();

    let piped_engine = builder().pipelined(2).build().expect("valid engine config");
    let mut piped_wire: Vec<u8> = Vec::new();
    let piped_started = Instant::now();
    let mut piped_stream = PipelinedStream::new(piped_engine, 256, |_, bytes: &[u8]| {
        piped_wire.extend_from_slice(bytes);
    })
    .expect("engine is pipelined");
    let threaded = piped_stream.is_threaded();
    piped_stream
        .consume_workload(&workload)
        .expect("stream accepts the workload");
    let (_engine, piped_summary) = piped_stream.finish().expect("stream finishes");
    let piped_elapsed = piped_started.elapsed();

    assert_eq!(piped_wire, sync_wire, "pipelined output is bit-identical");
    assert_eq!(piped_summary, sync_summary);
    println!(
        "engine stream: {} bytes in -> {} wire bytes ({} payloads), ratio {:.3}",
        sync_summary.bytes_in,
        sync_summary.wire_bytes,
        sync_summary.payloads_emitted,
        sync_summary.wire_bytes as f64 / sync_summary.bytes_in as f64,
    );
    println!(
        "synchronous {:>8.2?}   pipelined {:>8.2?}   (worker thread: {}) -- identical bytes",
        sync_elapsed,
        piped_elapsed,
        if threaded { "yes" } else { "inline fallback" },
    );

    // ------------------------------------------------------------------
    // 3. The host path: same opt-in, now with Ethernet framing and live
    //    decoder sync interleaved. Frame sequences must also match.
    // ------------------------------------------------------------------
    let mut sync_host =
        EngineHostPath::new(HostPathConfig::paper_default()).expect("valid host config");
    let (sync_frames, _) = sync_host
        .compress_workload_to_frames(&workload)
        .expect("host path compresses");
    let mut piped_host = EngineHostPath::new(HostPathConfig::pipelined(2)).expect("valid config");
    let (piped_frames, summary) = piped_host
        .compress_workload_to_frames_pipelined(&workload)
        .expect("pipelined host path compresses");
    assert_eq!(piped_frames, sync_frames, "frame sequences are identical");
    println!(
        "host path: {} frames ({} live-sync control updates) -- pipelined == synchronous",
        piped_frames.len(),
        summary.control_updates,
    );
    println!("pipelined ingest walkthrough: OK");
}
