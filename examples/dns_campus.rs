//! Campus-DNS scenario: a day of DNS queries from a 4000-user campus
//! (synthetic substitute for the paper's real trace), compressed in-network.
//!
//! Each 34-byte query, minus its random transaction identifier, is exactly
//! one 256-bit chunk — which is why this workload suits ZipLine so well.
//!
//! Run with:
//! ```sh
//! cargo run --release --example dns_campus            # scaled-down
//! cargo run --release --example dns_campus -- --full  # full day (~735k queries)
//! ```

use zipline_repro::zipline::experiment::compression::{
    run_compression_experiment, CompressionExperimentConfig, CompressionMode,
};
use zipline_repro::zipline_traces::dns::{DnsWorkload, DnsWorkloadConfig};
use zipline_repro::zipline_traces::ChunkWorkload;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let workload_config = if full {
        DnsWorkloadConfig::paper_scale()
    } else {
        DnsWorkloadConfig {
            queries: 50_000,
            distinct_names: 2_000,
            ..DnsWorkloadConfig::paper_scale()
        }
    };
    let workload = DnsWorkload::new(workload_config.clone());
    println!(
        "campus DNS workload: {} queries over {} distinct names (Zipf s = {})",
        workload.total_chunks(),
        workload_config.distinct_names,
        workload_config.zipf_exponent,
    );
    println!(
        "example query name: {:?} -> {}-byte wire query, {}-byte ZipLine chunk",
        workload.names()[0],
        zipline_repro::zipline_traces::dns::QUERY_LEN,
        workload.chunk_len(),
    );

    // The paper could not use a static table for the DNS dataset (the traffic
    // is not known in advance), hence the "n/a" in Figure 3; we do the same.
    let modes = [
        CompressionMode::Original,
        CompressionMode::NoTable,
        CompressionMode::DynamicLearning,
        CompressionMode::Gzip,
    ];
    let experiment_config = if full {
        CompressionExperimentConfig::paper_default()
    } else {
        CompressionExperimentConfig::fast_test()
    };
    let results =
        run_compression_experiment(&workload, &modes, &experiment_config).expect("experiment runs");

    println!(
        "\n{:<18} {:>14} {:>8}",
        "scenario", "payload bytes", "ratio"
    );
    for result in &results {
        println!(
            "{:<18} {:>14} {:>8.2}",
            result.mode.label(),
            result.resulting_bytes,
            result.ratio
        );
    }
    let dynamic = results
        .iter()
        .find(|r| r.mode == CompressionMode::DynamicLearning)
        .unwrap();
    println!(
        "\n{} of {} queries left the encoder compressed ({} stayed uncompressed while bases were learned)",
        dynamic.compressed_chunks,
        workload.total_chunks(),
        dynamic.uncompressed_chunks,
    );
}
