//! The engine's typed error: codec failures, persistence failures and the
//! pipelined worker loss case, in one enum.
//!
//! Until the durability layer landed, every engine API surfaced
//! [`GdError`] directly; the persist layer adds failure modes (I/O,
//! on-disk corruption) that are not codec errors, and the pipelined
//! ingest path adds one more (the dedicated engine worker dying without a
//! report). [`EngineError`] is the sum of all three, and the engine-level
//! `Result` alias every stream/builder API now returns. `From` impls keep
//! `?` ergonomic across the layers; callers that only ever used the GD
//! backend can match [`EngineError::Gd`] and treat the rest as fatal.

use crate::persist::PersistError;
use zipline_gd::error::GdError;

/// Any failure an engine-level API can surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A codec-layer failure (configuration, encoding, decoding).
    Gd(GdError),
    /// A durability-layer failure (I/O or on-disk corruption).
    Persist(PersistError),
    /// The pipelined ingest worker exited without reporting an error —
    /// the engine (and any batches in flight) are lost.
    WorkerLost,
}

/// Engine-level result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Gd(e) => write!(f, "codec error: {e}"),
            EngineError::Persist(e) => write!(f, "persistence error: {e}"),
            EngineError::WorkerLost => {
                write!(
                    f,
                    "pipelined engine worker exited without reporting an error"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gd(e) => Some(e),
            EngineError::Persist(e) => Some(e),
            EngineError::WorkerLost => None,
        }
    }
}

impl From<GdError> for EngineError {
    fn from(e: GdError) -> Self {
        EngineError::Gd(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources_chain() {
        let gd: EngineError = GdError::UnknownIdentifier(7).into();
        assert!(gd.to_string().contains("codec error"));
        assert!(gd.source().is_some());

        let persist: EngineError = PersistError::Corrupt("bad tail".into()).into();
        assert!(persist.to_string().contains("persistence error"));
        assert!(persist.source().unwrap().to_string().contains("bad tail"));

        assert!(EngineError::WorkerLost.source().is_none());
        assert!(EngineError::WorkerLost.to_string().contains("worker"));
    }
}
