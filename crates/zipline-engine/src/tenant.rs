//! Multi-tenant flow routing in front of [`CompressionEngine`].
//!
//! One engine serves one logical stream; production means **many
//! concurrent flows** from many tenants sharing one process. This module
//! adds that layer without touching the engine itself, riding the
//! [`EngineBuilder`]/[`CompressionBackend`] seams:
//!
//! - [`FlowKey`] names a flow as `(tenant, flow)`; [`flow_placement`]
//!   hashes it onto a slot in the tenant's partition pool.
//! - [`FlowRouter`] owns a pool of per-tenant engine partitions. Every
//!   flow is backed by its **own** [`PipelinedStream`] over its own
//!   engine, so tenants (and flows) never share basis entries — the
//!   dictionary namespace is partitioned by construction, and one flow's
//!   churn cannot evict another tenant's bases.
//! - Per-tenant capacity fairness is a **budgeted slab share**: a tenant
//!   may hold at most `partitions_per_tenant` concurrent flows, i.e. at
//!   most `partitions_per_tenant × dictionary_capacity` slab entries.
//!   Opening a flow past the budget fails with
//!   [`FlowError::TenantSaturated`] instead of degrading neighbours.
//!   [`TenantStats`] surfaces per-tenant install/evict/ratio counters the
//!   way per-shard stats do for a single engine.
//! - The control plane is **tenant-tagged**: every emission is a
//!   [`FlowEvent`] carrying its [`FlowKey`], and per flow the dictionary
//!   updates interleave strictly before the payloads that need them
//!   (exactly the single-stream live-sync invariant, preserved per flow
//!   because each flow's sinks run on the calling thread in wire order).
//! - [`FlowDecoderPool`] is the receive side: one decoder per flow keyed
//!   the same way, so a single pool tracks many interleaved streams and
//!   one flow's state transitions never perturb another's.
//!
//! # Placement invariants
//!
//! Placement is deterministic: `flow_placement(key, n)` is a pure
//! function of the key, and collisions probe linearly over the tenant's
//! pool, so a flow's home slot depends only on the set of flows currently
//! active — never on wall-clock or iteration order. Routing never changes
//! bytes: a flow routed through the router emits **bit-identical** output
//! to the same data pushed through an isolated single-tenant engine
//! (pinned by the `flow_router` proptest suite).
//!
//! # Durable layout
//!
//! With a durable root, flow state lives under a tenant-scoped tree:
//! `tenant-<tenant:016x>/stream-<flow:016x>` (see [`flow_dir`]). Resume
//! follows the single-stream discipline per flow: [`plan_resume`] turns
//! the journal's warm start plus the client's replay cursor into a
//! [`FlowResume`] (replay tail, or a reseed of live mappings after
//! compaction, plus the exact input byte offset to resume from).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::backend::CompressionBackend;
use crate::builder::EngineBuilder;
use crate::engine::{CompressionEngine, EngineConfig, GdBackend};
use crate::error::EngineError;
use crate::persist::{CommittedEntry, SyncPolicy};
use crate::pipelined::PipelinedStream;
use crate::registry::{CodecCursor, CodecId, RegistryDecompressor, CODEC_GD};
use crate::shard::{DictionaryUpdate, UpdateOp};
use crate::stream::StreamSummary;
use zipline_gd::error::GdError;
use zipline_gd::packet::PacketType;
use zipline_gd::stats::CompressionStats;

/// Identifies one flow: a tenant id plus a per-tenant flow id.
///
/// Ordering is `(tenant, flow)` lexicographic, so iterating a sorted
/// collection of keys groups flows by tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// The owning tenant.
    pub tenant: u64,
    /// The flow id, unique within the tenant.
    pub flow: u64,
}

impl FlowKey {
    /// Convenience constructor.
    pub fn new(tenant: u64, flow: u64) -> Self {
        Self { tenant, flow }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {:#x} flow {:#x}", self.tenant, self.flow)
    }
}

/// Deterministic placement: hashes `key` onto `0..slots` (FNV-1a over the
/// key's sixteen little-endian bytes). A pure function of the key, so
/// placement is stable across restarts and independent of open order;
/// collisions are resolved by the router's linear probe over the tenant
/// pool.
pub fn flow_placement(key: FlowKey, slots: usize) -> usize {
    debug_assert!(slots > 0, "placement over an empty pool");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key
        .tenant
        .to_le_bytes()
        .into_iter()
        .chain(key.flow.to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % slots.max(1) as u64) as usize
}

/// The durable directory of one tenant: `<root>/tenant-<tenant:016x>`.
pub fn tenant_dir(root: &Path, tenant: u64) -> PathBuf {
    root.join(format!("tenant-{tenant:016x}"))
}

/// The durable directory of one flow:
/// `<root>/tenant-<tenant:016x>/stream-<flow:016x>`.
pub fn flow_dir(root: &Path, key: FlowKey) -> PathBuf {
    tenant_dir(root, key.tenant).join(format!("stream-{:016x}", key.flow))
}

/// Configuration of a [`FlowRouter`]: the per-flow engine shape plus the
/// routing policy knobs.
#[derive(Debug, Clone)]
pub struct FlowRouterConfig {
    /// Engine configuration applied to every flow partition.
    pub engine: EngineConfig,
    /// Batch size in backend units (chunks for GD) per flow.
    pub batch_units: usize,
    /// Whether flows stream live dictionary updates (tagged
    /// [`FlowEvent::Control`] events) ahead of the payloads needing them.
    pub live_sync: bool,
    /// Pipeline depth handed to [`EngineBuilder::pipelined`] per flow.
    pub pipeline_depth: usize,
    /// The tenant budget: maximum concurrent flows (engine partitions,
    /// hence dictionary slabs) one tenant may hold. The fairness knob.
    pub partitions_per_tenant: usize,
    /// Durable root; when set every flow journals under
    /// [`flow_dir`]`(root, key)`.
    pub durable_root: Option<PathBuf>,
    /// Checkpoint cadence for durable flows (batches per checkpoint).
    pub checkpoint_cadence: u64,
    /// Sync policy for durable flows.
    pub sync: SyncPolicy,
}

impl FlowRouterConfig {
    /// A router over `engine`-shaped partitions with live sync on,
    /// 64-unit batches, depth-2 pipelines, a 64-flow tenant budget and no
    /// durability.
    pub fn new(engine: EngineConfig) -> Self {
        Self {
            engine,
            batch_units: 64,
            live_sync: true,
            pipeline_depth: 2,
            partitions_per_tenant: 64,
            durable_root: None,
            checkpoint_cadence: 8,
            sync: SyncPolicy::Flush,
        }
    }
}

/// One tagged emission from the router: the multiplexed equivalent of the
/// single-stream `(packet type, bytes)` payload sink and `DictionaryUpdate`
/// control sink. Per flow, `Control` events are emitted strictly before
/// the payloads that reference the installed bases (the live-sync
/// interleaving invariant, preserved per flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowEvent {
    /// One wire payload of `key`'s stream.
    Payload {
        /// The owning flow.
        key: FlowKey,
        /// Payload packet type.
        packet_type: PacketType,
        /// The batch's codec tag for a tagging (multi-codec) backend;
        /// `None` for a fixed backend's untagged payloads.
        codec: Option<CodecId>,
        /// Serialized payload bytes.
        bytes: Vec<u8>,
    },
    /// One live-sync dictionary update of `key`'s stream.
    Control {
        /// The owning flow.
        key: FlowKey,
        /// The tagged update.
        update: DictionaryUpdate,
    },
}

impl FlowEvent {
    /// The flow this event belongs to.
    pub fn key(&self) -> FlowKey {
        match self {
            FlowEvent::Payload { key, .. } | FlowEvent::Control { key, .. } => *key,
        }
    }
}

/// The resume plan of one (re)opened flow, mirroring the single-stream
/// server hello: how far the journal got, what to replay past the
/// client's cursor, and the reseed set when the journal was compacted.
#[derive(Debug, Default)]
pub struct FlowResume {
    /// Exact input byte offset the client should resume from (a batch
    /// boundary; 0 on a cold open).
    pub resume_bytes_in: u64,
    /// Journal tail past the client's replay cursor, in commit order.
    pub replay: Vec<CommittedEntry>,
    /// Synthesized installs for every live mapping when the journal was
    /// compacted (clean finish, then cold reconnect); advisory `seq`/`at`.
    pub reseed: Vec<DictionaryUpdate>,
    /// Whether durable state existed for the flow.
    pub warm: bool,
}

/// End-of-flow report: the stream totals plus the engine statistics of
/// the flow's partition.
#[derive(Debug)]
pub struct FlowSummary {
    /// The finished flow.
    pub key: FlowKey,
    /// The pool slot the flow occupied.
    pub slot: usize,
    /// Stream totals (bytes in, payloads, wire bytes, control updates).
    pub summary: StreamSummary,
    /// Engine statistics (installs, evictions, per-type emission counts).
    pub stats: CompressionStats,
}

/// Per-tenant counters, surfaced like per-shard stats: the fairness
/// ledger of one tenant's slab share.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: u64,
    /// Flows ever opened.
    pub flows_opened: u64,
    /// Flows currently active (occupied partitions).
    pub flows_active: u64,
    /// Flows finished cleanly.
    pub flows_finished: u64,
    /// Opens rejected by the tenant budget.
    pub flows_rejected: u64,
    /// Input bytes across finished flows.
    pub bytes_in: u64,
    /// Wire bytes across finished flows.
    pub wire_bytes: u64,
    /// Payloads emitted across finished flows.
    pub payloads: u64,
    /// Compressed (type 3) payloads across finished flows.
    pub compressed_payloads: u64,
    /// Control updates emitted across finished flows.
    pub control_updates: u64,
    /// Bases installed across finished flows.
    pub bases_learned: u64,
    /// Bases evicted across finished flows.
    pub evictions: u64,
}

impl TenantStats {
    /// Wire bytes over input bytes across the tenant's finished flows
    /// (1.0 when nothing finished yet).
    pub fn ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.bytes_in as f64
        }
    }

    fn absorb(&mut self, summary: &StreamSummary, stats: &CompressionStats) {
        self.flows_finished += 1;
        self.bytes_in += summary.bytes_in;
        self.wire_bytes += summary.wire_bytes;
        self.payloads += summary.payloads_emitted;
        self.compressed_payloads += summary.compressed_payloads;
        self.control_updates += summary.control_updates;
        self.bases_learned += stats.bases_learned;
        self.evictions += stats.evictions;
    }
}

/// Routing-layer errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// The tenant's partition budget is exhausted.
    TenantSaturated {
        /// The saturated tenant.
        tenant: u64,
        /// Its partition budget.
        budget: usize,
    },
    /// The flow is already active (duplicate open).
    FlowActive(FlowKey),
    /// The flow is not active (push/end without open).
    UnknownFlow(FlowKey),
    /// The client claims replayed entries but the flow has no durable
    /// state.
    ColdCursor {
        /// Entries the client claims to hold.
        held: u64,
    },
    /// The client's replay cursor runs past the journal.
    ResumeCursor {
        /// Entries the client claims to hold.
        held: u64,
        /// Entries the journal actually carries.
        committed: usize,
    },
    /// A flow's control updates arrived out of order (tag mixup or a
    /// missing update — decoding past it would corrupt the flow).
    ControlOutOfOrder {
        /// The flow.
        key: FlowKey,
        /// The sequence number that arrived.
        seq: u64,
        /// The lowest acceptable sequence number.
        expected: u64,
    },
    /// An engine-layer failure on the flow's partition.
    Engine(EngineError),
    /// A codec-layer failure on the flow's partition.
    Gd(GdError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::TenantSaturated { tenant, budget } => write!(
                f,
                "tenant {tenant:#x} is saturated: budget of {budget} concurrent flows reached"
            ),
            FlowError::FlowActive(key) => write!(f, "{key} is already active"),
            FlowError::UnknownFlow(key) => write!(f, "{key} is not active"),
            FlowError::ColdCursor { held } => write!(
                f,
                "client holds {held} entries but the stream has no durable state"
            ),
            FlowError::ResumeCursor { held, committed } => write!(
                f,
                "client holds {held} entries but the journal carries only {committed}"
            ),
            FlowError::ControlOutOfOrder { key, seq, expected } => write!(
                f,
                "{key}: control update seq {seq} arrived below the flow cursor {expected}"
            ),
            FlowError::Engine(e) => write!(f, "engine failure: {e}"),
            FlowError::Gd(e) => write!(f, "codec failure: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Engine(e) => Some(e),
            FlowError::Gd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for FlowError {
    fn from(e: EngineError) -> Self {
        FlowError::Engine(e)
    }
}

impl From<GdError> for FlowError {
    fn from(e: GdError) -> Self {
        FlowError::Gd(e)
    }
}

/// Derives a flow's [`FlowResume`] from its freshly built engine and the
/// client's replay cursor — the same discipline as the single-stream
/// server hello (which delegates here). Call once, immediately after
/// `build()`: it consumes the engine's warm start.
pub fn plan_resume<B: CompressionBackend>(
    engine: &mut CompressionEngine<B>,
    entries_held: u64,
) -> Result<FlowResume, FlowError> {
    let held = entries_held as usize;
    match engine.take_warm_start() {
        None => {
            if held != 0 {
                return Err(FlowError::ColdCursor { held: entries_held });
            }
            Ok(FlowResume::default())
        }
        Some(warm) => {
            if held > warm.committed.len() {
                return Err(FlowError::ResumeCursor {
                    held: entries_held,
                    committed: warm.committed.len(),
                });
            }
            let replay: Vec<CommittedEntry> = warm.committed.into_iter().skip(held).collect();
            // A compacted journal (clean finish, then reconnect from zero)
            // carries no entries; the dictionary still exists, so a fresh
            // client is synced by synthesized installs instead of replay.
            let reseed = if held == 0 && replay.is_empty() {
                reseed_updates(engine)
            } else {
                Vec::new()
            };
            Ok(FlowResume {
                resume_bytes_in: warm.bytes_in,
                replay,
                reseed,
                warm: true,
            })
        }
    }
}

/// Synthesizes `Install` updates for every live mapping, ordered by
/// identifier. `seq`/`at` are advisory (the journal they summarize was
/// compacted away); reseed framing marks them as such.
pub fn reseed_updates<B: CompressionBackend>(
    engine: &CompressionEngine<B>,
) -> Vec<DictionaryUpdate> {
    let Some(snapshot) = engine.backend().snapshot() else {
        return Vec::new();
    };
    let mut entries = snapshot.entries;
    entries.sort_by_key(|(id, _)| *id);
    entries
        .into_iter()
        .enumerate()
        .map(|(i, (id, basis))| DictionaryUpdate {
            seq: i as u64,
            at: 0,
            op: UpdateOp::Install { id, basis },
        })
        .collect()
}

/// The per-flow stream type: a pipelined engine whose sinks push tagged
/// [`FlowEvent`]s into the router's shared queue.
type FlowStream<B> =
    PipelinedStream<Box<dyn FnMut(PacketType, &[u8])>, Box<dyn FnMut(&DictionaryUpdate)>, B>;

struct ActiveFlow<B: CompressionBackend + Send + 'static> {
    stream: FlowStream<B>,
}

/// One tenant's partition pool: a fixed open-addressed slot table (the
/// budget) plus the fairness ledger.
struct TenantState<B: CompressionBackend + Send + 'static> {
    slots: Vec<Option<ActiveFlow<B>>>,
    /// flow id → occupied slot.
    index: BTreeMap<u64, usize>,
    stats: TenantStats,
}

impl<B: CompressionBackend + Send + 'static> TenantState<B> {
    fn new(tenant: u64, budget: usize) -> Self {
        let mut slots = Vec::with_capacity(budget);
        slots.resize_with(budget, || None);
        Self {
            slots,
            index: BTreeMap::new(),
            stats: TenantStats {
                tenant,
                ..TenantStats::default()
            },
        }
    }

    /// Home slot or the next free one by linear probe; `None` when full
    /// (callers check the budget first, so this is defensive).
    fn place(&self, key: FlowKey) -> Option<usize> {
        let n = self.slots.len();
        let home = flow_placement(key, n);
        (0..n)
            .map(|i| (home + i) % n)
            .find(|&slot| self.slots[slot].is_none())
    }

    fn stats_now(&self) -> TenantStats {
        let mut stats = self.stats.clone();
        stats.flows_active = self.index.len() as u64;
        stats
    }
}

/// The multi-tenant routing layer: flow-keyed placement onto per-tenant
/// engine partitions, tagged emission, budgeted fairness. See the module
/// docs for the invariants.
pub struct FlowRouter<B: CompressionBackend + Send + 'static = GdBackend> {
    config: FlowRouterConfig,
    tenants: BTreeMap<u64, TenantState<B>>,
    /// Tagged emissions of every flow, in emission order; per flow the
    /// order is exactly the flow's wire order.
    events: Rc<RefCell<VecDeque<FlowEvent>>>,
}

/// Boxed payload sink handed to each flow's pipelined stream.
type PayloadSink = Box<dyn FnMut(PacketType, &[u8])>;
/// Boxed control sink; absent when the flow runs without live sync.
type ControlSink = Box<dyn FnMut(&DictionaryUpdate)>;

impl<B: CompressionBackend + Send + 'static> FlowRouter<B> {
    /// Creates an empty router. Fails on a zero budget or zero batch
    /// size.
    pub fn new(config: FlowRouterConfig) -> Result<Self, FlowError> {
        if config.partitions_per_tenant == 0 {
            return Err(FlowError::Gd(GdError::InvalidConfig(
                "partitions_per_tenant must be at least 1".into(),
            )));
        }
        if config.batch_units == 0 {
            return Err(FlowError::Gd(GdError::InvalidConfig(
                "batch_units must be at least 1".into(),
            )));
        }
        Ok(Self {
            config,
            tenants: BTreeMap::new(),
            events: Rc::new(RefCell::new(VecDeque::new())),
        })
    }

    /// The router's configuration.
    pub fn config(&self) -> &FlowRouterConfig {
        &self.config
    }

    /// Opens (or, durably, reopens) a flow: places it onto the tenant's
    /// pool, builds its engine partition and returns the resume plan.
    /// `entries_held` is the client's replay cursor (0 on a cold open).
    pub fn open_flow(&mut self, key: FlowKey, entries_held: u64) -> Result<FlowResume, FlowError> {
        let budget = self.config.partitions_per_tenant;
        let tenant = self
            .tenants
            .entry(key.tenant)
            .or_insert_with(|| TenantState::new(key.tenant, budget));
        if tenant.index.contains_key(&key.flow) {
            return Err(FlowError::FlowActive(key));
        }
        if tenant.index.len() >= budget {
            tenant.stats.flows_rejected += 1;
            return Err(FlowError::TenantSaturated {
                tenant: key.tenant,
                budget,
            });
        }

        let backend = B::from_engine_config(&self.config.engine)?;
        let mut builder = EngineBuilder::new()
            .config(self.config.engine)
            .backend(backend)
            .live_sync(self.config.live_sync)
            .pipelined(self.config.pipeline_depth);
        if let Some(root) = &self.config.durable_root {
            builder = builder
                .durable(flow_dir(root, key))
                .checkpoint_cadence(self.config.checkpoint_cadence)
                .sync_policy(self.config.sync);
        }
        let mut engine = builder.build()?;
        let resume = plan_resume(&mut engine, entries_held)?;

        // Mirror the single-stream server: live emission when the engine
        // journal is already on (warm restart) or the config asks for it
        // and the backend can.
        let live = engine.live_sync_enabled()
            || (self.config.live_sync && engine.backend().supports_live_sync());
        let payload_events = Rc::clone(&self.events);
        // Each flow gets its own codec cursor: the stream publishes the
        // batch tag through it just before the sink sees the payloads, so
        // tagging backends stamp every event and fixed backends read None.
        let cursor = CodecCursor::new();
        let sink_cursor = cursor.clone();
        let sink: PayloadSink = Box::new(move |packet_type, bytes| {
            payload_events.borrow_mut().push_back(FlowEvent::Payload {
                key,
                packet_type,
                codec: sink_cursor.get(),
                bytes: bytes.to_vec(),
            });
        });
        let control_events = Rc::clone(&self.events);
        let control: Option<ControlSink> = if live {
            Some(Box::new(move |update: &DictionaryUpdate| {
                control_events.borrow_mut().push_back(FlowEvent::Control {
                    key,
                    update: update.clone(),
                });
            }))
        } else {
            None
        };
        let mut stream =
            PipelinedStream::with_control_sink(engine, self.config.batch_units, sink, control)?;
        stream.set_codec_cursor(cursor);

        let slot = tenant.place(key).ok_or(FlowError::TenantSaturated {
            tenant: key.tenant,
            budget,
        })?;
        tenant.slots[slot] = Some(ActiveFlow { stream });
        tenant.index.insert(key.flow, slot);
        tenant.stats.flows_opened += 1;
        Ok(resume)
    }

    fn flow_mut(&mut self, key: FlowKey) -> Result<&mut ActiveFlow<B>, FlowError> {
        let tenant = self
            .tenants
            .get_mut(&key.tenant)
            .ok_or(FlowError::UnknownFlow(key))?;
        let slot = *tenant
            .index
            .get(&key.flow)
            .ok_or(FlowError::UnknownFlow(key))?;
        tenant.slots[slot]
            .as_mut()
            .ok_or(FlowError::UnknownFlow(key))
    }

    /// Appends one record to `key`'s stream. Emissions (for any flow that
    /// crossed a batch boundary) land in the event queue; drain with
    /// [`drain_events`](Self::drain_events).
    pub fn push(&mut self, key: FlowKey, bytes: &[u8]) -> Result<(), FlowError> {
        let flow = self.flow_mut(key)?;
        flow.stream.push_record(bytes)?;
        Ok(())
    }

    /// Takes every tagged emission queued since the last drain, in
    /// emission order (per flow: wire order, controls strictly before the
    /// payloads that need them).
    pub fn drain_events(&mut self) -> Vec<FlowEvent> {
        self.events.borrow_mut().drain(..).collect()
    }

    /// Finishes `key`'s stream: flushes the trailing partial batch (its
    /// events land in the queue), frees the slot and folds the flow into
    /// the tenant ledger.
    pub fn end_flow(&mut self, key: FlowKey) -> Result<FlowSummary, FlowError> {
        let tenant = self
            .tenants
            .get_mut(&key.tenant)
            .ok_or(FlowError::UnknownFlow(key))?;
        let slot = tenant
            .index
            .remove(&key.flow)
            .ok_or(FlowError::UnknownFlow(key))?;
        let Some(flow) = tenant.slots[slot].take() else {
            return Err(FlowError::UnknownFlow(key));
        };
        let (engine, summary) = flow.stream.finish()?;
        let stats = engine.stats();
        tenant.stats.absorb(&summary, &stats);
        Ok(FlowSummary {
            key,
            slot,
            summary,
            stats,
        })
    }

    /// Drops `key`'s stream without flushing — crash semantics: buffered
    /// input and in-flight batches are abandoned, a durable flow resumes
    /// from its last commit.
    pub fn abandon_flow(&mut self, key: FlowKey) -> Result<(), FlowError> {
        let tenant = self
            .tenants
            .get_mut(&key.tenant)
            .ok_or(FlowError::UnknownFlow(key))?;
        let slot = tenant
            .index
            .remove(&key.flow)
            .ok_or(FlowError::UnknownFlow(key))?;
        drop(tenant.slots[slot].take());
        Ok(())
    }

    /// Abandons every active flow (crash semantics; see
    /// [`abandon_flow`](Self::abandon_flow)).
    pub fn abandon_all(&mut self) {
        for tenant in self.tenants.values_mut() {
            tenant.index.clear();
            for slot in &mut tenant.slots {
                drop(slot.take());
            }
        }
    }

    /// Finishes every active flow in sorted `(tenant, flow)` order,
    /// returning one summary per flow. Stops at the first failure.
    pub fn finish_all(&mut self) -> Result<Vec<FlowSummary>, FlowError> {
        let keys: Vec<FlowKey> = self
            .tenants
            .iter()
            .flat_map(|(&tenant, state)| {
                state
                    .index
                    .keys()
                    .map(move |&flow| FlowKey { tenant, flow })
            })
            .collect();
        let mut summaries = Vec::with_capacity(keys.len());
        for key in keys {
            summaries.push(self.end_flow(key)?);
        }
        Ok(summaries)
    }

    /// Number of active flows across all tenants.
    pub fn active_flows(&self) -> usize {
        self.tenants.values().map(|t| t.index.len()).sum()
    }

    /// Whether `key` is currently active.
    pub fn is_active(&self, key: FlowKey) -> bool {
        self.tenants
            .get(&key.tenant)
            .is_some_and(|t| t.index.contains_key(&key.flow))
    }

    /// The active flows, in sorted `(tenant, flow)` order.
    pub fn active_keys(&self) -> Vec<FlowKey> {
        self.tenants
            .iter()
            .flat_map(|(&tenant, state)| {
                state
                    .index
                    .keys()
                    .map(move |&flow| FlowKey { tenant, flow })
            })
            .collect()
    }

    /// One tenant's ledger (with `flows_active` refreshed), if the tenant
    /// has ever opened a flow.
    pub fn tenant_stats(&self, tenant: u64) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(TenantState::stats_now)
    }

    /// Every tenant's ledger, in tenant order.
    pub fn all_tenant_stats(&self) -> Vec<TenantStats> {
        self.tenants.values().map(TenantState::stats_now).collect()
    }
}

/// One flow's decoder: the registry mirror plus the flow's control cursor.
struct FlowDecoder {
    dec: RegistryDecompressor,
    /// Lowest acceptable control `seq`: updates must arrive in
    /// nondecreasing order per flow (the tagged interleaving invariant).
    next_control_seq: u64,
}

/// The receive side of the routing layer: one [`RegistryDecompressor`]
/// per flow, keyed like the router, so a single pool tracks many
/// interleaved streams — and, per flow, dispatches each payload's codec
/// tag to the right registered decoder (untagged payloads go to the GD
/// default). Decoding state is fully partitioned — one flow's
/// installs/evictions never touch another flow's dictionary — and each
/// flow's control cursor enforces the per-flow tag ordering.
///
/// Payload decoding is in-band (type 2 payloads teach the dictionary
/// exactly as the compressor learned, mirroring hash/shard/clock), so the
/// pool stays lossless under churn even when control events are only
/// observed, not applied; [`apply_reseed`](Self::apply_reseed) bootstraps
/// a warm flow's dictionary from reseed frames.
pub struct FlowDecoderPool {
    config: EngineConfig,
    flows: BTreeMap<FlowKey, FlowDecoder>,
}

impl FlowDecoderPool {
    /// An empty pool; every flow decoder mirrors `config` (only `gd` and
    /// `shards` matter for decoding).
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            flows: BTreeMap::new(),
        }
    }

    /// Opens a decoder for `key`. Duplicate opens are an error.
    pub fn open(&mut self, key: FlowKey) -> Result<(), FlowError> {
        if self.flows.contains_key(&key) {
            return Err(FlowError::FlowActive(key));
        }
        let dec = RegistryDecompressor::new(self.config, CODEC_GD)?;
        self.flows.insert(
            key,
            FlowDecoder {
                dec,
                next_control_seq: 0,
            },
        );
        Ok(())
    }

    fn flow_mut(&mut self, key: FlowKey) -> Result<&mut FlowDecoder, FlowError> {
        self.flows.get_mut(&key).ok_or(FlowError::UnknownFlow(key))
    }

    /// Observes one tagged control update: enforces the per-flow
    /// nondecreasing `seq` cursor. State itself is learned in-band from
    /// the payloads.
    pub fn observe_control(
        &mut self,
        key: FlowKey,
        update: &DictionaryUpdate,
    ) -> Result<(), FlowError> {
        let flow = self.flow_mut(key)?;
        if update.seq < flow.next_control_seq {
            return Err(FlowError::ControlOutOfOrder {
                key,
                seq: update.seq,
                expected: flow.next_control_seq,
            });
        }
        flow.next_control_seq = update.seq + 1;
        Ok(())
    }

    /// Applies one reseed install to `key`'s dictionary (warm-restart
    /// bootstrap: the journal was compacted, so live mappings arrive as
    /// synthesized installs instead of replayed payloads).
    pub fn apply_reseed(
        &mut self,
        key: FlowKey,
        update: &DictionaryUpdate,
    ) -> Result<(), FlowError> {
        let flow = self.flow_mut(key)?;
        flow.dec.apply_update(update)?;
        flow.next_control_seq = flow.next_control_seq.max(update.seq + 1);
        Ok(())
    }

    /// Decodes one tagged payload, appending the restored bytes to `out`.
    /// `codec` is the payload's per-batch codec tag; `None` (untagged)
    /// decodes through the flow's default (GD) decoder, and an unknown id
    /// fails as [`GdError::UnknownCodec`].
    pub fn decode_payload(
        &mut self,
        key: FlowKey,
        codec: Option<CodecId>,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), FlowError> {
        let flow = self.flow_mut(key)?;
        flow.dec
            .restore_payload_tagged(codec, packet_type, bytes, out)?;
        Ok(())
    }

    /// Decodes one [`FlowEvent`] (payloads append to `out`; controls are
    /// observed for ordering).
    pub fn decode_event(&mut self, event: &FlowEvent, out: &mut Vec<u8>) -> Result<(), FlowError> {
        match event {
            FlowEvent::Payload {
                key,
                packet_type,
                codec,
                bytes,
            } => self.decode_payload(*key, *codec, *packet_type, bytes, out),
            FlowEvent::Control { key, update } => self.observe_control(*key, update),
        }
    }

    /// Closes `key`'s decoder, returning its statistics (merged across
    /// every codec the flow's payloads dispatched to).
    pub fn close(&mut self, key: FlowKey) -> Result<CompressionStats, FlowError> {
        let flow = self.flows.remove(&key).ok_or(FlowError::UnknownFlow(key))?;
        Ok(flow.dec.stats())
    }

    /// Number of open flow decoders.
    pub fn flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether `key` has an open decoder.
    pub fn is_open(&self, key: FlowKey) -> bool {
        self.flows.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SpawnPolicy;
    use zipline_gd::config::GdConfig;

    fn small_config() -> EngineConfig {
        EngineConfig {
            gd: GdConfig::for_parameters(8, 6).unwrap(),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        }
    }

    fn small_router() -> FlowRouter {
        let mut config = FlowRouterConfig::new(small_config());
        config.batch_units = 8;
        config.partitions_per_tenant = 4;
        FlowRouter::new(config).unwrap()
    }

    fn chunk(tenant: u64, flow: u64, i: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; 32];
        bytes[0] = tenant as u8;
        bytes[4] = flow as u8;
        bytes[8] = (i % 3) as u8;
        bytes
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for slots in [1usize, 2, 7, 64] {
            for tenant in 0..8u64 {
                for flow in 0..8u64 {
                    let key = FlowKey::new(tenant, flow);
                    let a = flow_placement(key, slots);
                    assert_eq!(a, flow_placement(key, slots));
                    assert!(a < slots);
                }
            }
        }
    }

    #[test]
    fn flow_dirs_are_tenant_scoped() {
        let root = Path::new("/tmp/zl");
        let dir = flow_dir(root, FlowKey::new(0xA, 0xB));
        assert_eq!(
            dir,
            root.join("tenant-000000000000000a")
                .join("stream-000000000000000b")
        );
    }

    #[test]
    fn tenant_budget_rejects_and_counts() {
        let mut router = small_router();
        for flow in 0..4u64 {
            router.open_flow(FlowKey::new(1, flow), 0).unwrap();
        }
        let err = router.open_flow(FlowKey::new(1, 99), 0).unwrap_err();
        assert!(matches!(
            err,
            FlowError::TenantSaturated {
                tenant: 1,
                budget: 4
            }
        ));
        // Another tenant is unaffected by the saturated neighbour.
        router.open_flow(FlowKey::new(2, 0), 0).unwrap();
        let stats = router.tenant_stats(1).unwrap();
        assert_eq!(stats.flows_rejected, 1);
        assert_eq!(stats.flows_active, 4);
        // Ending a flow frees the slot.
        router.end_flow(FlowKey::new(1, 0)).unwrap();
        router.open_flow(FlowKey::new(1, 99), 0).unwrap();
    }

    #[test]
    fn duplicate_and_unknown_flows_are_typed_errors() {
        let mut router = small_router();
        let key = FlowKey::new(7, 7);
        router.open_flow(key, 0).unwrap();
        assert!(matches!(
            router.open_flow(key, 0).unwrap_err(),
            FlowError::FlowActive(k) if k == key
        ));
        let ghost = FlowKey::new(7, 8);
        assert!(matches!(
            router.push(ghost, &[0u8; 32]).unwrap_err(),
            FlowError::UnknownFlow(k) if k == ghost
        ));
        assert!(matches!(
            router.end_flow(ghost).unwrap_err(),
            FlowError::UnknownFlow(k) if k == ghost
        ));
    }

    #[test]
    fn interleaved_flows_decode_independently() {
        let mut router = small_router();
        let keys = [FlowKey::new(1, 1), FlowKey::new(2, 1), FlowKey::new(2, 2)];
        let mut pool = FlowDecoderPool::new(small_config());
        for &key in &keys {
            router.open_flow(key, 0).unwrap();
            pool.open(key).unwrap();
        }
        let mut fed: BTreeMap<FlowKey, Vec<u8>> = BTreeMap::new();
        for i in 0..64 {
            for &key in &keys {
                let bytes = chunk(key.tenant, key.flow, i);
                fed.entry(key).or_default().extend_from_slice(&bytes);
                router.push(key, &bytes).unwrap();
            }
        }
        let summaries = router.finish_all().unwrap();
        assert_eq!(summaries.len(), keys.len());
        let mut decoded: BTreeMap<FlowKey, Vec<u8>> = BTreeMap::new();
        for event in router.drain_events() {
            let out = decoded.entry(event.key()).or_default();
            pool.decode_event(&event, out).unwrap();
        }
        for &key in &keys {
            assert_eq!(decoded[&key], fed[&key], "{key} mismatch");
        }
    }

    #[test]
    fn control_cursor_rejects_reordered_updates() {
        let mut pool = FlowDecoderPool::new(small_config());
        let key = FlowKey::new(3, 3);
        pool.open(key).unwrap();
        let update = |seq: u64| DictionaryUpdate {
            seq,
            at: 0,
            op: UpdateOp::Remove { id: 0 },
        };
        pool.observe_control(key, &update(0)).unwrap();
        pool.observe_control(key, &update(5)).unwrap();
        assert!(matches!(
            pool.observe_control(key, &update(2)).unwrap_err(),
            FlowError::ControlOutOfOrder {
                seq: 2,
                expected: 6,
                ..
            }
        ));
    }
}
