//! The hash-sharded basis dictionary.
//!
//! Chunks are independent until the dictionary step, so the dictionary is
//! the only serialization point of batch compression. [`ShardedDictionary`]
//! removes it: the identifier space (`2^id_bits`) is split into `S` equal
//! slices, each backed by an independent [`BasisDictionary`], and a basis is
//! routed to shard `hash_words(basis) mod S`. Because a basis always lands
//! in the same shard, per-shard state evolves deterministically in input
//! order — the compressed output depends only on the shard count, never on
//! how many worker threads processed the batch (the property-test suite
//! enforces this).
//!
//! Identifier layout: shard `s` owns the *global* identifiers
//! `[s * shard_capacity, (s + 1) * shard_capacity)`; within the shard the
//! backing dictionary allocates *local* identifiers from `0`. A decoder can
//! therefore route a `Ref` record to its shard with one division, and a
//! `NewBasis` record with the same basis hash the compressor used. With
//! `S = 1` the layout degenerates to the unsharded dictionary, which is what
//! makes the 1-shard engine bit-identical to [`zipline_gd::GdCompressor`].
//!
//! [`DictionarySnapshot`] is the merged, shard-transparent view: global
//! `(identifier, basis)` pairs plus per-shard occupancy and counters. The
//! control plane uses it to sync a decoder's deviation table (see
//! `ZipLineDecodeProgram::install_snapshot` in the `zipline` crate).

use zipline_gd::bits::BitVec;
use zipline_gd::config::GdConfig;
use zipline_gd::dictionary::BasisDictionary;
use zipline_gd::error::{GdError, Result};

/// Per-shard dictionary counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Basis lookups routed to this shard.
    pub lookups: u64,
    /// Lookups that found their basis (emitted as `Ref` records).
    pub hits: u64,
    /// Bases learned (emitted as `NewBasis` records).
    pub learned: u64,
    /// Mappings evicted by the shard's LRU policy.
    pub evictions: u64,
}

/// One shard: an independent dictionary slice with its own logical clock.
#[derive(Debug, Clone)]
struct Shard {
    dict: BasisDictionary,
    /// Logical clock, ticked once per record routed to this shard. Keeping
    /// the clock per shard (rather than global) is what makes shard state
    /// independent of how records interleave across shards.
    clock: u64,
    stats: ShardStats,
    /// First global identifier owned by this shard.
    base: u64,
}

/// Outcome of routing one encoded chunk through its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The basis was already known; emit a `Ref` to this global identifier.
    Known {
        /// Global identifier of the basis.
        id: u64,
    },
    /// The basis was learned; emit a `NewBasis` record.
    Learned {
        /// Global identifier assigned (implicit on the wire).
        id: u64,
        /// True when learning evicted an older mapping.
        evicted: bool,
    },
}

/// Shared per-shard classification logic (single-threaded and handle forms).
fn classify_in(shard: &mut Shard, basis: &BitVec, hash: u64) -> Result<ShardOutcome> {
    shard.clock += 1;
    shard.stats.lookups += 1;
    if let Some(local) = shard
        .dict
        .lookup_basis_hashed(basis, hash, shard.clock, true)
    {
        shard.stats.hits += 1;
        return Ok(ShardOutcome::Known {
            id: shard.base + local,
        });
    }
    let outcome = shard.dict.insert_hashed(basis.clone(), hash, shard.clock)?;
    shard.stats.learned += 1;
    let evicted = outcome.evicted.is_some();
    if evicted {
        shard.stats.evictions += 1;
    }
    Ok(ShardOutcome::Learned {
        id: shard.base + outcome.id,
        evicted,
    })
}

/// `N` independent [`BasisDictionary`] shards selected by basis hash.
#[derive(Debug, Clone)]
pub struct ShardedDictionary {
    shards: Vec<Shard>,
    shard_capacity: usize,
}

impl ShardedDictionary {
    /// Creates a dictionary of `capacity` total identifiers split across
    /// `shards` shards. The shard count must be a power of two that divides
    /// the capacity (so every shard owns an equal identifier slice).
    pub fn new(capacity: usize, shards: usize) -> Result<Self> {
        if shards == 0 || !shards.is_power_of_two() {
            return Err(GdError::InvalidConfig(format!(
                "shard count {shards} must be a non-zero power of two"
            )));
        }
        if shards > capacity || !capacity.is_multiple_of(shards) {
            return Err(GdError::InvalidConfig(format!(
                "cannot split {capacity} identifiers across {shards} shards evenly"
            )));
        }
        let shard_capacity = capacity / shards;
        Ok(Self {
            shards: (0..shards)
                .map(|s| Shard {
                    dict: BasisDictionary::new(shard_capacity),
                    clock: 0,
                    stats: ShardStats::default(),
                    base: (s * shard_capacity) as u64,
                })
                .collect(),
            shard_capacity,
        })
    }

    /// Creates a dictionary sized for a GD configuration
    /// (`2^id_bits` identifiers).
    pub fn for_config(config: &GdConfig, shards: usize) -> Result<Self> {
        Self::new(config.dictionary_capacity(), shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Identifiers owned by each shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Total identifier capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Total number of mappings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.dict.len()).sum()
    }

    /// True when no shard holds a mapping.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.dict.is_empty())
    }

    /// Shard that a basis with the given [`BitVec::hash_words`] value is
    /// routed to.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// Shard that owns a global identifier.
    pub fn shard_of_id(&self, id: u64) -> usize {
        (id / self.shard_capacity as u64) as usize
    }

    /// Per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Per-shard occupancy, indexed by shard.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.dict.len()).collect()
    }

    /// Routes one encoded chunk through its shard: ticks the shard clock,
    /// looks the basis up (touching recency) and learns it on a miss —
    /// exactly the dictionary step of [`zipline_gd::GdCompressor`], per
    /// shard.
    pub fn classify(&mut self, shard: usize, basis: &BitVec, hash: u64) -> Result<ShardOutcome> {
        classify_in(&mut self.shards[shard], basis, hash)
    }

    /// Decode-side mirror of the learning half of [`Self::classify`]: ticks
    /// the shard clock and inserts the basis, returning its global
    /// identifier. Used when replaying `NewBasis` records.
    pub fn learn(&mut self, shard: usize, basis: BitVec, hash: u64) -> Result<u64> {
        let s = &mut self.shards[shard];
        s.clock += 1;
        s.stats.lookups += 1;
        let outcome = s.dict.insert_hashed(basis, hash, s.clock)?;
        if outcome.already_known {
            s.stats.hits += 1;
        } else {
            s.stats.learned += 1;
            if outcome.evicted.is_some() {
                s.stats.evictions += 1;
            }
        }
        Ok(s.base + outcome.id)
    }

    /// Decode-side lookup of a global identifier: ticks the owning shard's
    /// clock, touches the entry and returns a reference to its basis.
    pub fn lookup_id_ref(&mut self, id: u64, touch: bool) -> Option<&BitVec> {
        let shard = self.shard_of_id(id);
        let s = self.shards.get_mut(shard)?;
        s.clock += 1;
        let local = id - s.base;
        s.dict.lookup_id_ref(local, s.clock, touch)
    }

    /// Disjoint mutable handles to every shard, for fan-out across worker
    /// threads. Handle `i` operates on shard `i`; distributing handles
    /// round-robin over threads keeps each shard owned by exactly one
    /// thread, which is all the synchronization the engine needs.
    pub fn shard_handles(&mut self) -> Vec<ShardHandle<'_>> {
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(index, shard)| ShardHandle { shard, index })
            .collect()
    }

    /// Merged, shard-transparent view of the dictionary.
    pub fn snapshot(&self) -> DictionarySnapshot {
        let mut entries: Vec<(u64, BitVec)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.dict
                    .iter()
                    .map(move |(local, basis)| (s.base + local, basis.clone()))
            })
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        DictionarySnapshot {
            shard_count: self.shards.len(),
            shard_capacity: self.shard_capacity,
            entries,
            shard_stats: self.shard_stats(),
            shard_lens: self.shard_lens(),
        }
    }
}

/// Exclusive access to one shard, handed to a worker thread.
#[derive(Debug)]
pub struct ShardHandle<'a> {
    shard: &'a mut Shard,
    index: usize,
}

impl ShardHandle<'_> {
    /// Index of the shard this handle owns.
    pub fn index(&self) -> usize {
        self.index
    }

    /// See [`ShardedDictionary::classify`].
    pub fn classify(&mut self, basis: &BitVec, hash: u64) -> Result<ShardOutcome> {
        classify_in(self.shard, basis, hash)
    }
}

/// Merged view of a [`ShardedDictionary`] at a point in time: every
/// `(global identifier, basis)` mapping plus per-shard statistics. This is
/// what the control plane ships to a decoder to sync its deviation table
/// (identifier → basis) with an engine-compressed stream.
#[derive(Debug, Clone)]
pub struct DictionarySnapshot {
    /// Number of shards the dictionary was split into.
    pub shard_count: usize,
    /// Identifiers owned by each shard.
    pub shard_capacity: usize,
    /// All mappings, sorted by global identifier.
    pub entries: Vec<(u64, BitVec)>,
    /// Per-shard counters, indexed by shard.
    pub shard_stats: Vec<ShardStats>,
    /// Per-shard occupancy, indexed by shard.
    pub shard_lens: Vec<usize>,
}

impl DictionarySnapshot {
    /// Number of mappings in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no mapping.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(v: u64) -> BitVec {
        BitVec::from_u64(v, 16)
    }

    #[test]
    fn shard_counts_must_divide_capacity() {
        assert!(ShardedDictionary::new(16, 1).is_ok());
        assert!(ShardedDictionary::new(16, 4).is_ok());
        assert!(ShardedDictionary::new(16, 16).is_ok());
        assert!(ShardedDictionary::new(16, 0).is_err());
        assert!(ShardedDictionary::new(16, 3).is_err());
        assert!(ShardedDictionary::new(16, 32).is_err());
    }

    #[test]
    fn global_identifiers_partition_by_shard() {
        let mut d = ShardedDictionary::new(64, 4).unwrap();
        assert_eq!(d.shard_capacity(), 16);
        for v in 0..12u64 {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            match d.classify(shard, &b, h).unwrap() {
                ShardOutcome::Learned { id, .. } => {
                    assert_eq!(d.shard_of_id(id), shard, "id {id} maps back to its shard");
                }
                ShardOutcome::Known { .. } => panic!("fresh basis cannot be known"),
            }
        }
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn known_bases_resolve_to_the_same_identifier() {
        let mut d = ShardedDictionary::new(8, 2).unwrap();
        let b = basis(7);
        let h = b.hash_words();
        let shard = d.shard_of_hash(h);
        let first = d.classify(shard, &b, h).unwrap();
        let second = d.classify(shard, &b, h).unwrap();
        let ShardOutcome::Learned { id: learned, .. } = first else {
            panic!("first sighting learns");
        };
        assert_eq!(second, ShardOutcome::Known { id: learned });
        let stats = d.shard_stats()[shard];
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.learned, 1);
    }

    #[test]
    fn one_shard_matches_plain_dictionary_ids() {
        let mut sharded = ShardedDictionary::new(8, 1).unwrap();
        let mut plain = BasisDictionary::new(8);
        let mut clock = 0u64;
        for v in [3u64, 9, 3, 12, 9, 20, 3] {
            let b = basis(v);
            let h = b.hash_words();
            clock += 1;
            let plain_id = match plain.lookup_basis_hashed(&b, h, clock, true) {
                Some(id) => id,
                None => plain.insert_hashed(b.clone(), h, clock).unwrap().id,
            };
            let sharded_id = match sharded.classify(0, &b, h).unwrap() {
                ShardOutcome::Known { id } | ShardOutcome::Learned { id, .. } => id,
            };
            assert_eq!(plain_id, sharded_id, "value {v}");
        }
    }

    #[test]
    fn learn_and_lookup_mirror_classify() {
        // Compressor side.
        let mut comp = ShardedDictionary::new(8, 2).unwrap();
        // Decoder side, driven only by what the records would carry.
        let mut dec = ShardedDictionary::new(8, 2).unwrap();
        for v in [1u64, 2, 1, 3, 2, 1, 4, 4, 1] {
            let b = basis(v);
            let h = b.hash_words();
            let shard = comp.shard_of_hash(h);
            match comp.classify(shard, &b, h).unwrap() {
                ShardOutcome::Learned { id, .. } => {
                    let learned = dec.learn(dec.shard_of_hash(h), b.clone(), h).unwrap();
                    assert_eq!(learned, id, "decoder assigns the same id");
                }
                ShardOutcome::Known { id } => {
                    assert_eq!(
                        dec.lookup_id_ref(id, true),
                        Some(&b),
                        "decoder resolves id {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_merges_all_shards_sorted() {
        let mut d = ShardedDictionary::new(16, 4).unwrap();
        for v in 0..10u64 {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            d.classify(shard, &b, h).unwrap();
        }
        let snap = d.snapshot();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.shard_count, 4);
        assert_eq!(snap.shard_lens.iter().sum::<usize>(), 10);
        assert!(snap.entries.windows(2).all(|w| w[0].0 < w[1].0));
        for (id, basis) in &snap.entries {
            assert_eq!(
                d.lookup_id_ref(*id, false),
                Some(basis),
                "snapshot id {id} resolves"
            );
        }
    }
}
