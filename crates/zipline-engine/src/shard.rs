//! The hash-sharded basis dictionary.
//!
//! Chunks are independent until the dictionary step, so the dictionary is
//! the only serialization point of batch compression. [`ShardedDictionary`]
//! removes it: the identifier space (`2^id_bits`) is split into `S` equal
//! slices, each backed by an independent [`BasisDictionary`], and a basis is
//! routed to shard `hash_words(basis) mod S`. Because a basis always lands
//! in the same shard, per-shard state evolves deterministically in input
//! order — the compressed output depends only on the shard count, never on
//! how many worker threads processed the batch (the property-test suite
//! enforces this).
//!
//! Identifier layout: shard `s` owns the *global* identifiers
//! `[s * shard_capacity, (s + 1) * shard_capacity)`; within the shard the
//! backing dictionary allocates *local* identifiers from `0`. A decoder can
//! therefore route a `Ref` record to its shard with one division, and a
//! `NewBasis` record with the same basis hash the compressor used. With
//! `S = 1` the layout degenerates to the unsharded dictionary, which is what
//! makes the 1-shard engine bit-identical to [`zipline_gd::GdCompressor`].
//!
//! [`DictionarySnapshot`] is the merged, shard-transparent view: global
//! `(identifier, basis)` pairs plus per-shard occupancy and counters. The
//! control plane uses it to sync a decoder's deviation table *cold* (see
//! `ZipLineDecodeProgram::install_snapshot` in the `zipline` crate).
//!
//! For *live* decoder sync — required once the dictionary churns past its
//! capacity and identifiers are recycled — every shard additionally keeps an
//! **update journal**: [`enable_journal`](ShardedDictionary::enable_journal)
//! makes [`classify_at`](ShardedDictionary::classify_at) record an
//! [`UpdateOp::Remove`] for each evicted mapping and an [`UpdateOp::Install`]
//! for each learned basis, tagged with the caller's record position and a
//! per-shard monotonic sequence number.
//! [`take_delta`](ShardedDictionary::take_delta) drains the journals into a
//! [`DictionaryDelta`] whose ordering is deterministic for a given
//! `(data, shard count)` — see the [`DictionaryDelta`] docs for the exact
//! guarantees.

use zipline_gd::bits::BitVec;
use zipline_gd::config::GdConfig;
use zipline_gd::dictionary::{BasisDictionary, BasisDictionaryState, EvictionPolicy};
use zipline_gd::error::{GdError, Result};

/// Per-shard dictionary counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Basis lookups routed to this shard.
    pub lookups: u64,
    /// Lookups that found their basis (emitted as `Ref` records).
    pub hits: u64,
    /// Bases learned (emitted as `NewBasis` records).
    pub learned: u64,
    /// Mappings evicted by the shard's LRU policy.
    pub evictions: u64,
}

/// One dictionary mutation, as recorded by a shard's update journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// `id → basis` was (re)assigned; a decoder must install the mapping
    /// before the first `Ref` record that uses it.
    Install {
        /// Global identifier assigned.
        id: u64,
        /// The basis now living at `id`.
        basis: BitVec,
    },
    /// The mapping at `id` was evicted to make room; the retired basis must
    /// stop being decodable under this identifier.
    Remove {
        /// Global identifier being recycled.
        id: u64,
    },
}

impl UpdateOp {
    /// Global identifier the operation applies to.
    pub fn id(&self) -> u64 {
        match self {
            UpdateOp::Install { id, .. } | UpdateOp::Remove { id } => *id,
        }
    }
}

/// One journaled dictionary mutation with its ordering metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryUpdate {
    /// Globally monotonic sequence number, assigned when journals are merged
    /// into a [`DictionaryDelta`]; strictly increasing across the lifetime of
    /// the dictionary (and therefore across batches).
    pub seq: u64,
    /// Caller-supplied record position (input-order index within the batch)
    /// at which the mutation happened. A decoder that applies every update
    /// with `at <= i` before decoding record `i` always resolves `Ref`
    /// records against the basis the compressor referenced.
    pub at: u64,
    /// The mutation itself.
    pub op: UpdateOp,
}

/// Ordered batch of dictionary mutations, merged from every shard's journal.
///
/// # Ordering guarantees
///
/// * Updates are sorted by `(at, shard, per-shard order)` and `seq` is
///   strictly increasing in that order, so per-identifier causality is
///   preserved (identifiers are partitioned by shard and each shard journals
///   in input order).
/// * An eviction always journals its `Remove` immediately before the
///   `Install` that recycles the identifier, at the same `at`.
/// * The delta is a pure function of `(data, shard count)`: worker count and
///   spawn policy never change it (enforced by the engine property tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DictionaryDelta {
    /// The mutations, in the order a decoder must apply them.
    pub updates: Vec<DictionaryUpdate>,
}

impl DictionaryDelta {
    /// Number of updates in the delta.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the delta carries no update.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

/// One journal entry before merging: per-shard sequence, record position and
/// the operation.
#[derive(Debug, Clone)]
struct JournalEntry {
    seq: u64,
    at: u64,
    op: UpdateOp,
}

/// One shard: an independent dictionary slice with its own logical clock.
#[derive(Debug, Clone)]
struct Shard {
    dict: BasisDictionary,
    /// Logical clock, ticked once per record routed to this shard. Keeping
    /// the clock per shard (rather than global) is what makes shard state
    /// independent of how records interleave across shards.
    clock: u64,
    stats: ShardStats,
    /// First global identifier owned by this shard.
    base: u64,
    /// Update journal (empty unless journaling is enabled).
    journal: Vec<JournalEntry>,
    /// Per-shard monotonic journal sequence.
    journal_seq: u64,
    /// Whether classify records install/evict events.
    journal_enabled: bool,
}

/// Outcome of routing one encoded chunk through its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The basis was already known; emit a `Ref` to this global identifier.
    Known {
        /// Global identifier of the basis.
        id: u64,
    },
    /// The basis was learned; emit a `NewBasis` record.
    Learned {
        /// Global identifier assigned (implicit on the wire).
        id: u64,
        /// True when learning evicted an older mapping.
        evicted: bool,
    },
}

/// Shared per-shard classification logic (single-threaded and handle forms).
/// `at` is the caller's record position, recorded in the journal when
/// journaling is enabled.
fn classify_in(shard: &mut Shard, basis: &BitVec, hash: u64, at: u64) -> Result<ShardOutcome> {
    shard.clock += 1;
    shard.stats.lookups += 1;
    if let Some(local) = shard
        .dict
        .lookup_basis_hashed(basis, hash, shard.clock, true)
    {
        shard.stats.hits += 1;
        return Ok(ShardOutcome::Known {
            id: shard.base + local,
        });
    }
    let outcome = shard.dict.insert_hashed(basis.clone(), hash, shard.clock)?;
    shard.stats.learned += 1;
    let evicted = outcome.evicted.is_some();
    if evicted {
        shard.stats.evictions += 1;
    }
    if shard.journal_enabled {
        // Retire the victim first, then install the new mapping — the same
        // order the control plane must replay them in.
        if let Some((victim, _)) = &outcome.evicted {
            let seq = shard.journal_seq;
            shard.journal_seq += 1;
            shard.journal.push(JournalEntry {
                seq,
                at,
                op: UpdateOp::Remove {
                    id: shard.base + victim,
                },
            });
        }
        let seq = shard.journal_seq;
        shard.journal_seq += 1;
        shard.journal.push(JournalEntry {
            seq,
            at,
            op: UpdateOp::Install {
                id: shard.base + outcome.id,
                basis: basis.clone(),
            },
        });
    }
    Ok(ShardOutcome::Learned {
        id: shard.base + outcome.id,
        evicted,
    })
}

/// `N` independent [`BasisDictionary`] shards selected by basis hash.
#[derive(Debug, Clone)]
pub struct ShardedDictionary {
    shards: Vec<Shard>,
    shard_capacity: usize,
    /// Global sequence counter for merged deltas (see [`Self::take_delta`]).
    delta_seq: u64,
}

impl ShardedDictionary {
    /// Creates a dictionary of `capacity` total identifiers split across
    /// `shards` shards. The shard count must be a power of two that divides
    /// the capacity (so every shard owns an equal identifier slice).
    pub fn new(capacity: usize, shards: usize) -> Result<Self> {
        if shards == 0 || !shards.is_power_of_two() {
            return Err(GdError::InvalidConfig(format!(
                "shard count {shards} must be a non-zero power of two"
            )));
        }
        if shards > capacity || !capacity.is_multiple_of(shards) {
            return Err(GdError::InvalidConfig(format!(
                "cannot split {capacity} identifiers across {shards} shards evenly"
            )));
        }
        let shard_capacity = capacity / shards;
        Ok(Self {
            shards: (0..shards)
                .map(|s| Shard {
                    dict: BasisDictionary::new(shard_capacity),
                    clock: 0,
                    stats: ShardStats::default(),
                    base: (s * shard_capacity) as u64,
                    journal: Vec::new(),
                    journal_seq: 0,
                    journal_enabled: false,
                })
                .collect(),
            shard_capacity,
            delta_seq: 0,
        })
    }

    /// Creates a dictionary sized for a GD configuration
    /// (`2^id_bits` identifiers).
    pub fn for_config(config: &GdConfig, shards: usize) -> Result<Self> {
        Self::new(config.dictionary_capacity(), shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Identifiers owned by each shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Total identifier capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Total number of mappings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.dict.len()).sum()
    }

    /// True when no shard holds a mapping.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.dict.is_empty())
    }

    /// Shard that a basis with the given [`BitVec::hash_words`] value is
    /// routed to.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// Shard that owns a global identifier.
    pub fn shard_of_id(&self, id: u64) -> usize {
        (id / self.shard_capacity as u64) as usize
    }

    /// Per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Per-shard occupancy, indexed by shard.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.dict.len()).collect()
    }

    /// Routes one encoded chunk through its shard: ticks the shard clock,
    /// looks the basis up (touching recency) and learns it on a miss —
    /// exactly the dictionary step of [`zipline_gd::GdCompressor`], per
    /// shard. On a journaling dictionary use [`Self::classify_at`] instead:
    /// events journaled without a real record position would sort before the
    /// whole batch and re-introduce the aliasing this machinery exists to
    /// prevent (debug-asserted).
    pub fn classify(&mut self, shard: usize, basis: &BitVec, hash: u64) -> Result<ShardOutcome> {
        debug_assert!(
            !self.shards[shard].journal_enabled,
            "journaling dictionaries must classify with an explicit position (classify_at)"
        );
        self.classify_at(shard, basis, hash, 0)
    }

    /// [`Self::classify`] with an explicit record position `at`, recorded on
    /// any install/evict event the classification journals.
    pub fn classify_at(
        &mut self,
        shard: usize,
        basis: &BitVec,
        hash: u64,
        at: u64,
    ) -> Result<ShardOutcome> {
        classify_in(&mut self.shards[shard], basis, hash, at)
    }

    /// Turns update journaling on or off. While on, every learned basis
    /// records an [`UpdateOp::Install`] (preceded by an [`UpdateOp::Remove`]
    /// when it evicts) for [`Self::take_delta`] to collect. Off by default —
    /// a decode-side dictionary must not accumulate a journal nobody drains;
    /// turning it off discards any undrained events, restoring the zero-cost
    /// default (the global sequence counter is preserved, so re-enabling
    /// continues monotonically).
    pub fn set_journal(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            shard.journal_enabled = enabled;
            if !enabled {
                shard.journal.clear();
            }
        }
    }

    /// [`Self::set_journal`]`(true)`.
    pub fn enable_journal(&mut self) {
        self.set_journal(true);
    }

    /// True when update journaling is enabled.
    pub fn journal_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.journal_enabled)
    }

    /// [`Self::set_journal`]`(false)`.
    pub fn disable_journal(&mut self) {
        self.set_journal(false);
    }

    /// Drains every shard's journal into one ordered [`DictionaryDelta`]:
    /// entries are merged by `(at, shard, per-shard sequence)` and stamped
    /// with globally monotonic sequence numbers. Deterministic for a given
    /// `(data, shard count)` regardless of worker threading.
    pub fn take_delta(&mut self) -> DictionaryDelta {
        let mut entries: Vec<(usize, JournalEntry)> = Vec::new();
        for (index, shard) in self.shards.iter_mut().enumerate() {
            entries.extend(shard.journal.drain(..).map(|e| (index, e)));
        }
        entries.sort_unstable_by_key(|(shard, e)| (e.at, *shard, e.seq));
        let updates = entries
            .into_iter()
            .map(|(_, e)| {
                let seq = self.delta_seq;
                self.delta_seq += 1;
                DictionaryUpdate {
                    seq,
                    at: e.at,
                    op: e.op,
                }
            })
            .collect();
        DictionaryDelta { updates }
    }

    /// Decode-side mirror of the learning half of [`Self::classify`]: ticks
    /// the shard clock and inserts the basis, returning its global
    /// identifier. Used when replaying `NewBasis` records.
    pub fn learn(&mut self, shard: usize, basis: BitVec, hash: u64) -> Result<u64> {
        let s = &mut self.shards[shard];
        s.clock += 1;
        s.stats.lookups += 1;
        let outcome = s.dict.insert_hashed(basis, hash, s.clock)?;
        if outcome.already_known {
            s.stats.hits += 1;
        } else {
            s.stats.learned += 1;
            if outcome.evicted.is_some() {
                s.stats.evictions += 1;
            }
        }
        Ok(s.base + outcome.id)
    }

    /// Decode-side lookup of a global identifier: ticks the owning shard's
    /// clock, touches the entry and returns a reference to its basis.
    pub fn lookup_id_ref(&mut self, id: u64, touch: bool) -> Option<&BitVec> {
        let shard = self.shard_of_id(id);
        let s = self.shards.get_mut(shard)?;
        s.clock += 1;
        let local = id - s.base;
        s.dict.lookup_id_ref(local, s.clock, touch)
    }

    /// Disjoint mutable handles to every shard, for fan-out across worker
    /// threads. Handle `i` operates on shard `i`; distributing handles
    /// round-robin over threads keeps each shard owned by exactly one
    /// thread, which is all the synchronization the engine needs.
    pub fn shard_handles(&mut self) -> Vec<ShardHandle<'_>> {
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(index, shard)| ShardHandle { shard, index })
            .collect()
    }

    /// Next sequence number [`Self::take_delta`] will stamp. The persistence
    /// layer records it in checkpoints so a restored dictionary continues
    /// the global update ordering where the crashed one stopped.
    pub fn delta_seq(&self) -> u64 {
        self.delta_seq
    }

    /// Exports the complete behavioural state: every shard's dictionary
    /// ([`zipline_gd::BasisDictionaryState`]), clock and counters, plus the
    /// global delta sequence. Undrained journal entries are *not* part of
    /// the state — the persistence layer always drains ([`Self::take_delta`])
    /// before checkpointing. Restoring via [`Self::from_state`] yields a
    /// dictionary whose future outputs are bit-identical to the original's.
    pub fn export_state(&self) -> DictionaryState {
        DictionaryState {
            shard_count: self.shards.len(),
            shard_capacity: self.shard_capacity,
            delta_seq: self.delta_seq,
            shards: self
                .shards
                .iter()
                .map(|s| ShardState {
                    clock: s.clock,
                    stats: s.stats,
                    dict: s.dict.export_state(),
                })
                .collect(),
        }
    }

    /// Rebuilds a dictionary from an exported state (journaling off; the
    /// caller re-enables it for live sync). Structural inconsistencies fail
    /// loudly rather than silently misrestore.
    pub fn from_state(state: &DictionaryState) -> Result<Self> {
        if state.shards.len() != state.shard_count {
            return Err(GdError::InvalidConfig(format!(
                "dictionary state declares {} shards but carries {}",
                state.shard_count,
                state.shards.len()
            )));
        }
        let mut d = Self::new(state.shard_capacity * state.shard_count, state.shard_count)?;
        for (shard, restored) in d.shards.iter_mut().zip(&state.shards) {
            shard.dict = BasisDictionary::from_state(
                state.shard_capacity,
                EvictionPolicy::Lru,
                None,
                &restored.dict,
            )?;
            shard.clock = restored.clock;
            shard.stats = restored.stats;
        }
        d.delta_seq = state.delta_seq;
        Ok(d)
    }

    /// Replays one journaled update against the dictionary — the delta-fold
    /// primitive behind crash recovery when the newest checkpoint predates
    /// the last committed batch. The resulting `identifier → basis` mapping
    /// is exactly what the original dictionary held after journaling the
    /// update; recency metadata is approximated (one clock tick per applied
    /// update), so delta-fold recovery is *consistent* rather than bit-exact
    /// — see the persist module docs. Updates must arrive in `seq` order; a
    /// stale or repeated sequence number (a duplicated log tail) fails
    /// loudly.
    pub fn apply_update(&mut self, update: &DictionaryUpdate) -> Result<()> {
        if update.seq < self.delta_seq {
            return Err(GdError::InvalidConfig(format!(
                "replayed update seq {} is stale (dictionary is at {}) — \
                 duplicated or reordered event stream",
                update.seq, self.delta_seq
            )));
        }
        let id = update.op.id();
        let shard_index = self.shard_of_id(id);
        let Some(s) = self.shards.get_mut(shard_index) else {
            return Err(GdError::InvalidConfig(format!(
                "replayed update for id {id} maps to shard {shard_index} \
                 of {}",
                self.shards.len()
            )));
        };
        let local = id - s.base;
        match &update.op {
            UpdateOp::Install { basis, .. } => {
                s.clock += 1;
                let now = s.clock;
                s.dict.install_at(local, basis.clone(), now)?;
            }
            UpdateOp::Remove { .. } => {
                if s.dict.remove_id(local).is_none() {
                    return Err(GdError::InvalidConfig(format!(
                        "replayed remove for id {id} with no live mapping"
                    )));
                }
            }
        }
        self.delta_seq = update.seq + 1;
        Ok(())
    }

    /// Merged, shard-transparent view of the dictionary.
    pub fn snapshot(&self) -> DictionarySnapshot {
        let mut entries: Vec<(u64, BitVec)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.dict
                    .iter()
                    .map(move |(local, basis)| (s.base + local, basis.clone()))
            })
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        DictionarySnapshot {
            shard_count: self.shards.len(),
            shard_capacity: self.shard_capacity,
            entries,
            shard_stats: self.shard_stats(),
            shard_lens: self.shard_lens(),
        }
    }
}

/// Exclusive access to one shard, handed to a worker thread.
#[derive(Debug)]
pub struct ShardHandle<'a> {
    shard: &'a mut Shard,
    index: usize,
}

impl ShardHandle<'_> {
    /// Index of the shard this handle owns.
    pub fn index(&self) -> usize {
        self.index
    }

    /// See [`ShardedDictionary::classify`] (same journaling caveat: use
    /// [`Self::classify_at`] on a journaling dictionary).
    pub fn classify(&mut self, basis: &BitVec, hash: u64) -> Result<ShardOutcome> {
        debug_assert!(
            !self.shard.journal_enabled,
            "journaling dictionaries must classify with an explicit position (classify_at)"
        );
        classify_in(self.shard, basis, hash, 0)
    }

    /// See [`ShardedDictionary::classify_at`].
    pub fn classify_at(&mut self, basis: &BitVec, hash: u64, at: u64) -> Result<ShardOutcome> {
        classify_in(self.shard, basis, hash, at)
    }
}

/// Per-shard slice of a [`DictionaryState`] export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardState {
    /// The shard's logical clock.
    pub clock: u64,
    /// The shard's counters.
    pub stats: ShardStats,
    /// Full behavioural state of the backing dictionary.
    pub dict: BasisDictionaryState,
}

/// The complete behavioural state of a [`ShardedDictionary`] — what the
/// persistence layer's checkpoint records serialize. Unlike the sync-oriented
/// [`DictionarySnapshot`] (live mappings only), this captures recency order,
/// identifier pools, clocks and counters, so a restored dictionary evolves
/// bit-identically to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryState {
    /// Number of shards.
    pub shard_count: usize,
    /// Identifiers owned by each shard.
    pub shard_capacity: usize,
    /// Next global delta sequence number.
    pub delta_seq: u64,
    /// Per-shard state, indexed by shard.
    pub shards: Vec<ShardState>,
}

/// Merged view of a [`ShardedDictionary`] at a point in time: every
/// `(global identifier, basis)` mapping plus per-shard statistics. This is
/// what the control plane ships to a decoder to sync its deviation table
/// (identifier → basis) with an engine-compressed stream.
#[derive(Debug, Clone)]
pub struct DictionarySnapshot {
    /// Number of shards the dictionary was split into.
    pub shard_count: usize,
    /// Identifiers owned by each shard.
    pub shard_capacity: usize,
    /// All mappings, sorted by global identifier.
    pub entries: Vec<(u64, BitVec)>,
    /// Per-shard counters, indexed by shard.
    pub shard_stats: Vec<ShardStats>,
    /// Per-shard occupancy, indexed by shard.
    pub shard_lens: Vec<usize>,
}

impl DictionarySnapshot {
    /// Number of mappings in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no mapping.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(v: u64) -> BitVec {
        BitVec::from_u64(v, 16)
    }

    #[test]
    fn shard_counts_must_divide_capacity() {
        assert!(ShardedDictionary::new(16, 1).is_ok());
        assert!(ShardedDictionary::new(16, 4).is_ok());
        assert!(ShardedDictionary::new(16, 16).is_ok());
        assert!(ShardedDictionary::new(16, 0).is_err());
        assert!(ShardedDictionary::new(16, 3).is_err());
        assert!(ShardedDictionary::new(16, 32).is_err());
    }

    #[test]
    fn global_identifiers_partition_by_shard() {
        let mut d = ShardedDictionary::new(64, 4).unwrap();
        assert_eq!(d.shard_capacity(), 16);
        for v in 0..12u64 {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            match d.classify(shard, &b, h).unwrap() {
                ShardOutcome::Learned { id, .. } => {
                    assert_eq!(d.shard_of_id(id), shard, "id {id} maps back to its shard");
                }
                ShardOutcome::Known { .. } => panic!("fresh basis cannot be known"),
            }
        }
        assert_eq!(d.len(), 12);
    }

    #[test]
    fn known_bases_resolve_to_the_same_identifier() {
        let mut d = ShardedDictionary::new(8, 2).unwrap();
        let b = basis(7);
        let h = b.hash_words();
        let shard = d.shard_of_hash(h);
        let first = d.classify(shard, &b, h).unwrap();
        let second = d.classify(shard, &b, h).unwrap();
        let ShardOutcome::Learned { id: learned, .. } = first else {
            panic!("first sighting learns");
        };
        assert_eq!(second, ShardOutcome::Known { id: learned });
        let stats = d.shard_stats()[shard];
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.learned, 1);
    }

    #[test]
    fn one_shard_matches_plain_dictionary_ids() {
        let mut sharded = ShardedDictionary::new(8, 1).unwrap();
        let mut plain = BasisDictionary::new(8);
        let mut clock = 0u64;
        for v in [3u64, 9, 3, 12, 9, 20, 3] {
            let b = basis(v);
            let h = b.hash_words();
            clock += 1;
            let plain_id = match plain.lookup_basis_hashed(&b, h, clock, true) {
                Some(id) => id,
                None => plain.insert_hashed(b.clone(), h, clock).unwrap().id,
            };
            let sharded_id = match sharded.classify(0, &b, h).unwrap() {
                ShardOutcome::Known { id } | ShardOutcome::Learned { id, .. } => id,
            };
            assert_eq!(plain_id, sharded_id, "value {v}");
        }
    }

    #[test]
    fn learn_and_lookup_mirror_classify() {
        // Compressor side.
        let mut comp = ShardedDictionary::new(8, 2).unwrap();
        // Decoder side, driven only by what the records would carry.
        let mut dec = ShardedDictionary::new(8, 2).unwrap();
        for v in [1u64, 2, 1, 3, 2, 1, 4, 4, 1] {
            let b = basis(v);
            let h = b.hash_words();
            let shard = comp.shard_of_hash(h);
            match comp.classify(shard, &b, h).unwrap() {
                ShardOutcome::Learned { id, .. } => {
                    let learned = dec.learn(dec.shard_of_hash(h), b.clone(), h).unwrap();
                    assert_eq!(learned, id, "decoder assigns the same id");
                }
                ShardOutcome::Known { id } => {
                    assert_eq!(
                        dec.lookup_id_ref(id, true),
                        Some(&b),
                        "decoder resolves id {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn journaling_is_off_by_default_and_records_when_enabled() {
        let mut d = ShardedDictionary::new(4, 2).unwrap();
        assert!(!d.journal_enabled());
        let b = basis(1);
        let h = b.hash_words();
        d.classify_at(d.shard_of_hash(h), &b, h, 0).unwrap();
        assert!(d.take_delta().is_empty(), "nothing journaled while off");

        d.enable_journal();
        assert!(d.journal_enabled());
        // Fill one shard past its 2-identifier slice to force an eviction.
        let mut at = 0u64;
        let mut learned = Vec::new();
        for v in 0..64u64 {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            at += 1;
            if let ShardOutcome::Learned { id, .. } = d.classify_at(shard, &b, h, at).unwrap() {
                learned.push((at, id));
            }
        }
        let delta = d.take_delta();
        assert!(!delta.is_empty());
        // Sorted by position, seq strictly increasing from zero.
        assert!(delta
            .updates
            .windows(2)
            .all(|w| w[0].at <= w[1].at && w[0].seq < w[1].seq));
        assert_eq!(delta.updates[0].seq, 0);
        // Every learned basis has its install at the position it happened.
        let installs: Vec<(u64, u64)> = delta
            .updates
            .iter()
            .filter_map(|u| match &u.op {
                UpdateOp::Install { id, .. } => Some((u.at, *id)),
                UpdateOp::Remove { .. } => None,
            })
            .collect();
        assert_eq!(installs, learned);
        // A second drain yields nothing, but keeps the global sequence.
        assert!(d.take_delta().is_empty());
        let b = basis(1000);
        let h = b.hash_words();
        d.classify_at(d.shard_of_hash(h), &b, h, 0).unwrap();
        let next = d.take_delta();
        assert_eq!(next.updates[0].seq, delta.updates.last().unwrap().seq + 1);

        // Disabling restores the zero-cost default (and positionless
        // classify becomes legal again).
        d.disable_journal();
        assert!(!d.journal_enabled());
        let b = basis(2000);
        let h = b.hash_words();
        d.classify(d.shard_of_hash(h), &b, h).unwrap();
        assert!(d.take_delta().is_empty());
    }

    /// Churns a journaling dictionary through `values` distinct bases,
    /// returning the drained delta.
    fn churn(d: &mut ShardedDictionary, values: std::ops::Range<u64>) -> DictionaryDelta {
        for (at, v) in values.enumerate() {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            d.classify_at(shard, &b, h, at as u64).unwrap();
        }
        d.take_delta()
    }

    #[test]
    fn export_then_restore_yields_bit_identical_future_deltas() {
        let mut original = ShardedDictionary::new(8, 2).unwrap();
        original.enable_journal();
        churn(&mut original, 0..40);

        let state = original.export_state();
        let mut restored = ShardedDictionary::from_state(&state).unwrap();
        assert!(!restored.journal_enabled(), "restore leaves journaling off");
        assert_eq!(restored.export_state(), state, "export is a fixed point");
        restored.enable_journal();

        // Same tail of work produces the same classifications AND the same
        // delta (ids, order, global sequence numbers).
        let delta_a = churn(&mut original, 40..90);
        let delta_b = churn(&mut restored, 40..90);
        assert_eq!(delta_a, delta_b);
        assert_eq!(original.shard_stats(), restored.shard_stats());
        assert_eq!(original.delta_seq(), restored.delta_seq());
    }

    #[test]
    fn from_state_rejects_inconsistent_shape() {
        let d = ShardedDictionary::new(8, 2).unwrap();
        let mut state = d.export_state();
        state.shards.pop();
        assert!(ShardedDictionary::from_state(&state).is_err());
    }

    #[test]
    fn apply_update_folds_a_delta_to_the_same_mapping() {
        let mut original = ShardedDictionary::new(8, 2).unwrap();
        original.enable_journal();
        let delta = churn(&mut original, 0..50);
        assert!(
            original.shard_stats().iter().any(|s| s.evictions > 0),
            "the workload must churn"
        );

        let mut replayed = ShardedDictionary::new(8, 2).unwrap();
        for update in &delta.updates {
            replayed.apply_update(update).unwrap();
        }
        let a = original.snapshot();
        let b = replayed.snapshot();
        assert_eq!(a.entries, b.entries, "identical id → basis mapping");
        assert_eq!(replayed.delta_seq(), original.delta_seq());
    }

    #[test]
    fn apply_update_rejects_stale_and_out_of_range_events() {
        let mut d = ShardedDictionary::new(8, 2).unwrap();
        let install = DictionaryUpdate {
            seq: 0,
            at: 0,
            op: UpdateOp::Install {
                id: 0,
                basis: basis(1),
            },
        };
        d.apply_update(&install).unwrap();
        // Replaying the same seq again = duplicated log tail.
        assert!(d.apply_update(&install).is_err());
        // Identifier outside every shard's slice.
        assert!(d
            .apply_update(&DictionaryUpdate {
                seq: 5,
                at: 0,
                op: UpdateOp::Remove { id: 99 },
            })
            .is_err());
        // Remove of a never-installed mapping.
        assert!(d
            .apply_update(&DictionaryUpdate {
                seq: 6,
                at: 0,
                op: UpdateOp::Remove { id: 5 },
            })
            .is_err());
    }

    #[test]
    fn snapshot_merges_all_shards_sorted() {
        let mut d = ShardedDictionary::new(16, 4).unwrap();
        for v in 0..10u64 {
            let b = basis(v);
            let h = b.hash_words();
            let shard = d.shard_of_hash(h);
            d.classify(shard, &b, h).unwrap();
        }
        let snap = d.snapshot();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.shard_count, 4);
        assert_eq!(snap.shard_lens.iter().sum::<usize>(), 10);
        assert!(snap.entries.windows(2).all(|w| w[0].0 < w[1].0));
        for (id, basis) in &snap.entries {
            assert_eq!(
                d.lookup_id_ref(*id, false),
                Some(basis),
                "snapshot id {id} resolves"
            );
        }
    }
}
