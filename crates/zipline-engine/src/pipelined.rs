//! Pipelined asynchronous ingest: overlap record accumulation with batch
//! compression.
//!
//! [`EngineStream`](crate::EngineStream) is fully synchronous: while a batch
//! compresses, ingest stalls, and while the next batch accumulates, the
//! engine idles. On a host that sits between NIC ingest and the wire (the
//! deployment `zipline::host` models) those two phases are exactly the work
//! that should overlap. [`PipelinedStream`] does that with standard-library
//! primitives only (the workspace is offline/vendored — no tokio):
//!
//! * the caller pushes records into a **fill buffer**; whenever a batch's
//!   worth of backend units has accumulated, the buffer is handed to a
//!   dedicated **engine worker thread** over a *bounded*
//!   [`std::sync::mpsc::sync_channel`] whose capacity is the pipeline
//!   *depth* — when the worker falls behind, `push_record` blocks on the
//!   send, which is the backpressure that keeps memory proportional to
//!   `depth + 2` batches instead of the stream length;
//! * the worker owns the [`CompressionEngine`] for the stream's lifetime:
//!   it compresses each batch, drains the live-sync
//!   [`DictionaryDelta`](crate::DictionaryDelta), serializes every payload
//!   through the backend's recycled wire scratch into a flat per-batch
//!   buffer, and sends the result back;
//! * batch buffers are **double-buffered and recycled**: each result carries
//!   its input buffer and wire buffers home, and the caller reuses them for
//!   the next batch (the same scratch-recycling discipline as the engine's
//!   per-worker `EncodeScratch`), so steady state allocates nothing beyond
//!   the per-batch delta `Vec` that live sync drains — the same allocation
//!   [`take_delta`](crate::CompressionBackend::take_delta) makes on the
//!   synchronous path;
//! * the caller drains finished batches opportunistically on every push and
//!   exhaustively at [`finish`](PipelinedStream::finish), invoking the
//!   payload and control sinks **on the calling thread**, in batch order —
//!   sinks therefore need no `Send` bound and observe exactly the sequence
//!   the synchronous stream would have produced.
//!
//! # Determinism
//!
//! The worker processes batches in FIFO order against the same engine state
//! the synchronous stream would have used, and emission goes through the
//! same `InterleavedEmitter` discipline (shared with `EngineStream`), so
//! the output — payload bytes
//! *and* interleaved control updates — remains a pure function of
//! `(data, shard count, batch size)` and is **bit-identical** to
//! [`EngineStream`](crate::EngineStream) for every backend, spawn policy and
//! depth (enforced by `tests/pipelined_ingest.rs`, including churn workloads
//! with live sync).
//!
//! # Single-core degradation
//!
//! Under [`SpawnPolicy::Auto`] the stream spawns its worker only when the
//! host has more than one core — the same fallback the engine's batch
//! workers use. On a 1-core container it degrades to inline execution on
//! the calling thread: no channel, no thread, same bytes.
//!
//! # Construction
//!
//! Opt in through [`EngineBuilder::pipelined`](crate::EngineBuilder::pipelined)
//! (validated at `build()`), then wrap the engine:
//!
//! ```
//! use zipline_engine::{EngineBuilder, PipelinedStream};
//!
//! let engine = EngineBuilder::new()
//!     .shards(4)
//!     .workers(2)
//!     .pipelined(2)
//!     .build()
//!     .unwrap();
//! let mut payloads = 0u64;
//! let mut stream = PipelinedStream::new(engine, 16, |_pt, _bytes| payloads += 1).unwrap();
//! stream.push_record(&[7u8; 32 * 40]).unwrap();
//! let (engine, summary) = stream.finish().unwrap();
//! assert_eq!(summary.payloads_emitted, payloads);
//! assert!(engine.stats().is_consistent());
//! ```
//!
//! Because the worker must own the engine, `PipelinedStream` takes the
//! [`CompressionEngine`] **by value** and returns it from `finish` — unlike
//! `EngineStream`, which borrows. A control sink is attached at
//! construction ([`PipelinedStream::with_control_sink`]); it cannot be added
//! later, since for the threaded mode journaling must be enabled before the
//! engine moves to the worker.
//!
//! # Durability (commit-then-emit)
//!
//! For an engine built with
//! [`EngineBuilder::durable`](crate::EngineBuilder::durable), the
//! [`EngineStore`] is detached at construction and held **caller-side**:
//! each finished batch is committed (frames + dictionary delta + commit
//! marker) on the emitting thread strictly before its first sink call, so
//! sinks only ever observe committed output — the same guarantee as the
//! synchronous [`EngineStream`](crate::EngineStream). Because the
//! dictionary lives on the worker, mid-stream commits carry no checkpoint;
//! recovery folds the delta log instead, and
//! [`finish`](PipelinedStream::finish) compacts the store from the
//! returned engine (one checkpoint) before re-attaching it. Worker-side
//! failures surface as typed [`EngineError`]s: a parked compression error
//! converts via `From<GdError>`, and a worker that vanished without one is
//! [`EngineError::WorkerLost`].

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use crate::backend::CompressionBackend;
use crate::engine::{CompressionEngine, GdBackend, SpawnPolicy};
use crate::error::{EngineError, Result};
use crate::persist::EngineStore;
use crate::registry::{CodecCursor, CodecId};
use crate::shard::DictionaryUpdate;
use crate::stream::{InterleavedEmitter, StreamSummary};
use zipline_gd::error::{GdError, Result as GdResult};
use zipline_gd::packet::PacketType;
use zipline_traces::ChunkWorkload;

/// Maximum accepted pipeline depth; a larger value is almost certainly a
/// units mistake (depth is *batches in flight*, not bytes).
pub const MAX_PIPELINE_DEPTH: usize = 1024;

/// Host parallelism, probed once per process:
/// `std::thread::available_parallelism` reads cgroup files on Linux
/// (~14 µs), which would otherwise tax every short-lived stream under
/// [`SpawnPolicy::Auto`].
fn host_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Shape of the ingest pipeline, set by
/// [`EngineBuilder::pipelined`](crate::EngineBuilder::pipelined) and carried
/// on the built [`CompressionEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Bounded channel capacity: filled batches allowed in flight between
    /// ingest and the engine worker before `push_record` blocks
    /// (backpressure). Depth 1 is classic double buffering: one batch
    /// queued, one compressing, one filling.
    pub depth: usize,
    /// Whether the stream may spawn its worker thread (inherited from the
    /// engine configuration at `build()`): [`SpawnPolicy::Auto`] spawns only
    /// on multi-core hosts, [`SpawnPolicy::Inline`] never does,
    /// [`SpawnPolicy::Threads`] always does.
    pub spawn: SpawnPolicy,
}

impl PipelineConfig {
    /// Checks internal consistency (depth in `1..=`[`MAX_PIPELINE_DEPTH`]).
    pub fn validate(&self) -> GdResult<()> {
        if self.depth == 0 || self.depth > MAX_PIPELINE_DEPTH {
            return Err(GdError::InvalidConfig(format!(
                "pipeline depth must be in 1..={MAX_PIPELINE_DEPTH}, got {}",
                self.depth
            )));
        }
        Ok(())
    }
}

/// One batch travelling through the pipeline, in both directions: towards
/// the worker `input` holds the filled batch; on the way back `wire`,
/// `records` and `updates` hold the compressed result and `input` rides
/// along so the caller can recycle it. The `input`, `wire` and `records`
/// buffers are reused across the stream's lifetime; `updates` is the `Vec`
/// freshly allocated by `take_delta` each batch (exactly as on the
/// synchronous path) and is consumed by the emission.
#[derive(Debug, Default)]
struct BatchShuttle {
    /// The batch's input bytes (a whole number of backend units, except for
    /// the final flush).
    input: Vec<u8>,
    /// Serialized payloads of the whole batch, concatenated.
    wire: Vec<u8>,
    /// `(packet type, payload length)` per record, in input order.
    records: Vec<(PacketType, u32)>,
    /// Dictionary updates journaled by this batch (empty without live sync).
    updates: Vec<DictionaryUpdate>,
    /// The batch's codec tag, captured worker-side from a tagging
    /// (multi-codec) backend; `None` for fixed backends.
    codec: Option<CodecId>,
}

/// The worker half of the threaded pipeline: owns the engine, compresses
/// shuttles in FIFO order, returns the engine when the job channel closes.
fn run_worker<B: CompressionBackend>(
    mut engine: CompressionEngine<B>,
    jobs: Receiver<BatchShuttle>,
    results: Sender<GdResult<BatchShuttle>>,
) -> CompressionEngine<B> {
    while let Ok(mut shuttle) = jobs.recv() {
        let outcome = compress_shuttle(&mut engine, &mut shuttle);
        let failed = outcome.is_err();
        // A send error means the caller is gone (dropped mid-stream); there
        // is nobody left to observe results, so just stop compressing.
        if results.send(outcome.map(|()| shuttle)).is_err() || failed {
            break;
        }
    }
    engine
}

/// Compresses one shuttle in place: batch → wire bytes + record index +
/// drained delta. Identical sequencing to `EngineStream::emit_batch`
/// (compress, drain journal, serialize in input order).
fn compress_shuttle<B: CompressionBackend>(
    engine: &mut CompressionEngine<B>,
    shuttle: &mut BatchShuttle,
) -> GdResult<()> {
    shuttle.wire.clear();
    shuttle.records.clear();
    shuttle.updates.clear();
    let batch = engine.compress_batch(&shuttle.input)?;
    let backend = engine.backend_mut();
    // Drain the journal even when no control sink consumes it, so stale
    // events never leak into a later batch's delta (same rule as the
    // synchronous stream).
    if backend.live_sync_enabled() {
        shuttle.updates = backend.take_delta().updates;
    }
    // Resolve the tag before emit_batch consumes the batch by value.
    shuttle.codec = backend
        .tags_batches()
        .then(|| backend.batch_codec_id(&batch));
    let BatchShuttle { wire, records, .. } = shuttle;
    backend.emit_batch(batch, &mut |packet_type, bytes| {
        records.push((packet_type, bytes.len() as u32));
        wire.extend_from_slice(bytes);
    })
}

/// Caller-side state of the threaded pipeline.
struct Threaded<B: CompressionBackend> {
    /// Bounded: sending a filled batch blocks when `depth` batches are
    /// already queued — the stream's backpressure.
    jobs: SyncSender<BatchShuttle>,
    /// FIFO results; batch order is emission order.
    results: Receiver<GdResult<BatchShuttle>>,
    worker: JoinHandle<CompressionEngine<B>>,
    /// Recycled shuttles (input + wire buffers), refilled as results drain.
    spare: Vec<BatchShuttle>,
}

/// Where the engine lives for the stream's lifetime.
enum Backing<B: CompressionBackend> {
    /// Single-core / inline fallback: the engine stays on the calling
    /// thread and every batch compresses synchronously at dispatch.
    Inline(Box<CompressionEngine<B>>),
    Threaded(Threaded<B>),
    /// Transient teardown state (after `finish`, or mid-`Drop`).
    Closed,
}

/// Pipelined front-end over a [`CompressionEngine`]; see the module docs.
pub struct PipelinedStream<F, G = fn(&DictionaryUpdate), B = GdBackend>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
    B: CompressionBackend + Send + 'static,
{
    backing: Backing<B>,
    sink: F,
    /// Live-sync control sink, fed each dictionary update in wire order.
    control_sink: Option<G>,
    /// Bytes pushed but not yet dispatched (always shorter than a batch).
    buffer: Vec<u8>,
    /// Dispatch threshold in bytes (a whole number of backend units).
    batch_bytes: usize,
    summary: StreamSummary,
    /// Durable store, detached from the engine at construction and held on
    /// the **calling** thread: commit-then-emit happens where the sinks run,
    /// so sinks only ever observe committed batches, while the worker owns
    /// nothing but the engine. Mid-stream commits carry no checkpoint (the
    /// dictionary lives on the worker); `finish` compacts the store from
    /// the returned engine and re-attaches it.
    store: Option<EngineStore>,
    /// Reusable staging shuttle for the inline backing, so the inline path
    /// shares the threaded path's commit-then-emit discipline.
    inline_shuttle: BatchShuttle,
    /// When attached, publishes each batch's codec tag before its payloads
    /// reach the sink (see [`EngineStream::set_codec_cursor`]).
    ///
    /// [`EngineStream::set_codec_cursor`]: crate::EngineStream::set_codec_cursor
    codec_cursor: Option<CodecCursor>,
}

impl<F, B> PipelinedStream<F, fn(&DictionaryUpdate), B>
where
    F: FnMut(PacketType, &[u8]),
    B: CompressionBackend + Send + 'static,
{
    /// Creates a pipelined stream that dispatches a batch every
    /// `batch_units` backend units ([`CompressionBackend::unit_bytes`] each
    /// — chunks for GD, bytes for deflate/passthrough), emitting each wire
    /// payload to `sink` as `(packet type, payload bytes)` on the calling
    /// thread.
    ///
    /// The engine must have been built with
    /// [`EngineBuilder::pipelined`](crate::EngineBuilder::pipelined);
    /// `finish` hands it back.
    pub fn new(engine: CompressionEngine<B>, batch_units: usize, sink: F) -> Result<Self> {
        Self::with_control_sink(engine, batch_units, sink, None)
    }
}

impl<F, G, B> PipelinedStream<F, G, B>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
    B: CompressionBackend + Send + 'static,
{
    /// Creates a pipelined stream with an optional live-sync control sink.
    /// When `control_sink` is `Some`, journaling is enabled on the backend
    /// (before the engine moves to the worker) and every install/evict
    /// event is handed to the sink interleaved with the payloads, exactly
    /// as [`EngineStream::with_control_sink`](crate::EngineStream::with_control_sink)
    /// would.
    pub fn with_control_sink(
        mut engine: CompressionEngine<B>,
        batch_units: usize,
        sink: F,
        control_sink: Option<G>,
    ) -> Result<Self> {
        let pipeline = engine.pipeline().ok_or_else(|| {
            GdError::InvalidConfig(
                "engine was not configured for pipelined ingest; \
                 opt in with EngineBuilder::pipelined(depth)"
                    .into(),
            )
        })?;
        pipeline.validate()?;
        let unit_bytes = engine.backend().unit_bytes().max(1);
        if control_sink.is_some() {
            engine.set_live_sync(true);
        }
        // The store stays caller-side; only the engine crosses to the
        // worker thread.
        let store = engine.take_store();
        let threaded = match pipeline.spawn {
            SpawnPolicy::Inline => false,
            SpawnPolicy::Threads => true,
            SpawnPolicy::Auto => host_cores() > 1,
        };
        let backing = if threaded {
            let (jobs, job_rx) = sync_channel::<BatchShuttle>(pipeline.depth);
            let (result_tx, results) = std::sync::mpsc::channel();
            let worker = std::thread::Builder::new()
                .name("zipline-pipelined".into())
                .spawn(move || run_worker(engine, job_rx, result_tx))
                .expect("spawn pipelined engine worker");
            Backing::Threaded(Threaded {
                jobs,
                results,
                worker,
                spare: Vec::new(),
            })
        } else {
            Backing::Inline(Box::new(engine))
        };
        Ok(Self {
            backing,
            sink,
            control_sink,
            buffer: Vec::new(),
            batch_bytes: batch_units.max(1) * unit_bytes,
            summary: StreamSummary::default(),
            store,
            inline_shuttle: BatchShuttle::default(),
            codec_cursor: None,
        })
    }

    /// Attaches a [`CodecCursor`] the stream publishes each batch's codec
    /// tag through, exactly as
    /// [`EngineStream::set_codec_cursor`](crate::EngineStream::set_codec_cursor)
    /// does: `Some(id)` while a tagging backend's batch flows to the sink,
    /// `None` for fixed backends.
    pub fn set_codec_cursor(&mut self, cursor: CodecCursor) {
        self.codec_cursor = Some(cursor);
    }

    /// True when the stream runs an engine worker thread (false on the
    /// inline fallback — single-core hosts under [`SpawnPolicy::Auto`], or
    /// [`SpawnPolicy::Inline`]).
    pub fn is_threaded(&self) -> bool {
        matches!(self.backing, Backing::Threaded(_))
    }

    /// Appends one record (any number of bytes) to the stream, dispatching
    /// a batch to the engine whenever enough units have accumulated. Blocks
    /// only when `depth` batches are already in flight (backpressure).
    pub fn push_record(&mut self, bytes: &[u8]) -> Result<()> {
        self.summary.bytes_in += bytes.len() as u64;
        // Fill up to one batch at a time so a record larger than the batch
        // streams through batch-sized dispatches: peak memory stays
        // proportional to the batch size, never the record size.
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = self.batch_bytes - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.batch_bytes {
                self.dispatch_batch()?;
            }
        }
        Ok(())
    }

    /// Feeds every chunk of a workload generator through the stream.
    pub fn consume_workload(&mut self, workload: &dyn ChunkWorkload) -> Result<()> {
        for chunk in workload.chunks() {
            self.push_record(&chunk)?;
        }
        Ok(())
    }

    /// Hands the current fill buffer to the engine. Inline: compresses and
    /// emits on the spot. Threaded: drains any finished batches first
    /// (non-blocking), then sends the buffer to the worker, blocking only
    /// when the pipeline is `depth` batches deep.
    fn dispatch_batch(&mut self) -> Result<()> {
        let Self {
            backing,
            sink,
            control_sink,
            buffer,
            summary,
            store,
            inline_shuttle,
            codec_cursor,
            ..
        } = self;
        match backing {
            Backing::Inline(engine) => {
                std::mem::swap(&mut inline_shuttle.input, buffer);
                buffer.clear();
                compress_shuttle(engine, inline_shuttle)?;
                emit_shuttle(
                    inline_shuttle,
                    store.as_mut(),
                    codec_cursor.as_ref(),
                    sink,
                    control_sink,
                    summary,
                )?;
                Ok(())
            }
            Backing::Threaded(threaded) => {
                // Opportunistic drain keeps result memory bounded and
                // refills the shuttle pool without ever blocking ingest
                // (both TryRecvError variants just mean "nothing to drain").
                while let Ok(result) = threaded.results.try_recv() {
                    let mut shuttle = result?;
                    emit_shuttle(
                        &mut shuttle,
                        store.as_mut(),
                        codec_cursor.as_ref(),
                        sink,
                        control_sink,
                        summary,
                    )?;
                    threaded.spare.push(shuttle);
                }
                let mut shuttle = threaded.spare.pop().unwrap_or_default();
                std::mem::swap(&mut shuttle.input, buffer);
                buffer.clear();
                if threaded.jobs.send(shuttle).is_err() {
                    // The worker exited early: the only cause is a
                    // compression error, which it parked in the results
                    // channel before stopping.
                    return Err(Self::collect_worker_error(threaded));
                }
                Ok(())
            }
            Backing::Closed => unreachable!("dispatch after finish"),
        }
    }

    /// Fishes the worker's parked error out of the results channel. A
    /// worker that died without parking one (a torn-down thread, not a
    /// compression failure) surfaces as the typed
    /// [`EngineError::WorkerLost`] instead of an ad-hoc string.
    fn collect_worker_error(threaded: &Threaded<B>) -> EngineError {
        while let Ok(result) = threaded.results.recv() {
            if let Err(e) = result {
                return e.into();
            }
        }
        EngineError::WorkerLost
    }

    /// Flushes everything still buffered (for GD, a trailing partial chunk
    /// is emitted verbatim as a type 1 payload), drains the pipeline, joins
    /// the worker and returns the engine together with the stream totals.
    /// On a durable engine the shard store — held caller-side for the
    /// stream's lifetime — is compacted from the returned engine's
    /// dictionary and re-attached, so a subsequent warm restart rehydrates
    /// from one checkpoint instead of folding the whole delta log.
    pub fn finish(mut self) -> Result<(CompressionEngine<B>, StreamSummary)> {
        if !self.buffer.is_empty() {
            self.dispatch_batch()?;
        }
        let Self {
            backing,
            sink,
            control_sink,
            summary,
            store,
            codec_cursor,
            ..
        } = &mut self;
        let mut engine = match std::mem::replace(backing, Backing::Closed) {
            Backing::Inline(engine) => *engine,
            Backing::Threaded(threaded) => {
                let Threaded {
                    jobs,
                    results,
                    worker,
                    ..
                } = threaded;
                // Closing the job channel tells the worker to drain and
                // exit; the exhaustive result drain below preserves batch
                // order.
                drop(jobs);
                let mut failure: Option<EngineError> = None;
                for result in results.iter() {
                    match result {
                        Ok(mut shuttle) => {
                            if let Err(e) = emit_shuttle(
                                &mut shuttle,
                                store.as_mut(),
                                codec_cursor.as_ref(),
                                sink,
                                control_sink,
                                summary,
                            ) {
                                failure = Some(e);
                                break;
                            }
                        }
                        Err(e) => {
                            failure = Some(e.into());
                            break;
                        }
                    }
                }
                let engine = match worker.join() {
                    Ok(engine) => engine,
                    Err(panic) => std::panic::resume_unwind(panic),
                };
                if let Some(e) = failure {
                    return Err(e);
                }
                engine
            }
            Backing::Closed => unreachable!("finish called twice"),
        };
        if let Some(mut store) = store.take() {
            if let Some(state) = engine.backend().export_dictionary_state() {
                store.compact(&state)?;
            }
            engine.attach_store(store);
        }
        Ok((engine, *summary))
    }
}

/// Commits (when durable) then emits one finished batch through the shared
/// interleaving discipline. The commit happens strictly before the first
/// sink call, so a crash between them re-emits from the store's journal
/// rather than losing the batch.
fn emit_shuttle<F, G>(
    shuttle: &mut BatchShuttle,
    store: Option<&mut EngineStore>,
    cursor: Option<&CodecCursor>,
    sink: &mut F,
    control_sink: &mut Option<G>,
    summary: &mut StreamSummary,
) -> Result<()>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
{
    if let Some(store) = store {
        store.commit_batch(
            &shuttle.records,
            &shuttle.wire,
            shuttle.codec,
            &shuttle.updates,
            None,
            shuttle.input.len() as u64,
        )?;
    }
    if let Some(cursor) = cursor {
        cursor.set(shuttle.codec);
    }
    let updates = std::mem::take(&mut shuttle.updates);
    let mut emitter = InterleavedEmitter::new(updates, sink, control_sink.as_mut(), summary);
    let mut offset = 0usize;
    for &(packet_type, len) in &shuttle.records {
        let end = offset + len as usize;
        emitter.payload(packet_type, &shuttle.wire[offset..end]);
        offset = end;
    }
    emitter.finish();
    Ok(())
}

impl<F, G, B> Drop for PipelinedStream<F, G, B>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
    B: CompressionBackend + Send + 'static,
{
    /// Dropping the stream without [`finish`](Self::finish) abandons it:
    /// the job channel closes, the worker drains its queue and exits, and
    /// the engine (plus any undelivered output) is discarded. No payloads
    /// are emitted from `drop` — emission is exclusively a `finish`
    /// concern, so a panicking caller never observes half a stream.
    fn drop(&mut self) {
        if let Backing::Threaded(threaded) = std::mem::replace(&mut self.backing, Backing::Closed) {
            let Threaded {
                jobs,
                results,
                worker,
                ..
            } = threaded;
            drop(jobs);
            // Unblock the worker if it is mid-send, then wait for it.
            for _ in results.iter() {}
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;

    fn collect_pipelined(
        builder: EngineBuilder,
        batch_units: usize,
        data: &[u8],
    ) -> Vec<(PacketType, Vec<u8>)> {
        let engine = builder.build().unwrap();
        let mut emitted = Vec::new();
        let mut stream = PipelinedStream::new(engine, batch_units, |pt, bytes: &[u8]| {
            emitted.push((pt, bytes.to_vec()));
        })
        .unwrap();
        stream.push_record(data).unwrap();
        stream.finish().unwrap();
        emitted
    }

    #[test]
    fn unpipelined_engine_is_rejected() {
        let engine = EngineBuilder::new().build().unwrap();
        let err = match PipelinedStream::new(engine, 16, |_, _| {}) {
            Ok(_) => panic!("an engine without a pipeline config must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, EngineError::Gd(GdError::InvalidConfig(_))));
    }

    #[test]
    fn threaded_and_inline_modes_agree() {
        let data: Vec<u8> = (0..32 * 200).map(|i| (i / 640) as u8).collect();
        let inline = collect_pipelined(
            EngineBuilder::new()
                .shards(4)
                .workers(2)
                .spawn(SpawnPolicy::Inline)
                .pipelined(2),
            16,
            &data,
        );
        let threaded = collect_pipelined(
            EngineBuilder::new()
                .shards(4)
                .workers(2)
                .spawn(SpawnPolicy::Threads)
                .pipelined(2),
            16,
            &data,
        );
        assert_eq!(inline, threaded);
        assert!(!inline.is_empty());
    }

    #[test]
    fn spawn_policy_controls_threading() {
        let engine = EngineBuilder::new().pipelined(1).build().unwrap();
        // paper_default is Auto: threading depends on the host, but the
        // stream must report whichever mode it chose.
        let stream = PipelinedStream::new(engine, 16, |_, _| {}).unwrap();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(stream.is_threaded(), cores > 1);
        drop(stream);

        let engine = EngineBuilder::new()
            .spawn(SpawnPolicy::Threads)
            .pipelined(1)
            .build()
            .unwrap();
        let stream = PipelinedStream::new(engine, 16, |_, _| {}).unwrap();
        assert!(stream.is_threaded());
    }

    #[test]
    fn finish_returns_the_engine_with_its_dictionary_state() {
        let engine = EngineBuilder::new()
            .shards(4)
            .workers(2)
            .spawn(SpawnPolicy::Threads)
            .pipelined(2)
            .build()
            .unwrap();
        let mut stream = PipelinedStream::new(engine, 8, |_, _| {}).unwrap();
        stream.push_record(&[9u8; 32 * 64]).unwrap();
        let (engine, summary) = stream.finish().unwrap();
        assert_eq!(summary.bytes_in, 32 * 64);
        assert_eq!(engine.stats().bases_learned, 1);
        assert_eq!(engine.stats().chunks_in, 64);
    }
}
