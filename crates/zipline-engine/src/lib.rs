//! # `zipline-engine` — sharded multi-core GD compression engine
//!
//! The ZipLine paper offloads Generalized Deduplication to the switch, but
//! its end hosts still run the full GD codec. This crate is the host side
//! grown into a production-shaped engine:
//!
//! * [`ShardedDictionary`] — the basis dictionary split into `N` independent
//!   [`zipline_gd::BasisDictionary`] shards selected by the word-parallel
//!   basis hash ([`zipline_gd::BitVec::hash_words`]), with per-shard
//!   statistics, a merged [`DictionarySnapshot`] for *cold* decoder sync and
//!   a per-shard update journal for *live* sync: install/evict events merge
//!   into an ordered [`DictionaryDelta`] per batch;
//! * [`CompressionEngine`] — a fixed pool of `std::thread` workers, each
//!   owning its encode scratch, that fans a batch of chunks across the
//!   shards and reassembles the records in input order. Output is a pure
//!   function of `(data, shard count)`: worker count and spawn policy only
//!   change wall-clock time, and the 1-shard configuration is bit-identical
//!   to [`zipline_gd::GdCompressor::compress_batch`];
//! * [`EngineDecompressor`] — the symmetric batch decoder with recycled
//!   codeword/output scratch, rebuilding the sharded dictionary from the
//!   stream itself;
//! * [`EngineStream`] — the streaming pipeline API: push records (e.g. from
//!   `zipline-traces` workload iterators), get wire-ready
//!   [`zipline_gd::ZipLinePayload`] bytes out through one reused scratch
//!   buffer per worker. With a control sink attached
//!   ([`EngineStream::with_control_sink`]) the stream also emits every
//!   [`DictionaryUpdate`] interleaved with the payloads, which is what keeps
//!   a remote decoder's table live under identifier churn.
//!
//! # `DictionaryDelta` ordering guarantees
//!
//! The delta a batch produces is the contract between the engine and any
//! decoder-sync control plane:
//!
//! 1. updates are ordered by record position `at` (input-order index within
//!    the batch), ties broken by shard index then per-shard journal order;
//!    `seq` is strictly increasing in that order and across batches;
//! 2. an eviction's [`UpdateOp::Remove`] immediately precedes the
//!    [`UpdateOp::Install`] that recycles the identifier (same `at`);
//! 3. applying every update with `at <= i` before decoding record `i`
//!    resolves every `Ref` against exactly the basis the compressor
//!    referenced — the property the interleaved [`EngineStream`] emission
//!    and the `zipline` crate's `EngineControlPlane` rely on;
//! 4. the delta is a pure function of `(data, shard count)`: worker count
//!    and spawn policy never change it.
//!
//! # Quick example
//!
//! ```
//! use zipline_engine::{CompressionEngine, EngineConfig, EngineDecompressor};
//!
//! let config = EngineConfig::paper_default();
//! let mut engine = CompressionEngine::new(config).unwrap();
//!
//! // Sensor-style data: many chunks share a few bases.
//! let data: Vec<u8> = (0..64 * 32).map(|i| (i / 320) as u8).collect();
//! let stream = engine.compress_batch(&data).unwrap();
//!
//! let mut decoder = EngineDecompressor::new(&config).unwrap();
//! assert_eq!(decoder.decompress_batch(&stream).unwrap(), data);
//! ```

pub mod engine;
pub mod shard;
pub mod stream;

pub use engine::{CompressionEngine, EngineConfig, EngineDecompressor, SpawnPolicy};
pub use shard::{
    DictionaryDelta, DictionarySnapshot, DictionaryUpdate, ShardOutcome, ShardStats,
    ShardedDictionary, UpdateOp,
};
pub use stream::{EngineStream, StreamSummary};
