//! # `zipline-engine` — a backend-generic sharded compression engine
//!
//! The ZipLine paper offloads Generalized Deduplication to the switch, but
//! its end hosts still run the full GD codec — and its evaluation compares
//! GD *against* DEFLATE-class compressors. This crate is the host side grown
//! into a production-shaped engine whose pipeline is generic over the codec:
//!
//! * [`CompressionBackend`] — the codec contract: batch compress/decompress
//!   through recycled scratch, wire serialization in record order, and
//!   (for backends with shared decoder state) snapshot + delta hooks for
//!   decoder sync plus per-shard statistics;
//! * [`GdBackend`] — the default backend: the sharded multi-core GD codec.
//!   [`ShardedDictionary`] splits the basis dictionary into `N` independent
//!   [`zipline_gd::BasisDictionary`] shards selected by the word-parallel
//!   basis hash ([`zipline_gd::BitVec::hash_words`]), with per-shard
//!   statistics, a merged [`DictionarySnapshot`] for *cold* decoder sync and
//!   a per-shard update journal for *live* sync; batches fan out over a
//!   fixed pool of `std::thread` workers and reassemble in input order;
//! * [`DeflateBackend`] — the paper's gzip baseline (via `zipline-deflate`)
//!   driven through the *same* engine, stream and host path, one gzip
//!   member per batch; [`PassthroughBackend`] — the identity codec, the
//!   ratio floor and wire-path test double;
//! * [`CompressionEngine<B>`] / [`EngineDecompressor<B>`] — the engine
//!   shell and its decoder mirror. With the default backend
//!   (`CompressionEngine`, `EngineDecompressor` — the names previous
//!   releases exported as concrete types keep compiling) output is a pure
//!   function of `(data, shard count)`: worker count and spawn policy only
//!   change wall-clock time, and the 1-shard configuration is bit-identical
//!   to [`zipline_gd::GdCompressor::compress_batch`] — a property asserted
//!   across the trait boundary by the equivalence suite;
//! * [`EngineStream`] — the streaming pipeline API: push records (e.g. from
//!   `zipline-traces` workload iterators), get wire-ready payloads out
//!   through the backend's recycled scratch. With a control sink attached
//!   ([`EngineStream::control`]) the stream also emits every
//!   [`DictionaryUpdate`] interleaved with the payloads, which is what keeps
//!   a remote decoder's table live under identifier churn;
//! * [`PipelinedStream`] — asynchronous ingest over the same pipeline:
//!   records flow through a bounded, backpressured channel into a dedicated
//!   engine worker thread while the caller keeps filling the next
//!   double-buffered batch, with buffers recycled end to end. Output
//!   (payloads *and* interleaved control updates) is bit-identical to
//!   [`EngineStream`], and on a single-core host the stream degrades to
//!   inline execution under [`SpawnPolicy::Auto`];
//! * [`EngineBuilder`] — the one validated front door: backend, shards,
//!   workers, spawn policy, live sync and the
//!   [`pipelined`](EngineBuilder::pipelined) ingest depth, checked once at
//!   `build()`.
//!
//! # The `CompressionBackend` contract
//!
//! A backend must (see [`backend`] for the full rules):
//!
//! 1. compress batches of a whole number of [`unit_bytes`] (plus one ragged
//!    final flush) losslessly, reusing internal scratch;
//! 2. serialize each batch through [`emit_batch`] **once per record, in
//!    input order** — the record index is the `at` coordinate against which
//!    the stream interleaves dictionary updates;
//! 3. if it maintains shared decoder state, journal every mutation and
//!    drain ordered [`DictionaryDelta`]s whose updates obey the rules below;
//!    a delta-less backend (deflate: every gzip member is self-contained;
//!    passthrough: no state at all) opts out by keeping the default no-op
//!    hooks — snapshots are `None`, deltas are empty, and an attached
//!    control plane simply never sees traffic.
//!
//! [`unit_bytes`]: CompressionBackend::unit_bytes
//! [`emit_batch`]: CompressionBackend::emit_batch
//!
//! # `DictionaryDelta` ordering guarantees
//!
//! The delta a batch produces is the contract between a live-sync backend
//! and any decoder-sync control plane:
//!
//! 1. updates are ordered by record position `at` (input-order index within
//!    the batch), ties broken by shard index then per-shard journal order;
//!    `seq` is strictly increasing in that order and across batches;
//! 2. an eviction's [`UpdateOp::Remove`] immediately precedes the
//!    [`UpdateOp::Install`] that recycles the identifier (same `at`);
//! 3. applying every update with `at <= i` before decoding record `i`
//!    resolves every `Ref` against exactly the basis the compressor
//!    referenced — the property the interleaved [`EngineStream`] emission
//!    and the `zipline` crate's `EngineControlPlane` rely on;
//! 4. the delta is a pure function of `(data, shard count)`: worker count
//!    and spawn policy never change it.
//!
//! # Quick example
//!
//! ```
//! use zipline_engine::{DeflateBackend, EngineBuilder};
//!
//! // Sensor-style data: many chunks share a few bases.
//! let data: Vec<u8> = (0..64 * 32).map(|i| (i / 320) as u8).collect();
//!
//! // The GD engine (default backend), 4 shards, 2 workers.
//! let builder = EngineBuilder::new().shards(4).workers(2);
//! let mut decoder = builder.build_decompressor().unwrap();
//! let mut engine = builder.build().unwrap();
//! let stream = engine.compress_batch(&data).unwrap();
//! assert_eq!(decoder.decompress_batch(&stream).unwrap(), data);
//!
//! // The same engine shell over the paper's gzip baseline.
//! let mut gzip = EngineBuilder::new()
//!     .backend(DeflateBackend::default())
//!     .build()
//!     .unwrap();
//! let member = gzip.compress_batch(&data).unwrap();
//! let mut gzip_decoder = gzip.decompressor().unwrap();
//! assert_eq!(gzip_decoder.decompress_batch(&member).unwrap(), data);
//! ```

pub mod backend;
pub mod builder;
pub mod engine;
pub mod error;
pub mod persist;
pub mod pipelined;
pub mod registry;
pub mod shard;
pub mod stream;
pub mod tenant;

pub use backend::{
    BackendDecompressor, CompressionBackend, DeflateBackend, DeflateDecompressor,
    PassthroughBackend, PassthroughDecompressor,
};
pub use builder::EngineBuilder;
pub use engine::{
    CompressionEngine, EngineConfig, EngineDecompressor, GdBackend, GdBackendDecompressor,
    SpawnPolicy,
};
pub use error::EngineError;
pub use persist::{CommittedEntry, EngineStore, PersistError, StoreOptions, SyncPolicy, WarmStart};
pub use pipelined::{PipelineConfig, PipelinedStream};
pub use registry::{
    codec_from_u8, AnyDecompressor, AutoBackend, AutoBatch, AutoConfig, AutoDecompressor,
    CodecCursor, CodecEntry, CodecId, CodecRegistry, HybridDecompressor, HybridGdDeflateBackend,
    RegistryDecompressor, CODEC_DEFLATE, CODEC_GD, CODEC_HYBRID, CODEC_PASSTHROUGH,
};
pub use shard::{
    DictionaryDelta, DictionarySnapshot, DictionaryState, DictionaryUpdate, ShardOutcome,
    ShardState, ShardStats, ShardedDictionary, UpdateOp,
};
pub use stream::{EngineStream, StreamSummary};
pub use tenant::{
    flow_dir, flow_placement, plan_resume, reseed_updates, tenant_dir, FlowDecoderPool, FlowError,
    FlowEvent, FlowKey, FlowResume, FlowRouter, FlowRouterConfig, FlowSummary, TenantStats,
};
