//! The codec registry: stable codec ids, self-describing containers, and
//! the two codec-routing backends built on top of them.
//!
//! PR 4's backend matrix proved no single codec wins everywhere (GD 0.134
//! vs deflate 0.234 on sensor data; deflate 0.082 vs GD 0.103 on DNS), and
//! the paper's "GD + secondary compressor" discussion observes that GD
//! deviations are low-entropy residue worth a second pass. This module
//! turns both observations into code:
//!
//! * [`CodecId`] — a stable one-byte codec tag. Tagged containers (the
//!   `*_TAGGED` record kinds of the wire protocol and the durable frame
//!   log) carry one per batch, so a decoder picks the right
//!   [`BackendDecompressor`] from the tag alone; *untagged* containers
//!   remain exactly what they were — the stream's fixed, negotiated
//!   backend — which keeps every pre-existing byte stream decodable.
//! * [`CodecRegistry`] — the id ↔ name ↔ decoder-factory table. The
//!   compression side stays monomorphized (`CompressionEngine<B>` and the
//!   server's `bind_*_with::<B>` entry points dispatch on the registry's
//!   names); the decode side is where dynamic dispatch is mandatory, and
//!   the registry's boxed factories build exactly that.
//! * [`HybridGdDeflateBackend`] ([`CODEC_HYBRID`]) — GD first, then gzip
//!   over the batch's serialized GD records, shipping the whole batch as
//!   one raw payload. The Huffman pass squeezes the identifier/deviation
//!   residue GD leaves behind.
//! * [`AutoBackend`] — samples a prefix of every batch, probes the
//!   registered candidates on a budget, and routes the whole batch to the
//!   winner (with hysteresis so stable workloads don't flap). Its batches
//!   are the reason tags exist: consecutive batches may use different
//!   codecs, so [`CompressionBackend::tags_batches`] is `true` and every
//!   emitted payload carries the routed codec's id.
//! * [`RegistryDecompressor`] — the dynamic decode path: give it a tag
//!   (or let it fall back to the stream's default codec) and it lazily
//!   builds and drives the right decoder. `FlowDecoderPool` and the
//!   client-side decode paths delegate here; fixed-backend streams keep
//!   the generic `EngineDecompressor<B>` fast path.
//!
//! # Codec id space
//!
//! | id | name | backend |
//! |----|------|---------|
//! | 1 | `gd` | [`GdBackend`] |
//! | 2 | `deflate` | [`DeflateBackend`] |
//! | 3 | `passthrough` | [`PassthroughBackend`](crate::backend::PassthroughBackend) |
//! | 4 | `hybrid` | [`HybridGdDeflateBackend`] |
//!
//! Id `0` is reserved on every wire as "untagged"; ids are never reused.
//! [`AutoBackend`] deliberately has no id of its own: it is a router, not
//! a codec, and each batch it emits is tagged with the id of the codec
//! that actually produced the bytes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::backend::{
    BackendDecompressor, CompressionBackend, DeflateBackend, DeflateDecompressor,
    PassthroughDecompressor,
};
use crate::engine::{EngineConfig, GdBackend, GdBackendDecompressor};
use crate::shard::{
    DictionaryDelta, DictionarySnapshot, DictionaryState, DictionaryUpdate, ShardStats,
};
use zipline_deflate::Level;
use zipline_gd::codec::CompressedStream;
use zipline_gd::error::{GdError, Result};
use zipline_gd::packet::PacketType;
use zipline_gd::stats::CompressionStats;

/// Stable one-byte codec tag; see the module docs for the id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CodecId(pub u8);

impl CodecId {
    /// The raw wire byte.
    pub fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The sharded Generalized Deduplication codec ([`GdBackend`]).
pub const CODEC_GD: CodecId = CodecId(1);
/// One gzip member per batch ([`DeflateBackend`]).
pub const CODEC_DEFLATE: CodecId = CodecId(2);
/// The identity codec ([`PassthroughBackend`](crate::backend::PassthroughBackend)).
pub const CODEC_PASSTHROUGH: CodecId = CodecId(3);
/// GD then gzip over the GD residue ([`HybridGdDeflateBackend`]).
pub const CODEC_HYBRID: CodecId = CodecId(4);

/// Maps a wire byte to its registered codec id; `None` for `0` (the
/// untagged sentinel) and for ids no registry entry covers.
pub fn codec_from_u8(byte: u8) -> Option<CodecId> {
    let id = CodecId(byte);
    match id {
        CODEC_GD | CODEC_DEFLATE | CODEC_PASSTHROUGH | CODEC_HYBRID => Some(id),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// CodecCursor
// ---------------------------------------------------------------------------

/// A shared cell through which a stream publishes the codec tag of the
/// batch it is currently emitting.
///
/// The stream sinks (`FnMut(PacketType, &[u8])`) predate codec tags, and
/// widening them would break every caller; instead the stream sets this
/// cursor immediately before replaying a batch's payloads, and a sink that
/// cares (the server's wire framers, the flow router's event queue) clones
/// the cursor and samples it per payload. Fixed backends never set it, so
/// the cursor reads `None` — untagged — on every pre-existing path.
#[derive(Debug, Clone, Default)]
pub struct CodecCursor(Arc<AtomicU8>);

impl CodecCursor {
    /// A fresh cursor reading `None`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the codec of the batch about to be emitted (`None` =
    /// untagged).
    pub fn set(&self, codec: Option<CodecId>) {
        self.0
            .store(codec.map_or(0, CodecId::as_u8), Ordering::Relaxed);
    }

    /// The codec tag of the batch currently being emitted.
    pub fn get(&self) -> Option<CodecId> {
        codec_from_u8(self.0.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// CodecRegistry
// ---------------------------------------------------------------------------

/// One registry row: a stable id, its command-line/debug name, and the
/// boxed factory that builds the codec's decoder for a given engine
/// configuration.
pub struct CodecEntry {
    /// The codec's stable wire tag.
    pub id: CodecId,
    /// The codec's stable name (`--backend` values, debug output).
    pub name: &'static str,
    decoder: DecoderFactory,
}

/// Boxed per-codec decoder constructor held by a [`CodecEntry`].
type DecoderFactory = Box<dyn Fn(&EngineConfig) -> Result<AnyDecompressor> + Send + Sync>;

/// The id → codec table; see the module docs.
pub struct CodecRegistry {
    entries: Vec<CodecEntry>,
}

impl CodecRegistry {
    /// The standard registry covering every codec this crate ships.
    pub fn standard() -> Self {
        let mut registry = Self {
            entries: Vec::new(),
        };
        registry.entry(CODEC_GD, "gd", |config| {
            Ok(AnyDecompressor::Gd(GdBackendDecompressor::new(config)?))
        });
        registry.entry(CODEC_DEFLATE, "deflate", |_| {
            Ok(AnyDecompressor::Deflate(DeflateDecompressor::default()))
        });
        registry.entry(CODEC_PASSTHROUGH, "passthrough", |_| {
            Ok(AnyDecompressor::Passthrough(
                PassthroughDecompressor::default(),
            ))
        });
        registry.entry(CODEC_HYBRID, "hybrid", |config| {
            Ok(AnyDecompressor::Hybrid(HybridDecompressor::new(config)?))
        });
        registry
    }

    fn entry(
        &mut self,
        id: CodecId,
        name: &'static str,
        decoder: impl Fn(&EngineConfig) -> Result<AnyDecompressor> + Send + Sync + 'static,
    ) {
        self.entries.push(CodecEntry {
            id,
            name,
            decoder: Box::new(decoder),
        });
    }

    /// True when the registry has an entry for `id`.
    pub fn contains(&self, id: CodecId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Every registered codec id, in id order.
    pub fn ids(&self) -> Vec<CodecId> {
        let mut ids: Vec<CodecId> = self.entries.iter().map(|e| e.id).collect();
        ids.sort();
        ids
    }

    /// The registered name of `id`.
    pub fn name(&self, id: CodecId) -> Option<&'static str> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.name)
    }

    /// Resolves a codec name (e.g. a `--backend` value) to its id.
    pub fn parse_name(&self, name: &str) -> Option<CodecId> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.id)
    }

    /// Builds the decoder registered for `id`, or the typed unknown-codec
    /// error when no entry covers it.
    pub fn decompressor(&self, id: CodecId, config: &EngineConfig) -> Result<AnyDecompressor> {
        match self.entries.iter().find(|e| e.id == id) {
            Some(entry) => (entry.decoder)(config),
            None => Err(GdError::UnknownCodec(id.as_u8())),
        }
    }
}

impl fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|e| (e.id, e.name)))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// HybridGdDeflateBackend
// ---------------------------------------------------------------------------

/// GD → deflate hybrid: each batch runs through the sharded GD codec
/// first, the batch's serialized GD records (identifier/deviation residue
/// included) are concatenated into one length-delimited container, and the
/// container is gzipped and shipped as a single raw payload.
///
/// The inner GD dictionary is the *same* kind of shared decoder state a
/// plain GD stream has, so the live-sync, snapshot and warm-restart hooks
/// all delegate to it — with one adjustment: because the whole batch
/// collapses into one wire payload, every dictionary update's `at`
/// coordinate is remapped to `0` so all control traffic precedes the
/// payload it makes decodable.
#[derive(Debug)]
pub struct HybridGdDeflateBackend {
    gd: GdBackend,
    level: Level,
    config: EngineConfig,
    stats: CompressionStats,
    /// Recycled container/member buffers, same discipline as
    /// [`DeflateBackend`].
    spare: Vec<Vec<u8>>,
    container: Vec<u8>,
}

impl HybridGdDeflateBackend {
    /// A hybrid backend over `config`'s GD shape, gzipping at `level`.
    pub fn new(config: EngineConfig, level: Level) -> Result<Self> {
        Ok(Self {
            gd: GdBackend::new(config)?,
            level,
            config,
            stats: CompressionStats::new(),
            spare: Vec::new(),
            container: Vec::new(),
        })
    }
}

/// Container record header: packet type byte, as in the persist layer.
fn packet_code(packet_type: PacketType) -> u8 {
    packet_type.number()
}

fn packet_from(code: u8) -> Option<PacketType> {
    match code {
        1 => Some(PacketType::Raw),
        2 => Some(PacketType::Uncompressed),
        3 => Some(PacketType::Compressed),
        _ => None,
    }
}

impl CompressionBackend for HybridGdDeflateBackend {
    type Batch = Vec<u8>;
    type Decompressor = HybridDecompressor;

    fn from_engine_config(config: &EngineConfig) -> Result<Self> {
        Self::new(*config, Level::Default)
    }

    fn codec_id(&self) -> CodecId {
        CODEC_HYBRID
    }

    fn unit_bytes(&self) -> usize {
        self.gd.unit_bytes()
    }

    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch> {
        let mut member = self.spare.pop().unwrap_or_default();
        member.clear();
        if data.is_empty() {
            return Ok(member);
        }
        let stream = self.gd.compress_batch(data)?;
        let container = &mut self.container;
        container.clear();
        self.gd.emit_batch(stream, &mut |packet_type, bytes| {
            container.push(packet_code(packet_type));
            container.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            container.extend_from_slice(bytes);
        })?;
        zipline_deflate::gzip_compress_into(&self.container, self.level, &mut member);
        self.stats.chunks_in += 1;
        self.stats.emitted_raw += 1;
        self.stats.bytes_in += data.len() as u64;
        self.stats.bytes_out += member.len() as u64;
        Ok(member)
    }

    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        if !batch.is_empty() {
            emit(PacketType::Raw, &batch);
        }
        self.spare.push(batch);
        Ok(())
    }

    fn stats(&self) -> CompressionStats {
        // Wire accounting is this backend's own (post-gzip bytes); the
        // learning counters belong to the inner GD dictionary.
        let inner = self.gd.stats();
        let mut stats = self.stats;
        stats.bases_learned = inner.bases_learned;
        stats.evictions = inner.evictions;
        stats.digests_sent = inner.digests_sent;
        stats
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.gd.shard_stats()
    }

    fn snapshot(&self) -> Option<DictionarySnapshot> {
        self.gd.snapshot()
    }

    fn supports_live_sync(&self) -> bool {
        true
    }

    fn set_live_sync(&mut self, enabled: bool) {
        self.gd.set_live_sync(enabled);
    }

    fn live_sync_enabled(&self) -> bool {
        self.gd.live_sync_enabled()
    }

    fn take_delta(&mut self) -> DictionaryDelta {
        let mut delta = self.gd.take_delta();
        // The whole batch is one wire payload at position 0: every update
        // must precede it.
        for update in &mut delta.updates {
            update.at = 0;
        }
        delta
    }

    fn export_dictionary_state(&self) -> Option<DictionaryState> {
        self.gd.export_dictionary_state()
    }

    fn restore_dictionary_state(&mut self, state: &DictionaryState) -> Result<()> {
        self.gd.restore_dictionary_state(state)
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        HybridDecompressor::new(&self.config)
    }

    fn decompressor_for(config: &EngineConfig) -> Result<Self::Decompressor> {
        HybridDecompressor::new(config)
    }
}

/// Decoder mirror of [`HybridGdDeflateBackend`]: gunzips the container,
/// then replays the inner GD records (in-band basis learning included)
/// through a [`GdBackendDecompressor`].
#[derive(Debug)]
pub struct HybridDecompressor {
    gd: GdBackendDecompressor,
    stats: CompressionStats,
    scratch: Vec<u8>,
}

impl HybridDecompressor {
    /// Builds a decoder mirroring `config` (the GD shape must match the
    /// encoder's, exactly as for a plain GD stream).
    pub fn new(config: &EngineConfig) -> Result<Self> {
        Ok(Self {
            gd: GdBackendDecompressor::new(config)?,
            stats: CompressionStats::new(),
            scratch: Vec::new(),
        })
    }

    /// Applies one out-of-band dictionary update to the inner GD decoder
    /// (reseed traffic after a warm restart).
    pub fn apply_update(&mut self, update: &DictionaryUpdate) -> Result<()> {
        self.gd.apply_update(update)
    }
}

impl BackendDecompressor for HybridDecompressor {
    type Batch = Vec<u8>;

    fn decompress_batch(&mut self, batch: &Self::Batch) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        if !batch.is_empty() {
            self.restore_payload_into(PacketType::Raw, batch, &mut out)?;
        }
        Ok(out)
    }

    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if packet_type != PacketType::Raw {
            self.stats.decode_failures += 1;
            return Err(GdError::Malformed(format!(
                "hybrid containers travel as raw (type 1) payloads, got type {}",
                packet_type.number()
            )));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let result = (|| {
            zipline_deflate::gzip_decompress_into(bytes, &mut scratch)
                .map_err(|e| GdError::Malformed(format!("hybrid container: {e}")))?;
            let mut offset = 0usize;
            while offset < scratch.len() {
                if scratch.len() - offset < 5 {
                    return Err(GdError::Malformed(
                        "hybrid container: truncated record header".into(),
                    ));
                }
                let inner_type = packet_from(scratch[offset]).ok_or_else(|| {
                    GdError::Malformed(format!(
                        "hybrid container: bad packet type {}",
                        scratch[offset]
                    ))
                })?;
                let len = u32::from_le_bytes([
                    scratch[offset + 1],
                    scratch[offset + 2],
                    scratch[offset + 3],
                    scratch[offset + 4],
                ]) as usize;
                offset += 5;
                if scratch.len() - offset < len {
                    return Err(GdError::Malformed(
                        "hybrid container: truncated record body".into(),
                    ));
                }
                self.gd
                    .restore_payload_into(inner_type, &scratch[offset..offset + len], out)?;
                offset += len;
            }
            Ok(())
        })();
        self.scratch = scratch;
        match result {
            Ok(()) => {
                self.stats.chunks_decoded += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.decode_failures += 1;
                Err(e)
            }
        }
    }

    fn stats(&self) -> &CompressionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// AutoBackend
// ---------------------------------------------------------------------------

/// Probe/routing knobs for [`AutoBackend`].
#[derive(Debug, Clone, Copy)]
pub struct AutoConfig {
    /// Prefix bytes gzipped per batch to estimate the deflate ratio.
    pub sample_bytes: usize,
    /// While routed away from GD, re-measure GD on full batches every this
    /// many batches so a shifting workload can win the route back.
    pub probe_interval: u64,
    /// Consecutive GD batches per measurement window — warm-up and probes
    /// alike. A dictionary codec's first batch on unseen data is training
    /// cost (basis installs), not steady state; only the ratios *after*
    /// the first batch of a window feed the estimator, so one
    /// install-heavy batch cannot condemn the codec.
    pub probe_batches: u64,
    /// Relative ratio margin a challenger must win by before the route
    /// switches (`0.05` = 5% better) — the anti-flap hysteresis.
    pub hysteresis: f64,
    /// EWMA smoothing for measured GD ratios (weight of the newest
    /// observation).
    pub ewma_alpha: f64,
}

impl Default for AutoConfig {
    fn default() -> Self {
        Self {
            sample_bytes: 1024,
            probe_interval: 256,
            probe_batches: 2,
            hysteresis: 0.05,
            ewma_alpha: 0.3,
        }
    }
}

/// One routed batch: the chosen codec's native batch, remembering the
/// route so [`CompressionBackend::batch_codec_id`] can tag it.
#[derive(Debug)]
pub enum AutoBatch {
    /// Routed to GD; `input_len` feeds the measured-ratio estimator at
    /// emission time.
    Gd {
        /// The GD-compressed batch.
        stream: CompressedStream,
        /// Uncompressed input length of the batch.
        input_len: usize,
        /// Whether this batch's ratio feeds the estimator. The first batch
        /// of a GD window pays the dictionary's training cost (installs)
        /// and would poison the steady-state estimate.
        measure: bool,
    },
    /// Routed to deflate: one gzip member.
    Deflate(Vec<u8>),
}

/// Routes each batch to the codec expected to compress it best.
///
/// Per batch, the candidates are costed on a budget: deflate's ratio is
/// estimated by gzipping a prefix sample ([`AutoConfig::sample_bytes`]);
/// GD — whose ratio depends on dictionary state, not batch content alone —
/// is estimated from an EWMA of its measured ratios, refreshed by a forced
/// full-batch probe window every [`AutoConfig::probe_interval`] batches
/// while deflate holds the route. Measurement windows span
/// [`AutoConfig::probe_batches`] consecutive GD batches and the *first*
/// batch of each window never feeds the EWMA: it pays the dictionary's
/// training cost (basis installs for content GD has not seen), which says
/// nothing about steady state. A challenger takes the route only by
/// beating the incumbent's estimate by the [`AutoConfig::hysteresis`]
/// margin. The very first batch routes to deflate — it is the only
/// candidate with a usable estimate before GD has ever been measured.
///
/// Every batch goes *wholly* to one codec and is tagged with that codec's
/// id ([`CompressionBackend::tags_batches`] is `true`), so a
/// [`RegistryDecompressor`] reconstructs the stream from the tags alone.
/// The candidate set is deliberately `{gd, deflate}`: one stateful codec,
/// so the dictionary every GD-routed batch builds on is unambiguous.
#[derive(Debug)]
pub struct AutoBackend {
    gd: GdBackend,
    deflate: DeflateBackend,
    auto: AutoConfig,
    current: CodecId,
    batches: u64,
    /// Consecutive GD-routed batches ending at the previous batch — 0
    /// whenever deflate held the route last, so the next GD batch is the
    /// (unmeasured) head of a fresh window.
    gd_run: u64,
    /// EWMA of measured steady-state GD ratios; `None` until a GD window
    /// has produced a warm (non-first) batch.
    gd_ratio: Option<f64>,
    /// Route changes so far (observability + flap tests).
    switches: u64,
    probe_scratch: Vec<u8>,
}

impl AutoBackend {
    /// An auto-routing backend over `config`'s GD shape with the given
    /// probe knobs.
    pub fn new(config: EngineConfig, auto: AutoConfig) -> Result<Self> {
        Ok(Self {
            gd: GdBackend::new(config)?,
            deflate: DeflateBackend::default(),
            auto,
            current: CODEC_GD,
            batches: 0,
            gd_run: 0,
            gd_ratio: None,
            switches: 0,
            probe_scratch: Vec::new(),
        })
    }

    /// The codec currently holding the route.
    pub fn current_codec(&self) -> CodecId {
        self.current
    }

    /// Route changes since construction.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Picks the codec for the next batch; see the type docs for the
    /// policy. The second element says whether a GD batch should feed the
    /// EWMA: the first GD batch after any deflate batch pays dictionary
    /// (re-)training cost and would poison the steady-state estimate.
    fn route(&mut self, data: &[u8]) -> (CodecId, bool) {
        let sample = &data[..data.len().min(self.auto.sample_bytes.max(1))];
        self.probe_scratch.clear();
        zipline_deflate::gzip_compress_into(sample, Level::Fast, &mut self.probe_scratch);
        let deflate_est = self.probe_scratch.len() as f64 / sample.len().max(1) as f64;
        let choice = match self.gd_ratio {
            // The stateful candidate has no steady-state measurement yet.
            // Batch 0 goes to deflate — GD through a cold dictionary is
            // pure training cost on the wire — then GD holds the route
            // until a warm batch produces the first measurement.
            None => {
                if self.batches == 0 {
                    CODEC_DEFLATE
                } else {
                    CODEC_GD
                }
            }
            Some(gd_est) => {
                if self.current == CODEC_GD && self.gd_run < self.auto.probe_batches.max(1) {
                    // Mid-window: keep routing GD until the window has
                    // produced a warm measurement, else the probe paid its
                    // training cost for nothing.
                    CODEC_GD
                } else if self.current == CODEC_GD {
                    if deflate_est < gd_est * (1.0 - self.auto.hysteresis) {
                        CODEC_DEFLATE
                    } else {
                        CODEC_GD
                    }
                } else if self.batches.is_multiple_of(self.auto.probe_interval.max(1)) {
                    // Periodic GD probe window refreshes the EWMA that
                    // would otherwise go stale while deflate holds the
                    // route. The window spans `probe_batches` batches
                    // because the first one only re-trains the dictionary.
                    CODEC_GD
                } else if gd_est < deflate_est * (1.0 - self.auto.hysteresis) {
                    CODEC_GD
                } else {
                    CODEC_DEFLATE
                }
            }
        };
        if choice != self.current {
            self.switches += 1;
            self.current = choice;
        }
        self.batches += 1;
        let measure = choice == CODEC_GD && self.gd_run >= 1;
        if choice == CODEC_GD {
            self.gd_run += 1;
        } else {
            self.gd_run = 0;
        }
        (choice, measure)
    }
}

impl CompressionBackend for AutoBackend {
    type Batch = AutoBatch;
    type Decompressor = AutoDecompressor;

    fn from_engine_config(config: &EngineConfig) -> Result<Self> {
        Self::new(*config, AutoConfig::default())
    }

    fn codec_id(&self) -> CodecId {
        CODEC_GD
    }

    fn batch_codec_id(&self, batch: &Self::Batch) -> CodecId {
        match batch {
            AutoBatch::Gd { .. } => CODEC_GD,
            AutoBatch::Deflate(_) => CODEC_DEFLATE,
        }
    }

    fn tags_batches(&self) -> bool {
        true
    }

    fn codec_ids(&self) -> Vec<CodecId> {
        vec![CODEC_GD, CODEC_DEFLATE]
    }

    fn unit_bytes(&self) -> usize {
        self.gd.unit_bytes()
    }

    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch> {
        if data.is_empty() {
            return Ok(AutoBatch::Deflate(self.deflate.compress_batch(data)?));
        }
        match self.route(data) {
            (CODEC_DEFLATE, _) => Ok(AutoBatch::Deflate(self.deflate.compress_batch(data)?)),
            (_, measure) => Ok(AutoBatch::Gd {
                stream: self.gd.compress_batch(data)?,
                input_len: data.len(),
                measure,
            }),
        }
    }

    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        match batch {
            AutoBatch::Gd {
                stream,
                input_len,
                measure,
            } => {
                let mut wire_bytes = 0usize;
                self.gd.emit_batch(stream, &mut |packet_type, bytes| {
                    wire_bytes += bytes.len();
                    emit(packet_type, bytes);
                })?;
                if measure && input_len > 0 {
                    let measured = wire_bytes as f64 / input_len as f64;
                    self.gd_ratio = Some(match self.gd_ratio {
                        None => measured,
                        Some(ewma) => ewma + self.auto.ewma_alpha * (measured - ewma),
                    });
                }
                Ok(())
            }
            AutoBatch::Deflate(member) => self.deflate.emit_batch(member, emit),
        }
    }

    fn stats(&self) -> CompressionStats {
        let mut stats = self.gd.stats();
        stats.merge(&self.deflate.stats());
        stats
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.gd.shard_stats()
    }

    fn snapshot(&self) -> Option<DictionarySnapshot> {
        self.gd.snapshot()
    }

    fn supports_live_sync(&self) -> bool {
        true
    }

    fn set_live_sync(&mut self, enabled: bool) {
        self.gd.set_live_sync(enabled);
    }

    fn live_sync_enabled(&self) -> bool {
        self.gd.live_sync_enabled()
    }

    fn take_delta(&mut self) -> DictionaryDelta {
        self.gd.take_delta()
    }

    fn export_dictionary_state(&self) -> Option<DictionaryState> {
        self.gd.export_dictionary_state()
    }

    fn restore_dictionary_state(&mut self, state: &DictionaryState) -> Result<()> {
        self.gd.restore_dictionary_state(state)
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        AutoDecompressor::new(self.gd.config())
    }

    fn decompressor_for(config: &EngineConfig) -> Result<Self::Decompressor> {
        AutoDecompressor::new(config)
    }
}

/// Decoder mirror of [`AutoBackend`] for in-process batch roundtrips.
///
/// Wire payloads from an auto-routed stream are ambiguous without their
/// codec tags (a GD raw tail and a gzip member are both "raw"), so the
/// tagged decode path is [`RegistryDecompressor`]; this type covers the
/// batch-level [`BackendDecompressor`] contract the generic engine needs.
#[derive(Debug)]
pub struct AutoDecompressor {
    gd: GdBackendDecompressor,
    deflate: DeflateDecompressor,
    stats: CompressionStats,
}

impl AutoDecompressor {
    /// Builds a decoder mirroring `config`'s GD shape.
    pub fn new(config: &EngineConfig) -> Result<Self> {
        Ok(Self {
            gd: GdBackendDecompressor::new(config)?,
            deflate: DeflateDecompressor::default(),
            stats: CompressionStats::new(),
        })
    }
}

impl BackendDecompressor for AutoDecompressor {
    type Batch = AutoBatch;

    fn decompress_batch(&mut self, batch: &Self::Batch) -> Result<Vec<u8>> {
        match batch {
            AutoBatch::Gd { stream, .. } => self.gd.decompress_batch(stream),
            AutoBatch::Deflate(member) => self.deflate.decompress_batch(member),
        }
    }

    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        match packet_type {
            // Processed payloads are unambiguously GD.
            PacketType::Uncompressed | PacketType::Compressed => {
                self.gd.restore_payload_into(packet_type, bytes, out)
            }
            // A raw payload could be a GD tail or a gzip member: only the
            // per-batch tag disambiguates. Refuse rather than guess.
            PacketType::Raw => {
                self.stats.decode_failures += 1;
                Err(GdError::Malformed(
                    "auto-routed raw payloads need a codec tag; decode through \
                     RegistryDecompressor::restore_payload_tagged"
                        .into(),
                ))
            }
        }
    }

    fn stats(&self) -> &CompressionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// RegistryDecompressor
// ---------------------------------------------------------------------------

/// A decoder built by a [`CodecRegistry`] factory.
#[derive(Debug)]
pub enum AnyDecompressor {
    /// [`GdBackendDecompressor`].
    Gd(GdBackendDecompressor),
    /// [`DeflateDecompressor`].
    Deflate(DeflateDecompressor),
    /// [`PassthroughDecompressor`].
    Passthrough(PassthroughDecompressor),
    /// [`HybridDecompressor`].
    Hybrid(HybridDecompressor),
}

impl AnyDecompressor {
    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        match self {
            AnyDecompressor::Gd(dec) => dec.restore_payload_into(packet_type, bytes, out),
            AnyDecompressor::Deflate(dec) => dec.restore_payload_into(packet_type, bytes, out),
            AnyDecompressor::Passthrough(dec) => dec.restore_payload_into(packet_type, bytes, out),
            AnyDecompressor::Hybrid(dec) => dec.restore_payload_into(packet_type, bytes, out),
        }
    }

    fn apply_update(&mut self, update: &DictionaryUpdate) -> Result<()> {
        match self {
            AnyDecompressor::Gd(dec) => dec.apply_update(update),
            AnyDecompressor::Hybrid(dec) => dec.apply_update(update),
            // Stateless codecs have no dictionary to update.
            AnyDecompressor::Deflate(_) | AnyDecompressor::Passthrough(_) => Ok(()),
        }
    }

    fn stats(&self) -> &CompressionStats {
        match self {
            AnyDecompressor::Gd(dec) => dec.stats(),
            AnyDecompressor::Deflate(dec) => dec.stats(),
            AnyDecompressor::Passthrough(dec) => dec.stats(),
            AnyDecompressor::Hybrid(dec) => dec.stats(),
        }
    }
}

/// The dynamic decode path: routes each payload to the decoder its codec
/// tag names, building decoders lazily from the registry's factories.
///
/// Untagged payloads go to the stream's `default` codec — which is exactly
/// the v2 compatibility rule ("untagged = the stream's fixed backend") and
/// the fast path for fixed-backend streams. `FlowDecoderPool` delegates
/// every flow's decode here; `EngineDecompressor<AutoBackend>` reaches the
/// same dispatch through [`AutoDecompressor`].
#[derive(Debug)]
pub struct RegistryDecompressor {
    registry: CodecRegistry,
    config: EngineConfig,
    default: CodecId,
    built: BTreeMap<CodecId, AnyDecompressor>,
}

impl fmt::Debug for CodecEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodecEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl RegistryDecompressor {
    /// A registry decoder whose untagged payloads decode as `default`.
    /// Fails with the typed unknown-codec error if `default` has no
    /// registry entry.
    pub fn new(config: EngineConfig, default: CodecId) -> Result<Self> {
        let registry = CodecRegistry::standard();
        if !registry.contains(default) {
            return Err(GdError::UnknownCodec(default.as_u8()));
        }
        Ok(Self {
            registry,
            config,
            default,
            built: BTreeMap::new(),
        })
    }

    /// The codec untagged payloads decode as.
    pub fn default_codec(&self) -> CodecId {
        self.default
    }

    fn decoder(&mut self, id: CodecId) -> Result<&mut AnyDecompressor> {
        if !self.built.contains_key(&id) {
            let dec = self.registry.decompressor(id, &self.config)?;
            self.built.insert(id, dec);
        }
        Ok(self.built.get_mut(&id).expect("just inserted"))
    }

    /// Decodes one payload: tagged payloads dispatch on their tag,
    /// untagged payloads on the stream's default codec. Unknown tags fail
    /// with [`GdError::UnknownCodec`] before any decoder runs.
    pub fn restore_payload_tagged(
        &mut self,
        codec: Option<CodecId>,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let id = codec.unwrap_or(self.default);
        self.decoder(id)?
            .restore_payload_into(packet_type, bytes, out)
    }

    /// Applies one out-of-band dictionary update to every stateful decoder
    /// in play (building the default codec's decoder if none is yet — a
    /// reseed may precede the first payload).
    pub fn apply_update(&mut self, update: &DictionaryUpdate) -> Result<()> {
        self.decoder(self.default)?;
        for dec in self.built.values_mut() {
            dec.apply_update(update)?;
        }
        Ok(())
    }

    /// Decoder statistics summed across every decoder built so far.
    pub fn stats(&self) -> CompressionStats {
        let mut stats = CompressionStats::new();
        for dec in self.built.values() {
            stats.merge(dec.stats());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::engine::SpawnPolicy;

    fn test_config() -> EngineConfig {
        let mut config = EngineConfig::paper_default();
        config.shards = 4;
        config.workers = 1;
        config.spawn = SpawnPolicy::Inline;
        config
    }

    #[test]
    fn codec_ids_are_stable_and_roundtrip_through_bytes() {
        for (id, byte) in [
            (CODEC_GD, 1u8),
            (CODEC_DEFLATE, 2),
            (CODEC_PASSTHROUGH, 3),
            (CODEC_HYBRID, 4),
        ] {
            assert_eq!(id.as_u8(), byte);
            assert_eq!(codec_from_u8(byte), Some(id));
        }
        assert_eq!(codec_from_u8(0), None, "0 is the untagged sentinel");
        assert_eq!(codec_from_u8(0xEE), None);
    }

    #[test]
    fn registry_maps_ids_and_names_both_ways() {
        let registry = CodecRegistry::standard();
        assert_eq!(
            registry.ids(),
            vec![CODEC_GD, CODEC_DEFLATE, CODEC_PASSTHROUGH, CODEC_HYBRID]
        );
        for (id, name) in [
            (CODEC_GD, "gd"),
            (CODEC_DEFLATE, "deflate"),
            (CODEC_PASSTHROUGH, "passthrough"),
            (CODEC_HYBRID, "hybrid"),
        ] {
            assert!(registry.contains(id));
            assert_eq!(registry.name(id), Some(name));
            assert_eq!(registry.parse_name(name), Some(id));
        }
        assert_eq!(
            registry.parse_name("auto"),
            None,
            "auto is a router, not a codec"
        );
        assert!(matches!(
            registry.decompressor(CodecId(0xEE), &test_config()),
            Err(GdError::UnknownCodec(0xEE))
        ));
    }

    #[test]
    fn codec_cursor_publishes_and_clears() {
        let cursor = CodecCursor::new();
        assert_eq!(cursor.get(), None);
        cursor.set(Some(CODEC_HYBRID));
        assert_eq!(
            cursor.clone().get(),
            Some(CODEC_HYBRID),
            "clones share state"
        );
        cursor.set(None);
        assert_eq!(cursor.get(), None);
    }

    #[test]
    fn hybrid_roundtrips_and_beats_plain_gd_on_redundant_data() {
        let config = test_config();
        // Sensor-style data: few bases, noisy deviations.
        let mut data = Vec::new();
        for i in 0..400u32 {
            let mut chunk = vec![0u8; config.gd.chunk_bytes];
            chunk[0] = (i % 6) as u8;
            chunk[8] = 0xA5;
            if i % 5 == 0 {
                chunk[20] ^= 0x10;
            }
            data.extend_from_slice(&chunk);
        }

        let mut gd = GdBackend::new(config).unwrap();
        let mut gd_bytes = 0usize;
        let stream = gd.compress_batch(&data).unwrap();
        gd.emit_batch(stream, &mut |_, b| gd_bytes += b.len())
            .unwrap();

        let mut hybrid = HybridGdDeflateBackend::new(config, Level::Default).unwrap();
        let member = hybrid.compress_batch(&data).unwrap();
        assert!(
            member.len() < gd_bytes,
            "gzip over GD residue ({}) beats plain GD ({})",
            member.len(),
            gd_bytes
        );

        let mut dec = hybrid.decompressor().unwrap();
        assert_eq!(dec.decompress_batch(&member).unwrap(), data);
        let mut emitted = Vec::new();
        hybrid
            .emit_batch(member, &mut |pt, bytes| {
                assert_eq!(pt, PacketType::Raw);
                emitted.push(bytes.to_vec());
            })
            .unwrap();
        assert_eq!(emitted.len(), 1, "one payload per hybrid batch");
    }

    #[test]
    fn hybrid_remaps_all_updates_to_position_zero() {
        let config = test_config();
        let mut hybrid = HybridGdDeflateBackend::new(config, Level::Fast).unwrap();
        hybrid.set_live_sync(true);
        let data = vec![3u8; config.gd.chunk_bytes * 8];
        let member = hybrid.compress_batch(&data).unwrap();
        let delta = hybrid.take_delta();
        assert!(!delta.updates.is_empty(), "a fresh basis installs");
        assert!(delta.updates.iter().all(|u| u.at == 0));
        hybrid.emit_batch(member, &mut |_, _| {}).unwrap();
    }

    #[test]
    fn auto_routes_whole_batches_and_tags_them() {
        let config = test_config();
        let mut auto = AutoBackend::new(config, AutoConfig::default()).unwrap();
        assert!(auto.tags_batches());
        assert_eq!(auto.codec_ids(), vec![CODEC_GD, CODEC_DEFLATE]);

        // Batch 0 goes to deflate — GD through a cold dictionary is pure
        // training cost on the wire — then the warm-up window routes GD
        // until its second batch produces the first steady-state
        // measurement.
        let sensor = vec![7u8; config.gd.chunk_bytes * 64];
        let batch = auto.compress_batch(&sensor).unwrap();
        assert_eq!(auto.batch_codec_id(&batch), CODEC_DEFLATE);
        let mut dec = auto.decompressor().unwrap();
        assert_eq!(dec.decompress_batch(&batch).unwrap(), sensor);
        auto.emit_batch(batch, &mut |_, _| {}).unwrap();
        for _ in 0..2 {
            let batch = auto.compress_batch(&sensor).unwrap();
            assert_eq!(auto.batch_codec_id(&batch), CODEC_GD);
            assert_eq!(dec.decompress_batch(&batch).unwrap(), sensor);
            auto.emit_batch(batch, &mut |_, _| {}).unwrap();
        }

        // Incompressible-for-GD, gzip-friendly data: every chunk a new
        // basis, but long byte runs deflate loves.
        let mut texty = Vec::new();
        for i in 0..64u32 {
            let mut chunk = vec![b'a' + (i % 20) as u8; config.gd.chunk_bytes];
            for (j, byte) in chunk.iter_mut().enumerate() {
                *byte = ((i as usize * 131 + j * 7) % 11) as u8 + b'a';
            }
            texty.extend_from_slice(&chunk);
        }
        let mut routed_deflate = false;
        for _ in 0..8 {
            let batch = auto.compress_batch(&texty).unwrap();
            let codec = auto.batch_codec_id(&batch);
            assert_eq!(dec.decompress_batch(&batch).unwrap(), texty);
            auto.emit_batch(batch, &mut |_, _| {}).unwrap();
            if codec == CODEC_DEFLATE {
                routed_deflate = true;
                break;
            }
        }
        assert!(routed_deflate, "gzip-friendly data re-routes to deflate");
        assert!(auto.switches() >= 1);
    }

    #[test]
    fn registry_decompressor_dispatches_on_tags_and_types_unknown_ids() {
        let config = test_config();
        let mut gd = GdBackend::new(config).unwrap();
        let mut deflate = DeflateBackend::default();
        let mut reg = RegistryDecompressor::new(config, CODEC_GD).unwrap();
        assert_eq!(reg.default_codec(), CODEC_GD);

        let gd_data = vec![9u8; config.gd.chunk_bytes * 4];
        let stream = gd.compress_batch(&gd_data).unwrap();
        let mut payloads = Vec::new();
        gd.emit_batch(stream, &mut |pt, bytes| payloads.push((pt, bytes.to_vec())))
            .unwrap();
        let mut out = Vec::new();
        for (pt, bytes) in &payloads {
            // Untagged → the stream default (GD); an explicit GD tag works
            // identically.
            reg.restore_payload_tagged(None, *pt, bytes, &mut out)
                .unwrap();
        }
        assert_eq!(out, gd_data);

        let text = b"the quick brown fox jumps over the lazy dog ".repeat(40);
        let member = deflate.compress_batch(&text).unwrap();
        out.clear();
        reg.restore_payload_tagged(Some(CODEC_DEFLATE), PacketType::Raw, &member, &mut out)
            .unwrap();
        assert_eq!(out, text);

        assert!(matches!(
            reg.restore_payload_tagged(
                Some(CodecId(0x7F)),
                PacketType::Raw,
                &member,
                &mut Vec::new()
            ),
            Err(GdError::UnknownCodec(0x7F))
        ));
        assert!(matches!(
            RegistryDecompressor::new(config, CodecId(0)),
            Err(GdError::UnknownCodec(0))
        ));
    }

    #[test]
    fn registry_decompressor_applies_reseeds_before_first_payload() {
        let config = test_config();
        let mut engine = EngineBuilder::new()
            .config(config)
            .live_sync(true)
            .build()
            .unwrap();
        let data = vec![0x42u8; config.gd.chunk_bytes * 4];
        let stream = engine.compress_batch(&data).unwrap();
        let updates = engine.take_delta().updates;
        assert!(!updates.is_empty());

        let mut payloads = Vec::new();
        engine
            .backend_mut()
            .emit_batch(stream, &mut |pt, bytes| payloads.push((pt, bytes.to_vec())))
            .unwrap();

        // A second batch of the same data compresses to pure refs; a fresh
        // registry decoder that only sees the reseed + the refs must still
        // resolve them.
        let stream = engine.compress_batch(&data).unwrap();
        let mut refs = Vec::new();
        engine
            .backend_mut()
            .emit_batch(stream, &mut |pt, bytes| refs.push((pt, bytes.to_vec())))
            .unwrap();

        let mut reg = RegistryDecompressor::new(config, CODEC_GD).unwrap();
        for update in &updates {
            reg.apply_update(update).unwrap();
        }
        let mut out = Vec::new();
        for (pt, bytes) in &refs {
            reg.restore_payload_tagged(None, *pt, bytes, &mut out)
                .unwrap();
        }
        assert_eq!(out, data);
        assert!(reg.stats().chunks_decoded > 0);
    }
}
