//! The multi-core batch compression engine, its GD backend and the decoder
//! mirrors.
//!
//! [`CompressionEngine<B>`] is a thin generic shell over a
//! [`CompressionBackend`]; all the machinery in this module belongs to
//! [`GdBackend`], the bit-identical default backend that grew out of the
//! one-shot [`zipline_gd::GdCompressor`]. A GD batch compresses in two
//! phases:
//!
//! 1. **Encode** (embarrassingly parallel): the batch is split into
//!    contiguous chunk ranges, one per worker; each worker runs the
//!    word-parallel [`ChunkCodec::encode_chunk_into`] against its own
//!    [`EncodeScratch`], producing `(extra, deviation, basis, basis_hash)`
//!    per chunk and the chunk's shard assignment.
//! 2. **Classify** (parallel per shard): every chunk is routed to shard
//!    `basis_hash mod S` of the [`ShardedDictionary`]; each shard is owned
//!    by exactly one worker, which walks the batch in input order and turns
//!    its shards' chunks into `Ref`/`NewBasis` records. Records are then
//!    reassembled in input order.
//!
//! Because shard state only ever depends on the input order of the chunks
//! routed to it, the compressed stream is a pure function of `(data, shard
//! count)` — worker count and spawn policy affect wall-clock time, never
//! bytes. The 1-shard configuration reproduces `GdCompressor::compress_batch`
//! bit for bit (both properties are enforced by `tests/engine_equivalence.rs`,
//! including across the [`CompressionBackend`] trait boundary).
//!
//! Threads come from a fixed pool of `std::thread` scoped workers (the build
//! environment has no crates.io access, so no rayon); each worker owns its
//! scratch buffers across batches. With [`SpawnPolicy::Auto`] the engine
//! falls back to inline execution when the host has a single core or the
//! batch is too small to amortize thread handoff — worker count then only
//! controls partitioning, keeping output deterministic while never
//! oversubscribing the machine.
//!
//! Construction goes through [`EngineBuilder`](crate::EngineBuilder), which
//! validates the whole shape once at `build()`; `CompressionEngine::new` and
//! `EngineDecompressor::new` remain as by-value conveniences.

use crate::backend::{BackendDecompressor, CompressionBackend};
use crate::persist::{EngineStore, WarmStart};
use crate::pipelined::PipelineConfig;
use crate::registry::{CodecId, CODEC_GD};
use crate::shard::{
    DictionaryDelta, DictionarySnapshot, DictionaryState, DictionaryUpdate, ShardOutcome,
    ShardStats, ShardedDictionary,
};
use zipline_gd::codec::{
    ChunkCodec, CompressedStream, DecodeScratch, EncodeScratch, EncodedChunk, Record,
};
use zipline_gd::config::GdConfig;
use zipline_gd::error::{GdError, Result};
use zipline_gd::packet::{PacketType, ZipLinePayload};
use zipline_gd::stats::CompressionStats;

/// How the engine maps logical workers onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpawnPolicy {
    /// Spawn threads only when the host has more than one core and the
    /// batch is large enough to amortize the handoff; otherwise run the
    /// partitions inline on the calling thread. The default.
    #[default]
    Auto,
    /// Never spawn; all partitions run inline. Worker count still controls
    /// partitioning, so output is unchanged.
    Inline,
    /// Always spawn one thread per worker (used by tests to exercise the
    /// threaded path regardless of host parallelism).
    Threads,
}

/// Configuration of a [`CompressionEngine`].
///
/// Prefer assembling one through [`EngineBuilder`](crate::EngineBuilder)
/// (which validates once at `build()`) over poking fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// GD parameters (chunk size, Hamming `m`, identifier width).
    pub gd: GdConfig,
    /// Dictionary shard count: a power of two dividing `2^id_bits`.
    pub shards: usize,
    /// Logical worker count (also the partition count of a batch).
    pub workers: usize,
    /// Thread spawn policy.
    pub spawn: SpawnPolicy,
}

impl EngineConfig {
    /// Engine with the paper's GD parameters, 8 dictionary shards and 4
    /// workers under the auto spawn policy.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            shards: 8,
            workers: 4,
            spawn: SpawnPolicy::Auto,
        }
    }

    /// The configuration that reproduces `GdCompressor::compress_batch`
    /// bit for bit: one shard, one worker, inline execution.
    pub fn single_threaded(gd: GdConfig) -> Self {
        Self {
            gd,
            shards: 1,
            workers: 1,
            spawn: SpawnPolicy::Inline,
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        self.gd.validate()?;
        if self.workers == 0 {
            return Err(GdError::InvalidConfig(
                "worker count must be positive".into(),
            ));
        }
        // Shard constraints are validated by the dictionary constructor.
        ShardedDictionary::for_config(&self.gd, self.shards).map(|_| ())
    }
}

/// Fixed per-worker state, reused across batches.
#[derive(Debug, Default, Clone)]
struct WorkerScratch {
    encode: EncodeScratch,
}

/// The Generalized Deduplication backend: the sharded, multi-core GD codec
/// with the same stream semantics as [`zipline_gd::GdCompressor`]. This is
/// the engine's bit-identical default backend; see the module docs for the
/// two-phase pipeline and the [`CompressionBackend`] impl for the contract
/// it upholds (ordered [`DictionaryDelta`]s, snapshot sync, per-shard
/// statistics).
#[derive(Debug)]
pub struct GdBackend {
    codec: ChunkCodec,
    config: EngineConfig,
    dict: ShardedDictionary,
    /// Per-shard compression accounting (merged view via `stats`).
    shard_compression_stats: Vec<CompressionStats>,
    /// Accounting for raw tails, which bypass the shards.
    tail_stats: CompressionStats,
    /// The fixed worker pool: per-worker scratch buffers.
    workers: Vec<WorkerScratch>,
    /// Reused batch buffer of encoded chunks (threaded path).
    encoded: Vec<EncodedChunk>,
    /// Reused shard assignment per chunk of the current batch.
    shard_of: Vec<u32>,
    /// Reused per-shard chunk index lists (threaded path).
    per_shard_idx: Vec<Vec<u32>>,
    /// Reused per-shard record queues (threaded path).
    per_shard_records: Vec<Vec<Record>>,
    /// Recycled single-chunk slot for the fused inline path.
    inline_slot: EncodedChunk,
    /// Recycled wire serialization buffer for `emit_batch`.
    wire_scratch: Vec<u8>,
    /// Host parallelism, queried once at construction —
    /// `std::thread::available_parallelism` reads cgroup files on Linux and
    /// is far too slow to call per batch.
    cores: usize,
}

impl GdBackend {
    /// Builds the backend with a fresh sharded dictionary.
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            codec: ChunkCodec::new(&config.gd)?,
            dict: ShardedDictionary::for_config(&config.gd, config.shards)?,
            shard_compression_stats: vec![CompressionStats::new(); config.shards],
            tail_stats: CompressionStats::new(),
            workers: vec![WorkerScratch::default(); config.workers],
            encoded: Vec::new(),
            shard_of: Vec::new(),
            per_shard_idx: vec![Vec::new(); config.shards],
            per_shard_records: vec![Vec::new(); config.shards],
            inline_slot: EncodedChunk::default(),
            wire_scratch: Vec::new(),
            cores: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The chunk codec.
    pub fn codec(&self) -> &ChunkCodec {
        &self.codec
    }

    /// The sharded dictionary (e.g. to inspect learned bases).
    pub fn dictionary(&self) -> &ShardedDictionary {
        &self.dict
    }

    /// Merged dictionary snapshot, for *cold* decoder sync. Under churn a
    /// post-hoc snapshot aliases recycled identifiers; use live sync
    /// (journaling via [`CompressionBackend::set_live_sync`] +
    /// [`CompressionBackend::take_delta`]) for streams that may learn more
    /// distinct bases than the dictionary holds.
    pub fn dictionary_snapshot(&self) -> DictionarySnapshot {
        self.dict.snapshot()
    }

    /// Number of OS threads a batch of `n_chunks` will use.
    fn threads_for(&self, n_chunks: usize) -> usize {
        /// Below this many chunks per thread, handoff dominates the work.
        const MIN_CHUNKS_PER_THREAD: usize = 32;
        let workers = self.config.workers;
        let threads = match self.config.spawn {
            SpawnPolicy::Inline => 1,
            SpawnPolicy::Threads => workers,
            SpawnPolicy::Auto => {
                if self.cores <= 1 {
                    1
                } else {
                    workers
                        .min(self.cores)
                        .min(n_chunks / MIN_CHUNKS_PER_THREAD)
                }
            }
        };
        threads.clamp(1, n_chunks.max(1))
    }

    /// Phase 1: encode every whole chunk into `self.encoded` and its shard
    /// assignment into `self.shard_of`, fanning contiguous ranges across the
    /// worker pool.
    fn encode_phase(&mut self, data: &[u8], n_chunks: usize, threads: usize) -> Result<()> {
        let chunk_bytes = self.config.gd.chunk_bytes;
        let num_shards = self.dict.num_shards() as u64;
        if self.encoded.len() > n_chunks {
            self.encoded.truncate(n_chunks);
        } else {
            let grow = n_chunks - self.encoded.len();
            self.encoded.reserve(grow);
            self.encoded
                .extend(std::iter::repeat_with(EncodedChunk::default).take(grow));
        }
        self.shard_of.resize(n_chunks, 0);

        let codec = &self.codec;
        // Contiguous partition: the first `n_chunks % threads` ranges get one
        // extra chunk.
        let base = n_chunks / threads;
        let extra = n_chunks % threads;
        let mut enc_rest: &mut [EncodedChunk] = &mut self.encoded;
        let mut shard_rest: &mut [u32] = &mut self.shard_of;
        let mut offset = 0usize;
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(threads);
            for (t, worker) in self.workers.iter_mut().take(threads).enumerate() {
                let count = base + usize::from(t < extra);
                let (enc_part, enc_tail) = enc_rest.split_at_mut(count);
                enc_rest = enc_tail;
                let (shard_part, shard_tail) = shard_rest.split_at_mut(count);
                shard_rest = shard_tail;
                let data_part = &data[offset * chunk_bytes..(offset + count) * chunk_bytes];
                offset += count;
                let scratch = &mut worker.encode;
                joins.push(scope.spawn(move || -> Result<()> {
                    for ((chunk, slot), shard) in data_part
                        .chunks_exact(chunk_bytes)
                        .zip(enc_part.iter_mut())
                        .zip(shard_part.iter_mut())
                    {
                        codec.encode_chunk_into(chunk, scratch, slot)?;
                        *shard = (slot.basis_hash % num_shards) as u32;
                    }
                    Ok(())
                }));
            }
            joins
                .into_iter()
                .map(|j| j.join().expect("encode worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Single-threaded fast path: encode and classify fused into one pass
    /// over the input, streaming every chunk through one recycled slot.
    fn compress_inline(&mut self, data: &[u8], records: &mut Vec<Record>) -> Result<()> {
        let gd = self.config.gd;
        let num_shards = self.dict.num_shards() as u64;
        let Self {
            codec,
            dict,
            shard_compression_stats,
            workers,
            inline_slot,
            ..
        } = self;
        let scratch = &mut workers[0].encode;
        for (at, chunk) in data.chunks_exact(gd.chunk_bytes).enumerate() {
            codec.encode_chunk_into(chunk, scratch, inline_slot)?;
            let shard = (inline_slot.basis_hash % num_shards) as usize;
            let outcome =
                dict.classify_at(shard, &inline_slot.basis, inline_slot.basis_hash, at as u64)?;
            records.push(record_for_outcome(
                &gd,
                inline_slot,
                outcome,
                &mut shard_compression_stats[shard],
            ));
        }
        Ok(())
    }

    /// Phase 2, threaded: shards are distributed round-robin over the worker
    /// threads; each thread classifies the chunks routed to its shards (in
    /// input order, via the per-shard index lists built by
    /// [`Self::encode_phase`]'s caller), and the per-shard record queues are
    /// merged back into input order. All the batch-sized buffers
    /// (`per_shard_idx`, `per_shard_records`) are engine fields recycled
    /// across batches.
    fn classify_parallel(
        &mut self,
        n_chunks: usize,
        threads: usize,
        records: &mut Vec<Record>,
    ) -> Result<()> {
        let gd = self.config.gd;
        let encoded = &self.encoded[..n_chunks];
        let shard_of = &self.shard_of[..n_chunks];

        // Route chunks to shards once, in input order.
        for list in &mut self.per_shard_idx {
            list.clear();
        }
        for (i, &shard) in shard_of.iter().enumerate() {
            self.per_shard_idx[shard as usize].push(i as u32);
        }

        // Thread `t` owns shards `t, t + threads, t + 2*threads, …`.
        let mut groups: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
        for (((handle, stats), idx), out) in self
            .dict
            .shard_handles()
            .into_iter()
            .zip(self.shard_compression_stats.iter_mut())
            .zip(self.per_shard_idx.iter())
            .zip(self.per_shard_records.iter_mut())
        {
            out.clear();
            groups[handle.index() % threads].push((handle, stats, idx, out));
        }

        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let joins: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || -> Result<()> {
                        for (mut handle, stats, idx, out) in group {
                            for &i in idx.iter() {
                                let enc = &encoded[i as usize];
                                let outcome =
                                    handle.classify_at(&enc.basis, enc.basis_hash, i as u64)?;
                                out.push(record_for_outcome(&gd, enc, outcome, stats));
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("classify worker panicked"))
                .collect()
        });
        results.into_iter().collect::<Result<()>>()?;

        // Stable merge back into input order: each shard queue is already in
        // input order, so walking the shard assignments replays the batch.
        let mut queues: Vec<std::vec::Drain<'_, Record>> = self
            .per_shard_records
            .iter_mut()
            .map(|v| v.drain(..))
            .collect();
        for &shard in shard_of {
            records.push(
                queues[shard as usize]
                    .next()
                    .expect("every chunk classified exactly once"),
            );
        }
        Ok(())
    }
}

impl CompressionBackend for GdBackend {
    type Batch = CompressedStream;
    type Decompressor = GdBackendDecompressor;

    fn from_engine_config(config: &EngineConfig) -> Result<Self> {
        Self::new(*config)
    }

    fn codec_id(&self) -> CodecId {
        CODEC_GD
    }

    fn unit_bytes(&self) -> usize {
        self.config.gd.chunk_bytes
    }

    /// Compresses a whole buffer, equivalent to
    /// [`zipline_gd::GdCompressor::compress_batch`] modulo identifier
    /// assignment (identical for 1 shard): chunks fan out across the worker
    /// pool and the sharded dictionary, and records are reassembled in input
    /// order. A trailing partial chunk is stored verbatim.
    fn compress_batch(&mut self, data: &[u8]) -> Result<CompressedStream> {
        let chunk_bytes = self.config.gd.chunk_bytes;
        let n_chunks = data.len() / chunk_bytes;
        let threads = self.threads_for(n_chunks);

        let mut records = Vec::with_capacity(n_chunks + 1);
        if threads <= 1 {
            // Fused single pass (no intermediate batch buffer), exactly the
            // shape of `GdCompressor::compress_batch` plus shard routing.
            self.compress_inline(data, &mut records)?;
        } else {
            self.encode_phase(data, n_chunks, threads)?;
            self.classify_parallel(n_chunks, threads, &mut records)?;
        }

        let tail = &data[n_chunks * chunk_bytes..];
        if !tail.is_empty() {
            self.tail_stats.bytes_in += tail.len() as u64;
            self.tail_stats.bytes_out += tail.len() as u64;
            self.tail_stats.emitted_raw += 1;
            self.tail_stats.chunks_in += 1;
            records.push(Record::RawTail {
                bytes: tail.to_vec(),
            });
        }

        Ok(CompressedStream {
            config: self.config.gd,
            records,
        })
    }

    /// Serializes every record of the batch as a wire-ready
    /// [`ZipLinePayload`] through the one recycled scratch buffer, emitting
    /// them in input order (the `at` coordinate of the batch's delta).
    fn emit_batch(
        &mut self,
        batch: CompressedStream,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        let gd = self.config.gd;
        for record in batch.records {
            let payload = match record {
                Record::NewBasis {
                    extra,
                    deviation,
                    basis,
                } => ZipLinePayload::Uncompressed {
                    deviation,
                    extra,
                    basis,
                },
                Record::Ref {
                    extra,
                    deviation,
                    id,
                } => ZipLinePayload::Compressed {
                    deviation,
                    extra,
                    id,
                },
                Record::RawTail { bytes } => ZipLinePayload::Raw(bytes),
            };
            payload.encode_into(&gd, &mut self.wire_scratch)?;
            emit(payload.packet_type(), &self.wire_scratch);
        }
        Ok(())
    }

    /// Merged compression statistics across all shards and tails.
    fn stats(&self) -> CompressionStats {
        let mut merged = self.tail_stats;
        for s in &self.shard_compression_stats {
            merged.merge(s);
        }
        merged
    }

    /// Per-shard dictionary counters.
    fn shard_stats(&self) -> Vec<ShardStats> {
        self.dict.shard_stats()
    }

    fn snapshot(&self) -> Option<DictionarySnapshot> {
        Some(self.dictionary_snapshot())
    }

    fn supports_live_sync(&self) -> bool {
        true
    }

    /// Turns dictionary update journaling on or off. Enabling makes every
    /// batch record its install/evict events for [`Self::take_delta`] to
    /// drain (from the next batch on); disabling discards undrained events
    /// and restores the zero-cost default.
    fn set_live_sync(&mut self, enabled: bool) {
        self.dict.set_journal(enabled);
    }

    fn live_sync_enabled(&self) -> bool {
        self.dict.journal_enabled()
    }

    /// Drains the update journal accumulated since the last call into an
    /// ordered [`DictionaryDelta`]. Call once per batch: each update's `at`
    /// is the input-order record index *within that batch*, so a decoder
    /// applying every update with `at <= i` before record `i` stays exactly
    /// in sync (see the [`DictionaryDelta`] ordering guarantees).
    fn take_delta(&mut self) -> DictionaryDelta {
        self.dict.take_delta()
    }

    /// Full behavioural state of the sharded dictionary, what the persist
    /// layer's checkpoints serialize.
    fn export_dictionary_state(&self) -> Option<DictionaryState> {
        Some(self.dict.export_state())
    }

    /// Warm restart: replaces the sharded dictionary with a persisted
    /// state, preserving the journaling flag (the global `delta_seq`
    /// carries over, so live sync continues monotonically).
    fn restore_dictionary_state(&mut self, state: &DictionaryState) -> Result<()> {
        if state.shard_count != self.config.shards
            || state.shard_count * state.shard_capacity != self.config.gd.dictionary_capacity()
        {
            return Err(GdError::InvalidConfig(format!(
                "persisted dictionary shape {}x{} does not match the engine's {} shards of {}",
                state.shard_count,
                state.shard_capacity,
                self.config.shards,
                self.config.gd.dictionary_capacity() / self.config.shards,
            )));
        }
        let journal = self.dict.journal_enabled();
        self.dict = ShardedDictionary::from_state(state)?;
        self.dict.set_journal(journal);
        Ok(())
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        GdBackendDecompressor::new(&self.config)
    }

    fn decompressor_for(config: &EngineConfig) -> Result<Self::Decompressor> {
        // Straight to the decoder — no sharded dictionary, worker scratch or
        // `available_parallelism` probe on the compression side to discard.
        GdBackendDecompressor::new(config)
    }
}

/// Builds the stream record for one classified chunk, with the same
/// statistics accounting as `GdCompressor::record_for_mut`.
fn record_for_outcome(
    gd: &GdConfig,
    enc: &EncodedChunk,
    outcome: ShardOutcome,
    stats: &mut CompressionStats,
) -> Record {
    let m = gd.m as usize;
    let e = gd.extra_bits();
    stats.chunks_in += 1;
    stats.bytes_in += gd.chunk_bytes as u64;
    match outcome {
        ShardOutcome::Known { id } => {
            stats.emitted_compressed += 1;
            stats.bytes_out += ((m + e + gd.id_bits as usize) as u64).div_ceil(8);
            Record::Ref {
                extra: enc.extra.clone(),
                deviation: enc.deviation,
                id,
            }
        }
        ShardOutcome::Learned { evicted, .. } => {
            if evicted {
                stats.evictions += 1;
            }
            stats.bases_learned += 1;
            stats.emitted_uncompressed += 1;
            stats.bytes_out += ((m + e + gd.k()) as u64).div_ceil(8);
            Record::NewBasis {
                extra: enc.extra.clone(),
                deviation: enc.deviation,
                basis: enc.basis.clone(),
            }
        }
    }
}

/// Decoder mirror of [`GdBackend`]: rebuilds the sharded dictionary from
/// `NewBasis` records (routing by the same basis hash) so engine streams
/// decode without out-of-band state — provided it is configured with the
/// *same shard count* the compressor used, just as [`GdConfig`] must match.
#[derive(Debug)]
pub struct GdBackendDecompressor {
    codec: ChunkCodec,
    dict: ShardedDictionary,
    stats: CompressionStats,
    scratch: DecodeScratch,
    gd: GdConfig,
}

impl GdBackendDecompressor {
    /// Builds a decompressor mirroring `config` (worker count and spawn
    /// policy are irrelevant to decoding; only `gd` and `shards` matter).
    pub fn new(config: &EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            codec: ChunkCodec::new(&config.gd)?,
            dict: ShardedDictionary::for_config(&config.gd, config.shards)?,
            stats: CompressionStats::new(),
            scratch: DecodeScratch::new(),
            gd: config.gd,
        })
    }

    /// The sharded dictionary rebuilt so far.
    pub fn dictionary(&self) -> &ShardedDictionary {
        &self.dict
    }

    /// Applies one out-of-band dictionary update (an `Install`/`Remove`
    /// received on a control plane rather than learned in-band from a
    /// type 2 payload). Used to bootstrap a decoder from reseed frames
    /// after a warm restart compacted the journal away.
    pub fn apply_update(&mut self, update: &DictionaryUpdate) -> Result<()> {
        self.dict.apply_update(update)
    }

    /// Decompresses one record, appending the restored bytes to `out`.
    pub fn decompress_record_into(&mut self, record: &Record, out: &mut Vec<u8>) -> Result<()> {
        match record {
            Record::NewBasis {
                extra,
                deviation,
                basis,
            } => self.restore_new_basis(extra, *deviation, basis, out),
            Record::Ref {
                extra,
                deviation,
                id,
            } => self.restore_ref(extra, *deviation, *id, out),
            Record::RawTail { bytes } => {
                out.extend_from_slice(bytes);
                self.stats.chunks_decoded += 1;
                Ok(())
            }
        }
    }

    fn restore_new_basis(
        &mut self,
        extra: &zipline_gd::BitVec,
        deviation: u64,
        basis: &zipline_gd::BitVec,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        // Mirror the compressor's dictionary update: same hash, same shard,
        // same clock tick, so later Ref records resolve to the same
        // identifiers.
        let hash = basis.hash_words();
        let shard = self.dict.shard_of_hash(hash);
        self.dict.learn(shard, basis.clone(), hash)?;
        let Self { codec, scratch, .. } = self;
        codec.decode_parts_into(extra, deviation, basis, scratch, out)?;
        self.stats.chunks_decoded += 1;
        Ok(())
    }

    fn restore_ref(
        &mut self,
        extra: &zipline_gd::BitVec,
        deviation: u64,
        id: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let Self {
            codec,
            dict,
            stats,
            scratch,
            ..
        } = self;
        let Some(basis) = dict.lookup_id_ref(id, true) else {
            stats.decode_failures += 1;
            return Err(GdError::UnknownIdentifier(id));
        };
        codec.decode_parts_into(extra, deviation, basis, scratch, out)?;
        self.stats.chunks_decoded += 1;
        Ok(())
    }
}

impl BackendDecompressor for GdBackendDecompressor {
    type Batch = CompressedStream;

    /// Decompresses a whole engine stream with recycled scratch buffers,
    /// symmetric to [`GdBackend::compress_batch`](CompressionBackend::compress_batch).
    fn decompress_batch(&mut self, stream: &CompressedStream) -> Result<Vec<u8>> {
        if stream.config.m != self.gd.m
            || stream.config.chunk_bytes != self.gd.chunk_bytes
            || stream.config.id_bits != self.gd.id_bits
        {
            return Err(GdError::InvalidConfig(
                "stream was compressed with a different configuration".into(),
            ));
        }
        let mut out = Vec::with_capacity(stream.records.len() * self.gd.chunk_bytes);
        for record in &stream.records {
            self.decompress_record_into(record, &mut out)?;
        }
        Ok(out)
    }

    /// Decodes one wire payload produced by the engine stream (see
    /// `EngineStream`), appending the restored bytes to `out`. Type 2
    /// payloads teach the dictionary exactly like `NewBasis` records.
    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        match ZipLinePayload::decode(&self.gd, packet_type, bytes)? {
            ZipLinePayload::Raw(raw) => {
                out.extend_from_slice(&raw);
                self.stats.chunks_decoded += 1;
                Ok(())
            }
            ZipLinePayload::Uncompressed {
                deviation,
                extra,
                basis,
            } => self.restore_new_basis(&extra, deviation, &basis, out),
            ZipLinePayload::Compressed {
                deviation,
                extra,
                id,
            } => self.restore_ref(&extra, deviation, id, out),
        }
    }

    /// Current statistics.
    fn stats(&self) -> &CompressionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// The generic engine shell
// ---------------------------------------------------------------------------

/// Sharded, multi-core batch compressor, generic over its
/// [`CompressionBackend`]. `CompressionEngine` (no type argument) is the
/// GD-backed engine with the same stream semantics as
/// [`zipline_gd::GdCompressor`]; `CompressionEngine<DeflateBackend>` and
/// `CompressionEngine<PassthroughBackend>` drive the same streaming pipeline
/// through gzip and the identity codec. Construct through
/// [`EngineBuilder`](crate::EngineBuilder).
///
/// [`DeflateBackend`]: crate::DeflateBackend
/// [`PassthroughBackend`]: crate::PassthroughBackend
#[derive(Debug)]
pub struct CompressionEngine<B: CompressionBackend = GdBackend> {
    backend: B,
    /// Ingest pipeline shape, when the engine was built for
    /// [`PipelinedStream`](crate::PipelinedStream) via
    /// [`EngineBuilder::pipelined`](crate::EngineBuilder::pipelined).
    pipeline: Option<PipelineConfig>,
    /// The durability layer, when the engine was built with
    /// [`EngineBuilder::durable`](crate::EngineBuilder::durable). Streams
    /// constructed over the engine journal every batch through it.
    store: Option<EngineStore>,
    /// Recovery data from the store the engine was rehydrated from, held
    /// for the host path to consume once (replay boundary + committed
    /// wire journal).
    warm_start: Option<WarmStart>,
}

impl<B: CompressionBackend> CompressionEngine<B> {
    /// Wraps an already-built backend. [`EngineBuilder`](crate::EngineBuilder)
    /// is the validated front door; this is the escape hatch for backends
    /// with constructor parameters the builder doesn't know about.
    pub fn from_backend(backend: B) -> Self {
        Self {
            backend,
            pipeline: None,
            store: None,
            warm_start: None,
        }
    }

    /// The ingest pipeline shape, when configured (see
    /// [`EngineBuilder::pipelined`](crate::EngineBuilder::pipelined)).
    pub fn pipeline(&self) -> Option<PipelineConfig> {
        self.pipeline
    }

    /// Opts the engine in to (or out of) pipelined ingest. The builder's
    /// [`pipelined`](crate::EngineBuilder::pipelined) knob is the validated
    /// path; this setter is the matching escape hatch for engines built via
    /// [`from_backend`](Self::from_backend) — the configuration is still
    /// checked, at [`PipelinedStream`](crate::PipelinedStream) construction.
    pub fn set_pipeline(&mut self, pipeline: Option<PipelineConfig>) {
        self.pipeline = pipeline;
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Unwraps the engine back into its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Attaches (or replaces) the durability layer. Streams constructed
    /// over the engine commit every batch through it before emitting.
    pub fn attach_store(&mut self, store: EngineStore) {
        self.store = Some(store);
    }

    /// The attached durability layer, if any.
    pub fn store(&self) -> Option<&EngineStore> {
        self.store.as_ref()
    }

    /// Detaches and returns the durability layer (used by
    /// [`PipelinedStream`](crate::PipelinedStream), which journals on the
    /// caller side while the engine lives on the worker thread).
    pub fn take_store(&mut self) -> Option<EngineStore> {
        self.store.take()
    }

    /// Split borrow: the backend and the attached store, simultaneously
    /// mutable (the stream needs the backend to emit while the store
    /// journals).
    pub fn backend_and_store_mut(&mut self) -> (&mut B, Option<&mut EngineStore>) {
        (&mut self.backend, self.store.as_mut())
    }

    /// Stashes warm-restart recovery data (builder-internal).
    pub(crate) fn set_warm_start(&mut self, warm: WarmStart) {
        self.warm_start = Some(warm);
    }

    /// Takes the warm-restart recovery data, if the engine was rehydrated
    /// from a durable store: the committed batch boundary, the resume
    /// offset into the input, and the committed wire journal. Consumed
    /// once — typically by the host path to decide where to resume.
    pub fn take_warm_start(&mut self) -> Option<WarmStart> {
        self.warm_start.take()
    }

    /// Compresses one batch; see
    /// [`CompressionBackend::compress_batch`].
    pub fn compress_batch(&mut self, data: &[u8]) -> Result<B::Batch> {
        self.backend.compress_batch(data)
    }

    /// Compression statistics accumulated so far.
    pub fn stats(&self) -> CompressionStats {
        self.backend.stats()
    }

    /// Per-shard dictionary counters (empty for unsharded backends).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.backend.shard_stats()
    }

    /// Turns live-sync journaling on or off (no-op for delta-less backends).
    pub fn set_live_sync(&mut self, enabled: bool) {
        self.backend.set_live_sync(enabled);
    }

    /// True when live-sync journaling is on.
    pub fn live_sync_enabled(&self) -> bool {
        self.backend.live_sync_enabled()
    }

    /// Drains the journal into an ordered delta; see
    /// [`CompressionBackend::take_delta`].
    pub fn take_delta(&mut self) -> DictionaryDelta {
        self.backend.take_delta()
    }

    /// Builds the mirrored decompressor for this engine's streams.
    pub fn decompressor(&self) -> Result<EngineDecompressor<B>> {
        Ok(EngineDecompressor {
            inner: self.backend.decompressor()?,
        })
    }
}

impl CompressionEngine<GdBackend> {
    /// Builds a GD engine with a fresh sharded dictionary. Shorthand for
    /// `EngineBuilder::new().config(config).build()`.
    pub fn new(config: EngineConfig) -> Result<Self> {
        Ok(Self::from_backend(GdBackend::new(config)?))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.backend.config()
    }

    /// The chunk codec.
    pub fn codec(&self) -> &ChunkCodec {
        self.backend.codec()
    }

    /// The sharded dictionary (e.g. to inspect learned bases).
    pub fn dictionary(&self) -> &ShardedDictionary {
        self.backend.dictionary()
    }

    /// Merged dictionary snapshot, for *cold* decoder sync; see
    /// [`GdBackend::dictionary_snapshot`].
    pub fn snapshot(&self) -> DictionarySnapshot {
        self.backend.dictionary_snapshot()
    }
}

/// Decoder mirror of [`CompressionEngine`], generic over the same backend:
/// `EngineDecompressor` (no type argument) rebuilds the GD sharded
/// dictionary from the stream itself, `EngineDecompressor<DeflateBackend>`
/// restores gzip members, and so on. Construct through
/// [`EngineBuilder::build_decompressor`](crate::EngineBuilder::build_decompressor)
/// or [`CompressionEngine::decompressor`].
///
/// [`DeflateBackend`]: crate::DeflateBackend
#[derive(Debug)]
pub struct EngineDecompressor<B: CompressionBackend = GdBackend> {
    inner: B::Decompressor,
}

impl<B: CompressionBackend> EngineDecompressor<B> {
    /// Wraps an already-built backend decompressor.
    pub fn from_backend_decompressor(inner: B::Decompressor) -> Self {
        Self { inner }
    }

    /// The backend decompressor (for backend-specific accessors).
    pub fn backend(&self) -> &B::Decompressor {
        &self.inner
    }

    /// Mutable access to the backend decompressor.
    pub fn backend_mut(&mut self) -> &mut B::Decompressor {
        &mut self.inner
    }

    /// Decompresses a whole batch, symmetric to
    /// [`CompressionEngine::compress_batch`].
    pub fn decompress_batch(&mut self, batch: &B::Batch) -> Result<Vec<u8>> {
        self.inner.decompress_batch(batch)
    }

    /// Decodes one wire payload produced by the engine stream, appending the
    /// restored bytes to `out`.
    pub fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.inner.restore_payload_into(packet_type, bytes, out)
    }

    /// Current statistics.
    pub fn stats(&self) -> &CompressionStats {
        self.inner.stats()
    }
}

impl EngineDecompressor<GdBackend> {
    /// Builds a GD decompressor mirroring `config` — by value, consistent
    /// with [`CompressionEngine::new`] (worker count and spawn policy are
    /// irrelevant to decoding; only `gd` and `shards` matter).
    pub fn new(config: EngineConfig) -> Result<Self> {
        Ok(Self {
            inner: GdBackendDecompressor::new(&config)?,
        })
    }

    /// The sharded dictionary rebuilt so far.
    pub fn dictionary(&self) -> &ShardedDictionary {
        self.inner.dictionary()
    }

    /// Decompresses one record, appending the restored bytes to `out`.
    pub fn decompress_record_into(&mut self, record: &Record, out: &mut Vec<u8>) -> Result<()> {
        self.inner.decompress_record_into(record, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use zipline_gd::codec::GdCompressor;

    fn sensor_style_data(chunks: u32, chunk_bytes: usize) -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..chunks {
            let mut chunk = vec![0u8; chunk_bytes];
            chunk[0] = (i % 6) as u8;
            if chunk_bytes > 8 {
                chunk[8] = 0xA5;
            }
            data.extend_from_slice(&chunk);
        }
        data
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let mut c = EngineConfig::paper_default();
        c.validate().unwrap();
        c.workers = 0;
        assert!(c.validate().is_err());
        c.workers = 2;
        c.shards = 3;
        assert!(c.validate().is_err());
        c.shards = 1 << 16; // more shards than identifiers
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_roundtrip_with_tail() {
        let mut engine = EngineBuilder::new()
            .shards(8)
            .workers(4)
            .spawn(SpawnPolicy::Threads)
            .build()
            .unwrap();
        let mut data = sensor_style_data(300, 32);
        data.extend_from_slice(b"odd tail");
        let stream = engine.compress_batch(&data).unwrap();
        assert!(matches!(
            stream.records.last(),
            Some(Record::RawTail { .. })
        ));
        let mut dec = engine.decompressor().unwrap();
        assert_eq!(dec.decompress_batch(&stream).unwrap(), data);
        assert!(engine.stats().is_consistent());
        assert_eq!(engine.stats().chunks_in, 301);
    }

    #[test]
    fn stream_depends_only_on_shard_count() {
        let data = sensor_style_data(257, 32);
        let mut reference: Option<CompressedStream> = None;
        for workers in [1usize, 2, 3, 4, 7] {
            for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads] {
                let mut engine = EngineBuilder::new()
                    .shards(4)
                    .workers(workers)
                    .spawn(spawn)
                    .build()
                    .unwrap();
                let stream = engine.compress_batch(&data).unwrap();
                match &reference {
                    None => reference = Some(stream),
                    Some(r) => assert_eq!(
                        &stream, r,
                        "workers = {workers}, spawn = {spawn:?} changed the stream"
                    ),
                }
            }
        }
    }

    #[test]
    fn single_shard_single_worker_matches_gd_compressor() {
        let gd = GdConfig::paper_default();
        let mut data = sensor_style_data(200, 32);
        data.extend_from_slice(b"tail!");
        let mut engine = CompressionEngine::new(EngineConfig::single_threaded(gd)).unwrap();
        let engine_stream = engine.compress_batch(&data).unwrap();
        let mut reference = GdCompressor::new(&gd).unwrap();
        let reference_stream = reference.compress_batch(&data).unwrap();
        assert_eq!(engine_stream, reference_stream);
        assert_eq!(engine.stats(), *reference.stats());
    }

    #[test]
    fn snapshot_reflects_learned_bases() {
        let mut engine = EngineBuilder::new()
            .gd(GdConfig::for_parameters(3, 6).unwrap())
            .shards(4)
            .workers(2)
            .spawn(SpawnPolicy::Inline)
            .build()
            .unwrap();
        let data: Vec<u8> = (0..64u8).collect(); // 64 one-byte chunks
        engine.compress_batch(&data).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.len(), engine.stats().bases_learned as usize);
        assert_eq!(snap.shard_count, 4);
        let total_lookups: u64 = engine.shard_stats().iter().map(|s| s.lookups).sum();
        assert_eq!(total_lookups, 64);
    }

    #[test]
    fn dictionary_state_roundtrips_through_the_backend_hooks() {
        let mut engine = EngineBuilder::new()
            .gd(GdConfig::for_parameters(8, 6).unwrap())
            .shards(4)
            .workers(2)
            .spawn(SpawnPolicy::Inline)
            .live_sync(true)
            .build()
            .unwrap();
        let data = sensor_style_data(300, 32);
        engine.compress_batch(&data).unwrap();
        let _ = engine.take_delta();
        let state = engine.backend().export_dictionary_state().unwrap();

        // Restoring into a fresh engine of the same shape reproduces the
        // stream of a continued run bit for bit.
        let mut restored = EngineBuilder::new()
            .gd(GdConfig::for_parameters(8, 6).unwrap())
            .shards(4)
            .workers(2)
            .spawn(SpawnPolicy::Inline)
            .live_sync(true)
            .build()
            .unwrap();
        restored
            .backend_mut()
            .restore_dictionary_state(&state)
            .unwrap();
        assert!(
            restored.live_sync_enabled(),
            "journal flag survives restore"
        );
        let more = sensor_style_data(100, 32);
        let a = engine.compress_batch(&more).unwrap();
        let b = restored.compress_batch(&more).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.take_delta(), restored.take_delta());

        // A mismatched shape is rejected loudly.
        let mut other = EngineBuilder::new()
            .gd(GdConfig::for_parameters(8, 6).unwrap())
            .shards(8)
            .build()
            .unwrap();
        assert!(other
            .backend_mut()
            .restore_dictionary_state(&state)
            .is_err());
    }
}
