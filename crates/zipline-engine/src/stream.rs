//! The streaming pipeline API: records in, wire-ready payloads out.
//!
//! [`EngineStream`] adapts the batch-oriented [`CompressionEngine`] to
//! record-at-a-time producers such as the `zipline-traces` workload
//! iterators, for **any** [`CompressionBackend`]: records are buffered until
//! a batch's worth of backend units is available
//! ([`CompressionBackend::unit_bytes`] — GD chunks, or single bytes for the
//! deflate and passthrough backends), the batch fans out through the
//! backend, and every resulting record is serialized as a wire-ready payload
//! through the backend's recycled scratch
//! ([`CompressionBackend::emit_batch`]) before being handed to the caller's
//! sink. The shape follows the `CompressedStream`/`compress_chunk` idiom of
//! the atsc/brro-compressor exemplar: push records, then `finish()` to flush
//! the remainder (including a verbatim GD tail) and collect the summary.
//!
//! The emitted payload sequence decodes through
//! [`EngineDecompressor::restore_payload_into`](crate::EngineDecompressor::restore_payload_into)
//! for the same backend (configured with the same shard count, for GD) back
//! to the exact input bytes.
//!
//! # Live decoder sync
//!
//! [`EngineStream::control`] (or the [`EngineStream::with_control_sink`]
//! constructor) additionally streams the backend's
//! [`DictionaryUpdate`] events, *interleaved* with the data payloads: at
//! every batch boundary the backend's journal is drained into a
//! [`DictionaryDelta`](crate::DictionaryDelta) and each update is handed to
//! the control sink immediately before the record at whose position it
//! happened. A control plane that serializes each update onto the same
//! in-order channel as the payloads therefore guarantees that every
//! compressed payload is preceded on the wire by the install traffic that
//! makes it decodable — even when the dictionary churns past capacity and
//! recycles identifiers (the regime a one-shot post-hoc snapshot cannot
//! express). Delta-less backends (deflate, passthrough) never produce
//! updates, so an attached control sink simply stays idle.
//!
//! # Durability (commit-then-emit)
//!
//! On an engine built with [`EngineBuilder::durable`](crate::EngineBuilder::durable)
//! the stream journals every batch through the attached
//! [`EngineStore`](crate::EngineStore) **before** the caller's sinks see
//! it: payloads and interleaved updates are staged, committed (frame log +
//! shard delta + checkpoint when due + commit marker), and only then
//! emitted. Sinks therefore only ever observe committed batches — a crash
//! at any point either loses an uncommitted batch (whose input re-runs on
//! resume) or leaves a committed batch replayable from the store's
//! [`WarmStart`](crate::WarmStart) journal, never a half-emitted one.
//! [`EngineStream::finish`] compacts the shard store at the final batch
//! boundary.

use crate::backend::CompressionBackend;
use crate::engine::{CompressionEngine, GdBackend};
use crate::error::Result;
use crate::registry::CodecCursor;
use crate::shard::DictionaryUpdate;
use zipline_gd::packet::PacketType;
use zipline_traces::ChunkWorkload;

/// Shared emission discipline of [`EngineStream`] and
/// [`PipelinedStream`](crate::PipelinedStream): walks one batch's payloads in
/// input order, interleaving the batch's dictionary updates so that every
/// update reaches the control sink strictly before the payload at whose
/// position it happened, with the same [`StreamSummary`] accounting on both
/// paths. Keeping this in one place is what makes the pipelined stream
/// bit-identical (payloads *and* control frames) to the synchronous one.
pub(crate) struct InterleavedEmitter<'a, F, G>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
{
    sink: &'a mut F,
    control_sink: Option<&'a mut G>,
    updates: std::iter::Peekable<std::vec::IntoIter<DictionaryUpdate>>,
    summary: &'a mut StreamSummary,
    /// Input-order index of the next payload (the `at` coordinate updates
    /// are keyed on).
    at: u64,
}

impl<'a, F, G> InterleavedEmitter<'a, F, G>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
{
    pub(crate) fn new(
        updates: Vec<DictionaryUpdate>,
        sink: &'a mut F,
        control_sink: Option<&'a mut G>,
        summary: &'a mut StreamSummary,
    ) -> Self {
        Self {
            sink,
            control_sink,
            updates: updates.into_iter().peekable(),
            summary,
            at: 0,
        }
    }

    /// Emits the next payload, preceded by every update at its position.
    pub(crate) fn payload(&mut self, packet_type: PacketType, bytes: &[u8]) {
        if let Some(control_sink) = self.control_sink.as_mut() {
            while self.updates.peek().is_some_and(|u| u.at <= self.at) {
                let update = self.updates.next().expect("peeked");
                self.summary.control_updates += 1;
                control_sink(&update);
            }
        }
        if packet_type == PacketType::Compressed {
            self.summary.compressed_payloads += 1;
        }
        self.summary.payloads_emitted += 1;
        self.summary.wire_bytes += bytes.len() as u64;
        (self.sink)(packet_type, bytes);
        self.at += 1;
    }

    /// Flushes updates positioned after the last payload. Every update's
    /// position normally lies within the batch, so this is usually a no-op;
    /// it keeps the delta fully drained regardless.
    pub(crate) fn finish(mut self) {
        if let Some(control_sink) = self.control_sink.as_mut() {
            for update in self.updates.by_ref() {
                self.summary.control_updates += 1;
                control_sink(&update);
            }
        }
    }
}

/// Totals accumulated by an [`EngineStream`], returned by
/// [`EngineStream::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Record bytes pushed into the stream.
    pub bytes_in: u64,
    /// Wire payloads emitted to the sink.
    pub payloads_emitted: u64,
    /// Total wire bytes emitted to the sink.
    pub wire_bytes: u64,
    /// Payloads emitted in compressed (type 3) form.
    pub compressed_payloads: u64,
    /// Dictionary updates handed to the control sink (0 without live sync).
    pub control_updates: u64,
}

/// Streaming front-end over a [`CompressionEngine`]; see the module docs.
pub struct EngineStream<'e, F, G = fn(&DictionaryUpdate), B = GdBackend>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
    B: CompressionBackend,
{
    engine: &'e mut CompressionEngine<B>,
    sink: F,
    /// Live-sync control sink, fed each dictionary update in wire order.
    control_sink: Option<G>,
    /// Bytes pushed but not yet compressed (always shorter than a batch).
    buffer: Vec<u8>,
    /// Flush threshold in bytes (a whole number of backend units).
    batch_bytes: usize,
    summary: StreamSummary,
    /// Recycled staging for the durable path: per-payload type + length …
    staged_records: Vec<(PacketType, u32)>,
    /// … and the concatenated payload bytes, committed before emission.
    staged_wire: Vec<u8>,
    /// When attached, publishes each batch's codec tag before its payloads
    /// reach the sink — how a tagging (multi-codec) backend's routing
    /// decision travels to wire encoders without changing the sink shape.
    codec_cursor: Option<CodecCursor>,
}

impl<'e, F: FnMut(PacketType, &[u8]), B: CompressionBackend>
    EngineStream<'e, F, fn(&DictionaryUpdate), B>
{
    /// Creates a stream that flushes through `engine` every `batch_units`
    /// backend units ([`CompressionBackend::unit_bytes`] each — chunks for
    /// GD, bytes for deflate/passthrough), emitting each wire payload to
    /// `sink` as `(packet type, payload bytes)`.
    pub fn new(engine: &'e mut CompressionEngine<B>, batch_units: usize, sink: F) -> Self {
        Self::with_control_sink(engine, batch_units, sink, None)
    }
}

impl<'e, F, G, B> EngineStream<'e, F, G, B>
where
    F: FnMut(PacketType, &[u8]),
    G: FnMut(&DictionaryUpdate),
    B: CompressionBackend,
{
    /// Creates a stream with an optional live-sync control sink. When
    /// `control_sink` is `Some`, journaling is enabled on the backend and
    /// every install/evict event is handed to the sink interleaved with the
    /// payloads, in the order a decoder must apply them (each update
    /// strictly before the payload at whose position it happened).
    pub fn with_control_sink(
        engine: &'e mut CompressionEngine<B>,
        batch_units: usize,
        sink: F,
        control_sink: Option<G>,
    ) -> Self {
        let unit_bytes = engine.backend().unit_bytes().max(1);
        if control_sink.is_some() {
            engine.set_live_sync(true);
        }
        Self {
            engine,
            sink,
            control_sink,
            buffer: Vec::new(),
            batch_bytes: batch_units.max(1) * unit_bytes,
            summary: StreamSummary::default(),
            staged_records: Vec::new(),
            staged_wire: Vec::new(),
            codec_cursor: None,
        }
    }

    /// Attaches a [`CodecCursor`] the stream publishes each batch's codec
    /// tag through. For a tagging backend ([`CompressionBackend::tags_batches`])
    /// the cursor reads `Some(id)` while that batch's payloads flow to the
    /// sink; for a fixed backend it always reads `None` (untagged).
    pub fn set_codec_cursor(&mut self, cursor: CodecCursor) {
        self.codec_cursor = Some(cursor);
    }

    /// Attaches a live-sync control sink, builder style (enables journaling
    /// on the backend): `EngineStream::new(..).control(sink)`.
    pub fn control<G2: FnMut(&DictionaryUpdate)>(
        self,
        control_sink: G2,
    ) -> EngineStream<'e, F, G2, B> {
        self.engine.set_live_sync(true);
        EngineStream {
            engine: self.engine,
            sink: self.sink,
            control_sink: Some(control_sink),
            buffer: self.buffer,
            batch_bytes: self.batch_bytes,
            summary: self.summary,
            staged_records: self.staged_records,
            staged_wire: self.staged_wire,
            codec_cursor: self.codec_cursor,
        }
    }

    /// Appends one record (any number of bytes) to the stream, flushing a
    /// batch through the engine whenever enough units have accumulated.
    pub fn push_record(&mut self, bytes: &[u8]) -> Result<()> {
        self.summary.bytes_in += bytes.len() as u64;
        // Fill the buffer up to one batch at a time, so a record larger than
        // the batch streams through batch-sized engine calls instead of
        // being fully buffered and compressed in one go — peak memory stays
        // proportional to the batch size, not the record size.
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = self.batch_bytes - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.batch_bytes {
                self.flush_whole_units()?;
            }
        }
        Ok(())
    }

    /// Feeds every chunk of a workload generator through the stream.
    pub fn consume_workload(&mut self, workload: &dyn ChunkWorkload) -> Result<()> {
        for chunk in workload.chunks() {
            self.push_record(&chunk)?;
        }
        Ok(())
    }

    /// Compresses and emits every whole buffered unit, keeping the
    /// remainder buffered.
    fn flush_whole_units(&mut self) -> Result<()> {
        let unit_bytes = self.engine.backend().unit_bytes().max(1);
        let whole = (self.buffer.len() / unit_bytes) * unit_bytes;
        if whole == 0 {
            return Ok(());
        }
        let batch = self.engine.compress_batch(&self.buffer[..whole])?;
        self.emit_batch(batch, whole as u64)?;
        self.buffer.drain(..whole);
        Ok(())
    }

    /// Emits one compressed batch: drains the backend's dictionary delta
    /// (when live sync is on) and interleaves its updates with the
    /// serialized records, each update strictly before the record at whose
    /// position it happened. On a durable engine the whole batch is
    /// committed to the store first — sinks only ever see committed
    /// output.
    fn emit_batch(&mut self, batch: B::Batch, input_len: u64) -> Result<()> {
        let Self {
            engine,
            sink,
            control_sink,
            summary,
            staged_records,
            staged_wire,
            codec_cursor,
            ..
        } = self;
        let (backend, store) = engine.backend_and_store_mut();
        // Drain the journal even when no sink consumes it, so a stream
        // without live sync on a journaling engine cannot leak stale events
        // into a later batch's delta.
        let updates = if backend.live_sync_enabled() {
            backend.take_delta().updates
        } else {
            Vec::new()
        };
        // Resolve the tag before emit_batch consumes the batch by value.
        let codec = backend
            .tags_batches()
            .then(|| backend.batch_codec_id(&batch));
        if let Some(cursor) = codec_cursor.as_ref() {
            cursor.set(codec);
        }
        if let Some(store) = store {
            // Commit-then-emit: stage the batch's wire form, make it
            // durable (frames + delta + checkpoint when due + commit
            // marker), then emit the staged copy.
            staged_records.clear();
            staged_wire.clear();
            backend.emit_batch(batch, &mut |packet_type, bytes| {
                staged_records.push((packet_type, bytes.len() as u32));
                staged_wire.extend_from_slice(bytes);
            })?;
            let state = store
                .checkpoint_due()
                .then(|| backend.export_dictionary_state())
                .flatten();
            store.commit_batch(
                staged_records,
                staged_wire,
                codec,
                &updates,
                state.as_ref(),
                input_len,
            )?;
            let mut emitter =
                InterleavedEmitter::new(updates, sink, control_sink.as_mut(), summary);
            let mut offset = 0usize;
            for (packet_type, len) in staged_records.iter() {
                let end = offset + *len as usize;
                emitter.payload(*packet_type, &staged_wire[offset..end]);
                offset = end;
            }
            emitter.finish();
        } else {
            let mut emitter =
                InterleavedEmitter::new(updates, sink, control_sink.as_mut(), summary);
            backend.emit_batch(batch, &mut |packet_type, bytes| {
                emitter.payload(packet_type, bytes);
            })?;
            emitter.finish();
        }
        Ok(())
    }

    /// Flushes everything still buffered (for GD, a trailing partial chunk
    /// is emitted verbatim as a type 1 payload) and returns the stream
    /// totals. On a durable engine the shard store is compacted at this
    /// final batch boundary (header + one checkpoint), bounding log growth
    /// across restarts.
    pub fn finish(mut self) -> Result<StreamSummary> {
        if !self.buffer.is_empty() {
            let len = self.buffer.len() as u64;
            let batch = self
                .engine
                .compress_batch(&std::mem::take(&mut self.buffer))?;
            self.emit_batch(batch, len)?;
        }
        let (backend, store) = self.engine.backend_and_store_mut();
        if let Some(store) = store {
            if let Some(state) = backend.export_dictionary_state() {
                store.compact(&state)?;
            }
        }
        Ok(self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DeflateBackend, PassthroughBackend};
    use crate::builder::EngineBuilder;
    use crate::engine::SpawnPolicy;

    fn test_builder() -> EngineBuilder {
        EngineBuilder::new()
            .shards(4)
            .workers(2)
            .spawn(SpawnPolicy::Inline)
    }

    #[test]
    fn stream_emits_payloads_that_restore_to_the_input() {
        let mut dec = test_builder().build_decompressor().unwrap();
        let mut engine = test_builder().build().unwrap();
        let mut emitted: Vec<(PacketType, Vec<u8>)> = Vec::new();
        let mut stream = EngineStream::new(&mut engine, 16, |pt, bytes| {
            emitted.push((pt, bytes.to_vec()));
        });

        let mut input = Vec::new();
        for i in 0..150u32 {
            let mut record = [0u8; 32];
            record[0] = (i % 4) as u8;
            record[20] = 0xBE;
            stream.push_record(&record).unwrap();
            input.extend_from_slice(&record);
        }
        // A ragged final record exercises the verbatim tail.
        stream.push_record(&[1, 2, 3]).unwrap();
        input.extend_from_slice(&[1, 2, 3]);
        let summary = stream.finish().unwrap();

        assert_eq!(summary.bytes_in, input.len() as u64);
        assert_eq!(summary.payloads_emitted, emitted.len() as u64);
        assert_eq!(
            summary.wire_bytes,
            emitted.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        );
        assert!(summary.compressed_payloads > 140, "most chunks deduplicate");

        let mut restored = Vec::new();
        for (pt, bytes) in &emitted {
            dec.restore_payload_into(*pt, bytes, &mut restored).unwrap();
        }
        assert_eq!(restored, input);
    }

    #[test]
    fn plain_stream_on_a_journaling_engine_drains_stale_updates() {
        let mut engine = test_builder().live_sync(true).build().unwrap();
        // A stream without a control sink must not leave the journal to leak
        // into a later live-synced stream's delta.
        {
            let mut stream = EngineStream::new(&mut engine, 4, |_, _| {});
            stream.push_record(&[7u8; 32 * 6]).unwrap();
            let summary = stream.finish().unwrap();
            assert_eq!(summary.control_updates, 0);
        }
        let mut updates = Vec::new();
        {
            let mut stream = EngineStream::new(&mut engine, 4, |_, _| {})
                .control(|u: &DictionaryUpdate| updates.push(u.clone()));
            // The same basis again: known, so the live stream journals
            // nothing new — stale events from the first stream must be gone.
            stream.push_record(&[7u8; 32 * 2]).unwrap();
            stream.finish().unwrap();
        }
        assert!(updates.is_empty(), "no stale updates leak across streams");
    }

    #[test]
    fn small_batches_and_large_records_flush_incrementally() {
        let mut engine = test_builder().build().unwrap();
        let mut count = 0usize;
        {
            let mut stream = EngineStream::new(&mut engine, 1, |_, _| count += 1);
            // One push covering many chunks flushes as many batches as needed.
            stream.push_record(&[0u8; 32 * 10]).unwrap();
            stream.finish().unwrap();
        }
        assert_eq!(count, 10);
        // The engine keeps its dictionary across streams.
        assert_eq!(engine.stats().bases_learned, 1);
    }

    #[test]
    fn deflate_stream_batches_by_bytes_and_roundtrips() {
        let mut engine = EngineBuilder::new()
            .backend(DeflateBackend::default())
            .build()
            .unwrap();
        let mut members: Vec<Vec<u8>> = Vec::new();
        // unit_bytes == 1, so batch_units is a byte count: 4 KiB members.
        let mut stream = EngineStream::new(&mut engine, 4096, |pt, bytes| {
            assert_eq!(pt, PacketType::Raw);
            members.push(bytes.to_vec());
        });
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 19) as u8).collect();
        stream.push_record(&data).unwrap();
        let summary = stream.finish().unwrap();
        assert_eq!(summary.bytes_in, data.len() as u64);
        assert_eq!(members.len(), 3, "10000 B split into 4096-byte batches");
        assert!(summary.wire_bytes < data.len() as u64, "gzip compresses");

        let mut dec = engine.decompressor().unwrap();
        let mut restored = Vec::new();
        for member in &members {
            dec.restore_payload_into(PacketType::Raw, member, &mut restored)
                .unwrap();
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn passthrough_stream_is_the_wire_floor() {
        let mut engine = EngineBuilder::new()
            .backend(PassthroughBackend::new())
            .build()
            .unwrap();
        let mut wire = Vec::new();
        let mut stream = EngineStream::new(&mut engine, 512, |_, bytes| {
            wire.extend_from_slice(bytes);
        });
        let data = vec![0xA5u8; 2000];
        stream.push_record(&data).unwrap();
        let summary = stream.finish().unwrap();
        assert_eq!(wire, data, "passthrough is the identity on the wire");
        assert_eq!(summary.wire_bytes, summary.bytes_in, "ratio floor is 1.0");
        assert_eq!(summary.compressed_payloads, 0);
    }
}
