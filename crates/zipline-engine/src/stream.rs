//! The streaming pipeline API: records in, wire-ready payloads out.
//!
//! [`EngineStream`] adapts the batch-oriented [`CompressionEngine`] to
//! record-at-a-time producers such as the `zipline-traces` workload
//! iterators: records are buffered until a batch's worth of chunks is
//! available, the batch fans out across the engine, and every resulting
//! stream record is serialized as a wire-ready [`ZipLinePayload`] through a
//! single reused scratch buffer ([`ZipLinePayload::encode_into`]) before
//! being handed to the caller's sink. The shape follows the
//! `CompressedStream`/`compress_chunk` idiom of the atsc/brro-compressor
//! exemplar: push records, then `finish()` to flush the remainder (including
//! a verbatim tail) and collect the summary.
//!
//! The emitted payload sequence decodes through
//! [`EngineDecompressor::restore_payload_into`] (configured with the same
//! shard count) back to the exact input bytes.
//!
//! # Live decoder sync
//!
//! [`EngineStream::with_control_sink`] additionally streams the engine's
//! [`DictionaryUpdate`] events, *interleaved* with the data payloads: at
//! every batch boundary the engine's journal is drained into a
//! [`DictionaryDelta`](crate::DictionaryDelta) and each update is handed to
//! the control sink immediately before the record at whose position it
//! happened. A control plane that serializes each update onto the same
//! in-order channel as the payloads therefore guarantees that every
//! compressed payload is preceded on the wire by the install traffic that
//! makes it decodable — even when the dictionary churns past capacity and
//! recycles identifiers (the regime a one-shot post-hoc snapshot cannot
//! express).

use crate::engine::CompressionEngine;
use crate::shard::DictionaryUpdate;
use zipline_gd::codec::Record;
use zipline_gd::error::Result;
use zipline_gd::packet::{PacketType, ZipLinePayload};
use zipline_traces::ChunkWorkload;

/// Totals accumulated by an [`EngineStream`], returned by
/// [`EngineStream::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Record bytes pushed into the stream.
    pub bytes_in: u64,
    /// Wire payloads emitted to the sink.
    pub payloads_emitted: u64,
    /// Total wire bytes emitted to the sink.
    pub wire_bytes: u64,
    /// Payloads emitted in compressed (type 3) form.
    pub compressed_payloads: u64,
    /// Dictionary updates handed to the control sink (0 without live sync).
    pub control_updates: u64,
}

/// Streaming front-end over a [`CompressionEngine`]; see the module docs.
pub struct EngineStream<'e, F: FnMut(PacketType, &[u8]), G = fn(&DictionaryUpdate)>
where
    G: FnMut(&DictionaryUpdate),
{
    engine: &'e mut CompressionEngine,
    sink: F,
    /// Live-sync control sink, fed each dictionary update in wire order.
    control_sink: Option<G>,
    /// Bytes pushed but not yet compressed (always shorter than a batch).
    buffer: Vec<u8>,
    /// Flush threshold in bytes (a whole number of chunks).
    batch_bytes: usize,
    /// Reused wire serialization buffer — the "one scratch buffer per
    /// worker" of the zero-copy payload path.
    wire_scratch: Vec<u8>,
    summary: StreamSummary,
}

impl<'e, F: FnMut(PacketType, &[u8])> EngineStream<'e, F> {
    /// Creates a stream that flushes through `engine` every `batch_chunks`
    /// chunks, emitting each wire payload to `sink` as
    /// `(packet type, payload bytes)`.
    pub fn new(engine: &'e mut CompressionEngine, batch_chunks: usize, sink: F) -> Self {
        Self::with_control_sink(engine, batch_chunks, sink, None)
    }
}

impl<'e, F: FnMut(PacketType, &[u8]), G: FnMut(&DictionaryUpdate)> EngineStream<'e, F, G> {
    /// Creates a stream with an optional live-sync control sink. When
    /// `control_sink` is `Some`, dictionary journaling is enabled on the
    /// engine and every install/evict event is handed to the sink interleaved
    /// with the payloads, in the order a decoder must apply them (each update
    /// strictly before the payload at whose position it happened).
    pub fn with_control_sink(
        engine: &'e mut CompressionEngine,
        batch_chunks: usize,
        sink: F,
        control_sink: Option<G>,
    ) -> Self {
        let chunk_bytes = engine.config().gd.chunk_bytes;
        if control_sink.is_some() {
            engine.enable_live_sync();
        }
        Self {
            engine,
            sink,
            control_sink,
            buffer: Vec::new(),
            batch_bytes: batch_chunks.max(1) * chunk_bytes,
            wire_scratch: Vec::new(),
            summary: StreamSummary::default(),
        }
    }

    /// Appends one record (any number of bytes) to the stream, flushing a
    /// batch through the engine whenever enough chunks have accumulated.
    pub fn push_record(&mut self, bytes: &[u8]) -> Result<()> {
        self.summary.bytes_in += bytes.len() as u64;
        // Fill the buffer up to one batch at a time, so a record larger than
        // the batch streams through batch-sized engine calls instead of
        // being fully buffered and compressed in one go — peak memory stays
        // proportional to the batch size, not the record size.
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = self.batch_bytes - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.batch_bytes {
                self.flush_whole_chunks()?;
            }
        }
        Ok(())
    }

    /// Feeds every chunk of a workload generator through the stream.
    pub fn consume_workload(&mut self, workload: &dyn ChunkWorkload) -> Result<()> {
        for chunk in workload.chunks() {
            self.push_record(&chunk)?;
        }
        Ok(())
    }

    /// Compresses and emits every whole buffered chunk, keeping the
    /// remainder buffered.
    fn flush_whole_chunks(&mut self) -> Result<()> {
        let chunk_bytes = self.engine.config().gd.chunk_bytes;
        let whole = (self.buffer.len() / chunk_bytes) * chunk_bytes;
        if whole == 0 {
            return Ok(());
        }
        let batch = self.engine.compress_batch(&self.buffer[..whole])?;
        self.emit_batch(batch.records)?;
        self.buffer.drain(..whole);
        Ok(())
    }

    /// Emits one compressed batch: drains the engine's dictionary delta (when
    /// live sync is on) and interleaves its updates with the serialized
    /// records, each update strictly before the record at whose position it
    /// happened.
    fn emit_batch(&mut self, records: Vec<Record>) -> Result<()> {
        // Drain the journal even when no sink consumes it, so a stream
        // without live sync on a journaling engine cannot leak stale events
        // into a later batch's delta.
        let updates = if self.engine.live_sync_enabled() {
            self.engine.take_delta().updates
        } else {
            Vec::new()
        };
        let mut next_update = updates.into_iter().peekable();
        for (at, record) in records.into_iter().enumerate() {
            if let Some(control_sink) = &mut self.control_sink {
                while next_update.peek().is_some_and(|u| u.at <= at as u64) {
                    let update = next_update.next().expect("peeked");
                    self.summary.control_updates += 1;
                    control_sink(&update);
                }
            }
            self.emit_record(record)?;
        }
        // Every update's position lies within the batch, so this drain is
        // normally empty; it keeps the delta fully flushed regardless.
        if let Some(control_sink) = &mut self.control_sink {
            for update in next_update {
                self.summary.control_updates += 1;
                control_sink(&update);
            }
        }
        Ok(())
    }

    /// Serializes one record as a wire payload through the reused scratch.
    fn emit_record(&mut self, record: Record) -> Result<()> {
        let gd = self.engine.config().gd;
        let payload = match record {
            Record::NewBasis {
                extra,
                deviation,
                basis,
            } => ZipLinePayload::Uncompressed {
                deviation,
                extra,
                basis,
            },
            Record::Ref {
                extra,
                deviation,
                id,
            } => ZipLinePayload::Compressed {
                deviation,
                extra,
                id,
            },
            Record::RawTail { bytes } => ZipLinePayload::Raw(bytes),
        };
        payload.encode_into(&gd, &mut self.wire_scratch)?;
        let packet_type = payload.packet_type();
        if packet_type == PacketType::Compressed {
            self.summary.compressed_payloads += 1;
        }
        self.summary.payloads_emitted += 1;
        self.summary.wire_bytes += self.wire_scratch.len() as u64;
        (self.sink)(packet_type, &self.wire_scratch);
        Ok(())
    }

    /// Flushes everything still buffered (a trailing partial chunk is
    /// emitted verbatim as a type 1 payload) and returns the stream totals.
    pub fn finish(mut self) -> Result<StreamSummary> {
        if !self.buffer.is_empty() {
            let batch = self
                .engine
                .compress_batch(&std::mem::take(&mut self.buffer))?;
            self.emit_batch(batch.records)?;
        }
        Ok(self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, EngineDecompressor, SpawnPolicy};
    use zipline_gd::config::GdConfig;

    fn test_config() -> EngineConfig {
        EngineConfig {
            gd: GdConfig::paper_default(),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        }
    }

    #[test]
    fn stream_emits_payloads_that_restore_to_the_input() {
        let config = test_config();
        let mut engine = CompressionEngine::new(config).unwrap();
        let mut emitted: Vec<(PacketType, Vec<u8>)> = Vec::new();
        let mut stream = EngineStream::new(&mut engine, 16, |pt, bytes| {
            emitted.push((pt, bytes.to_vec()));
        });

        let mut input = Vec::new();
        for i in 0..150u32 {
            let mut record = [0u8; 32];
            record[0] = (i % 4) as u8;
            record[20] = 0xBE;
            stream.push_record(&record).unwrap();
            input.extend_from_slice(&record);
        }
        // A ragged final record exercises the verbatim tail.
        stream.push_record(&[1, 2, 3]).unwrap();
        input.extend_from_slice(&[1, 2, 3]);
        let summary = stream.finish().unwrap();

        assert_eq!(summary.bytes_in, input.len() as u64);
        assert_eq!(summary.payloads_emitted, emitted.len() as u64);
        assert_eq!(
            summary.wire_bytes,
            emitted.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        );
        assert!(summary.compressed_payloads > 140, "most chunks deduplicate");

        let mut dec = EngineDecompressor::new(&config).unwrap();
        let mut restored = Vec::new();
        for (pt, bytes) in &emitted {
            dec.restore_payload_into(*pt, bytes, &mut restored).unwrap();
        }
        assert_eq!(restored, input);
    }

    #[test]
    fn plain_stream_on_a_journaling_engine_drains_stale_updates() {
        let config = test_config();
        let mut engine = CompressionEngine::new(config).unwrap();
        engine.enable_live_sync();
        // A stream without a control sink must not leave the journal to leak
        // into a later live-synced stream's delta.
        {
            let mut stream = EngineStream::new(&mut engine, 4, |_, _| {});
            stream.push_record(&[7u8; 32 * 6]).unwrap();
            let summary = stream.finish().unwrap();
            assert_eq!(summary.control_updates, 0);
        }
        let mut updates = Vec::new();
        {
            let mut stream = EngineStream::with_control_sink(
                &mut engine,
                4,
                |_, _| {},
                Some(|u: &super::DictionaryUpdate| updates.push(u.clone())),
            );
            // The same basis again: known, so the live stream journals
            // nothing new — stale events from the first stream must be gone.
            stream.push_record(&[7u8; 32 * 2]).unwrap();
            stream.finish().unwrap();
        }
        assert!(updates.is_empty(), "no stale updates leak across streams");
    }

    #[test]
    fn small_batches_and_large_records_flush_incrementally() {
        let config = test_config();
        let mut engine = CompressionEngine::new(config).unwrap();
        let mut count = 0usize;
        {
            let mut stream = EngineStream::new(&mut engine, 1, |_, _| count += 1);
            // One push covering many chunks flushes as many batches as needed.
            stream.push_record(&[0u8; 32 * 10]).unwrap();
            stream.finish().unwrap();
        }
        assert_eq!(count, 10);
        // The engine keeps its dictionary across streams.
        assert_eq!(engine.stats().bases_learned, 1);
    }
}
