//! The streaming pipeline API: records in, wire-ready payloads out.
//!
//! [`EngineStream`] adapts the batch-oriented [`CompressionEngine`] to
//! record-at-a-time producers such as the `zipline-traces` workload
//! iterators: records are buffered until a batch's worth of chunks is
//! available, the batch fans out across the engine, and every resulting
//! stream record is serialized as a wire-ready [`ZipLinePayload`] through a
//! single reused scratch buffer ([`ZipLinePayload::encode_into`]) before
//! being handed to the caller's sink. The shape follows the
//! `CompressedStream`/`compress_chunk` idiom of the atsc/brro-compressor
//! exemplar: push records, then `finish()` to flush the remainder (including
//! a verbatim tail) and collect the summary.
//!
//! The emitted payload sequence decodes through
//! [`EngineDecompressor::restore_payload_into`] (configured with the same
//! shard count) back to the exact input bytes.

use crate::engine::CompressionEngine;
use zipline_gd::codec::Record;
use zipline_gd::error::Result;
use zipline_gd::packet::{PacketType, ZipLinePayload};
use zipline_traces::ChunkWorkload;

/// Totals accumulated by an [`EngineStream`], returned by
/// [`EngineStream::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Record bytes pushed into the stream.
    pub bytes_in: u64,
    /// Wire payloads emitted to the sink.
    pub payloads_emitted: u64,
    /// Total wire bytes emitted to the sink.
    pub wire_bytes: u64,
    /// Payloads emitted in compressed (type 3) form.
    pub compressed_payloads: u64,
}

/// Streaming front-end over a [`CompressionEngine`]; see the module docs.
pub struct EngineStream<'e, F: FnMut(PacketType, &[u8])> {
    engine: &'e mut CompressionEngine,
    sink: F,
    /// Bytes pushed but not yet compressed (always shorter than a batch).
    buffer: Vec<u8>,
    /// Flush threshold in bytes (a whole number of chunks).
    batch_bytes: usize,
    /// Reused wire serialization buffer — the "one scratch buffer per
    /// worker" of the zero-copy payload path.
    wire_scratch: Vec<u8>,
    summary: StreamSummary,
}

impl<'e, F: FnMut(PacketType, &[u8])> EngineStream<'e, F> {
    /// Creates a stream that flushes through `engine` every `batch_chunks`
    /// chunks, emitting each wire payload to `sink` as
    /// `(packet type, payload bytes)`.
    pub fn new(engine: &'e mut CompressionEngine, batch_chunks: usize, sink: F) -> Self {
        let chunk_bytes = engine.config().gd.chunk_bytes;
        Self {
            engine,
            sink,
            buffer: Vec::new(),
            batch_bytes: batch_chunks.max(1) * chunk_bytes,
            wire_scratch: Vec::new(),
            summary: StreamSummary::default(),
        }
    }

    /// Appends one record (any number of bytes) to the stream, flushing a
    /// batch through the engine whenever enough chunks have accumulated.
    pub fn push_record(&mut self, bytes: &[u8]) -> Result<()> {
        self.summary.bytes_in += bytes.len() as u64;
        // Fill the buffer up to one batch at a time, so a record larger than
        // the batch streams through batch-sized engine calls instead of
        // being fully buffered and compressed in one go — peak memory stays
        // proportional to the batch size, not the record size.
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = self.batch_bytes - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() >= self.batch_bytes {
                self.flush_whole_chunks()?;
            }
        }
        Ok(())
    }

    /// Feeds every chunk of a workload generator through the stream.
    pub fn consume_workload(&mut self, workload: &dyn ChunkWorkload) -> Result<()> {
        for chunk in workload.chunks() {
            self.push_record(&chunk)?;
        }
        Ok(())
    }

    /// Compresses and emits every whole buffered chunk, keeping the
    /// remainder buffered.
    fn flush_whole_chunks(&mut self) -> Result<()> {
        let chunk_bytes = self.engine.config().gd.chunk_bytes;
        let whole = (self.buffer.len() / chunk_bytes) * chunk_bytes;
        if whole == 0 {
            return Ok(());
        }
        let batch = self.engine.compress_batch(&self.buffer[..whole])?;
        self.emit_records(batch.records)?;
        self.buffer.drain(..whole);
        Ok(())
    }

    /// Serializes records as wire payloads through the reused scratch.
    fn emit_records(&mut self, records: Vec<Record>) -> Result<()> {
        let gd = self.engine.config().gd;
        for record in records {
            let payload = match record {
                Record::NewBasis {
                    extra,
                    deviation,
                    basis,
                } => ZipLinePayload::Uncompressed {
                    deviation,
                    extra,
                    basis,
                },
                Record::Ref {
                    extra,
                    deviation,
                    id,
                } => ZipLinePayload::Compressed {
                    deviation,
                    extra,
                    id,
                },
                Record::RawTail { bytes } => ZipLinePayload::Raw(bytes),
            };
            payload.encode_into(&gd, &mut self.wire_scratch)?;
            let packet_type = payload.packet_type();
            if packet_type == PacketType::Compressed {
                self.summary.compressed_payloads += 1;
            }
            self.summary.payloads_emitted += 1;
            self.summary.wire_bytes += self.wire_scratch.len() as u64;
            (self.sink)(packet_type, &self.wire_scratch);
        }
        Ok(())
    }

    /// Flushes everything still buffered (a trailing partial chunk is
    /// emitted verbatim as a type 1 payload) and returns the stream totals.
    pub fn finish(mut self) -> Result<StreamSummary> {
        if !self.buffer.is_empty() {
            let batch = self
                .engine
                .compress_batch(&std::mem::take(&mut self.buffer))?;
            self.emit_records(batch.records)?;
        }
        Ok(self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, EngineDecompressor, SpawnPolicy};
    use zipline_gd::config::GdConfig;

    fn test_config() -> EngineConfig {
        EngineConfig {
            gd: GdConfig::paper_default(),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        }
    }

    #[test]
    fn stream_emits_payloads_that_restore_to_the_input() {
        let config = test_config();
        let mut engine = CompressionEngine::new(config).unwrap();
        let mut emitted: Vec<(PacketType, Vec<u8>)> = Vec::new();
        let mut stream = EngineStream::new(&mut engine, 16, |pt, bytes| {
            emitted.push((pt, bytes.to_vec()));
        });

        let mut input = Vec::new();
        for i in 0..150u32 {
            let mut record = [0u8; 32];
            record[0] = (i % 4) as u8;
            record[20] = 0xBE;
            stream.push_record(&record).unwrap();
            input.extend_from_slice(&record);
        }
        // A ragged final record exercises the verbatim tail.
        stream.push_record(&[1, 2, 3]).unwrap();
        input.extend_from_slice(&[1, 2, 3]);
        let summary = stream.finish().unwrap();

        assert_eq!(summary.bytes_in, input.len() as u64);
        assert_eq!(summary.payloads_emitted, emitted.len() as u64);
        assert_eq!(
            summary.wire_bytes,
            emitted.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        );
        assert!(summary.compressed_payloads > 140, "most chunks deduplicate");

        let mut dec = EngineDecompressor::new(&config).unwrap();
        let mut restored = Vec::new();
        for (pt, bytes) in &emitted {
            dec.restore_payload_into(*pt, bytes, &mut restored).unwrap();
        }
        assert_eq!(restored, input);
    }

    #[test]
    fn small_batches_and_large_records_flush_incrementally() {
        let config = test_config();
        let mut engine = CompressionEngine::new(config).unwrap();
        let mut count = 0usize;
        {
            let mut stream = EngineStream::new(&mut engine, 1, |_, _| count += 1);
            // One push covering many chunks flushes as many batches as needed.
            stream.push_record(&[0u8; 32 * 10]).unwrap();
            stream.finish().unwrap();
        }
        assert_eq!(count, 10);
        // The engine keeps its dictionary across streams.
        assert_eq!(engine.stats().bases_learned, 1);
    }
}
