//! One validated front door for engine construction.
//!
//! [`EngineBuilder`] replaces the knob surface that accreted across PRs 2
//! and 3 — `EngineConfig` field poking, `enable_live_sync` /
//! `disable_live_sync` on the engine, `enable_journal` on the dictionary —
//! with a single fluent builder that checks the whole shape **once** at
//! [`build`](EngineBuilder::build):
//!
//! ```
//! use zipline_engine::{DeflateBackend, EngineBuilder, SpawnPolicy};
//!
//! // The GD default: paper parameters, 4 shards, 2 workers, live sync on.
//! let mut engine = EngineBuilder::new()
//!     .shards(4)
//!     .workers(2)
//!     .spawn(SpawnPolicy::Auto)
//!     .live_sync(true)
//!     .build()
//!     .unwrap();
//! assert!(engine.live_sync_enabled());
//!
//! // The same pipeline over gzip: swap the backend, keep the shape.
//! let mut gzip_engine = EngineBuilder::new()
//!     .backend(DeflateBackend::default())
//!     .build()
//!     .unwrap();
//! let member = gzip_engine.compress_batch(&[7u8; 4096]).unwrap();
//! assert!(member.len() < 4096);
//! ```
//!
//! The builder also constructs the mirrored decoder
//! ([`build_decompressor`](EngineBuilder::build_decompressor)), fixing the
//! historical asymmetry where `CompressionEngine::new` took its
//! configuration by value but `EngineDecompressor::new` by reference — both
//! are now by-value conveniences, and the builder is the canonical path.

use std::path::PathBuf;

use crate::backend::CompressionBackend;
use crate::engine::{CompressionEngine, EngineConfig, EngineDecompressor, GdBackend, SpawnPolicy};
use crate::error::{EngineError, Result as EngineResult};
use crate::persist::{EngineStore, PersistError, StoreOptions, SyncPolicy};
use crate::pipelined::PipelineConfig;
use zipline_gd::config::GdConfig;
use zipline_gd::error::Result;

/// Fluent builder for [`CompressionEngine`] / [`EngineDecompressor`] pairs;
/// see the module docs.
#[derive(Debug, Clone)]
pub struct EngineBuilder<B: CompressionBackend = GdBackend> {
    config: EngineConfig,
    live_sync: bool,
    /// Ingest pipeline depth for [`PipelinedStream`](crate::PipelinedStream);
    /// `None` keeps the engine synchronous-only.
    pipeline_depth: Option<usize>,
    /// Durable store directory; `None` keeps the engine in-memory only.
    durable: Option<PathBuf>,
    /// Store tuning, applied when [`Self::durable`] is set.
    store_options: StoreOptions,
    /// Explicit backend instance; when `None`, `build()` constructs one from
    /// the configuration via [`CompressionBackend::from_engine_config`].
    backend: Option<B>,
}

impl EngineBuilder<GdBackend> {
    /// Starts from [`EngineConfig::paper_default`] with the GD backend and
    /// live sync off.
    pub fn new() -> Self {
        Self {
            config: EngineConfig::paper_default(),
            live_sync: false,
            pipeline_depth: None,
            durable: None,
            store_options: StoreOptions::default(),
            backend: None,
        }
    }

    /// Starts from the 1-shard/1-worker/inline shape that reproduces
    /// `GdCompressor::compress_batch` bit for bit.
    pub fn single_threaded(gd: GdConfig) -> Self {
        Self::new().config(EngineConfig::single_threaded(gd))
    }
}

impl Default for EngineBuilder<GdBackend> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: CompressionBackend> EngineBuilder<B> {
    /// Replaces the whole engine configuration at once.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the GD parameters (chunk size, Hamming `m`, identifier width).
    pub fn gd(mut self, gd: GdConfig) -> Self {
        self.config.gd = gd;
        self
    }

    /// Sets the dictionary shard count (a power of two dividing
    /// `2^id_bits`; checked at [`build`](Self::build)).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the logical worker count (also the partition count of a batch).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the thread spawn policy.
    pub fn spawn(mut self, spawn: SpawnPolicy) -> Self {
        self.config.spawn = spawn;
        self
    }

    /// Turns live-sync journaling on for the built engine (no-op for
    /// delta-less backends such as deflate and passthrough).
    pub fn live_sync(mut self, enabled: bool) -> Self {
        self.live_sync = enabled;
        self
    }

    /// Opts the built engine in to pipelined ingest
    /// ([`PipelinedStream`](crate::PipelinedStream)): `depth` is the bounded
    /// channel capacity — filled batches allowed in flight between the
    /// ingest thread and the engine worker before `push_record` blocks.
    /// Depth 1 is classic double buffering. Validated at
    /// [`build`](Self::build) (`1..=`[`MAX_PIPELINE_DEPTH`]); whether a
    /// worker thread actually spawns follows the engine's
    /// [`spawn`](Self::spawn) policy, so a 1-core host under
    /// [`SpawnPolicy::Auto`] degrades to inline execution with identical
    /// output.
    ///
    /// [`MAX_PIPELINE_DEPTH`]: crate::pipelined::MAX_PIPELINE_DEPTH
    pub fn pipelined(mut self, depth: usize) -> Self {
        self.pipeline_depth = Some(depth);
        self
    }

    /// Makes the built engine durable: an [`EngineStore`] under `dir` is
    /// opened (warm restart) or created (fresh start) at
    /// [`build`](Self::build), and every stream batch is committed to it
    /// before emission. On a warm restart the backend's dictionary is
    /// rehydrated from the store — no cold-start snapshot resync — and
    /// the recovery data is available once via
    /// [`CompressionEngine::take_warm_start`]. For backends with shared
    /// decoder state, durability forces live sync on (the store journals
    /// the same deltas the control plane consumes).
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable = Some(dir.into());
        self
    }

    /// Sets the durable store's checkpoint cadence: a full-state
    /// checkpoint every `batches` commits. The default of 1 makes every
    /// commit bit-exactly recoverable; larger cadences trade checkpoint
    /// bytes for delta-fold (*consistent*) recovery. No effect without
    /// [`durable`](Self::durable).
    pub fn checkpoint_cadence(mut self, batches: u64) -> Self {
        self.store_options.checkpoint_cadence = batches.max(1);
        self
    }

    /// Sets the durable store's [`SyncPolicy`]: how far each commit's
    /// durability reaches before `commit_batch` returns. The default,
    /// [`SyncPolicy::Flush`], covers process crash; [`SyncPolicy::Data`]
    /// adds `fdatasync` at the two commit flush points and covers power
    /// loss. No effect without [`durable`](Self::durable).
    pub fn sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.store_options.sync = policy;
        self
    }

    /// Swaps in an explicit backend instance (e.g.
    /// [`DeflateBackend::new`](crate::DeflateBackend::new) with a chosen
    /// level). Without this call, `build()` derives the backend from the
    /// configuration.
    ///
    /// The instance is used **as-is**: the configuration knobs
    /// ([`gd`](Self::gd)/[`shards`](Self::shards)/[`workers`](Self::workers)/
    /// [`spawn`](Self::spawn)) are still validated at `build()` but do not
    /// reshape an already-built backend, so set knobs *or* pass a
    /// pre-configured backend — not conflicting values of both. Deriving
    /// both halves from one builder keeps the pair consistent either way:
    /// [`build_decompressor`](Self::build_decompressor) mirrors the explicit
    /// instance, not the knobs.
    pub fn backend<B2: CompressionBackend>(self, backend: B2) -> EngineBuilder<B2> {
        EngineBuilder {
            config: self.config,
            live_sync: self.live_sync,
            pipeline_depth: self.pipeline_depth,
            durable: self.durable,
            store_options: self.store_options,
            backend: Some(backend),
        }
    }

    /// Validates the configuration once and builds the engine. With
    /// [`durable`](Self::durable) set, this is also where the store is
    /// opened or created and a warm restart rehydrates the backend.
    pub fn build(self) -> EngineResult<CompressionEngine<B>> {
        self.config.validate()?;
        let pipeline = self
            .pipeline_depth
            .map(|depth| {
                let pipeline = PipelineConfig {
                    depth,
                    spawn: self.config.spawn,
                };
                pipeline.validate().map(|()| pipeline)
            })
            .transpose()?;
        let mut backend = match self.backend {
            Some(backend) => backend,
            None => B::from_engine_config(&self.config)?,
        };
        // Durability rides on the same journal live sync drains, so a
        // durable stateful backend always journals.
        backend.set_live_sync(
            self.live_sync || (self.durable.is_some() && backend.supports_live_sync()),
        );

        let durable = self
            .durable
            .map(|dir| {
                let shards = self.config.shards;
                let per_shard = self.config.gd.dictionary_capacity() / shards;
                let (mut store, warm) = EngineStore::open_or_create(&dir, shards, per_shard)?;
                if store.shard_count() != shards || store.shard_capacity() != per_shard {
                    return Err(PersistError::Corrupt(format!(
                        "store at {} was created for {} shards of {}, engine wants {} of {}",
                        dir.display(),
                        store.shard_count(),
                        store.shard_capacity(),
                        shards,
                        per_shard,
                    )));
                }
                store.set_options(self.store_options);
                Ok((store, warm))
            })
            .transpose()?;

        let mut engine = CompressionEngine::from_backend(backend);
        engine.set_pipeline(pipeline);
        if let Some((store, warm)) = durable {
            if let Some(warm) = warm {
                if engine.backend().supports_live_sync() {
                    engine
                        .backend_mut()
                        .restore_dictionary_state(&warm.dictionary)
                        .map_err(EngineError::Gd)?;
                }
                engine.set_warm_start(warm);
            }
            engine.attach_store(store);
        }
        Ok(engine)
    }

    /// Validates the configuration once and builds the mirrored
    /// decompressor (worker count and spawn policy are irrelevant to
    /// decoding). Mirrors the explicit backend instance when one was set,
    /// and otherwise goes straight to the decoder via
    /// [`CompressionBackend::decompressor_for`] — no compression-side state
    /// is built and discarded.
    pub fn build_decompressor(&self) -> Result<EngineDecompressor<B>> {
        self.config.validate()?;
        let inner = match &self.backend {
            Some(backend) => backend.decompressor()?,
            None => B::decompressor_for(&self.config)?,
        };
        Ok(EngineDecompressor::from_backend_decompressor(inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PassthroughBackend;

    #[test]
    fn build_validates_once_and_rejects_bad_shapes() {
        assert!(EngineBuilder::new().shards(3).build().is_err());
        assert!(EngineBuilder::new().workers(0).build().is_err());
        assert!(EngineBuilder::new().shards(3).build_decompressor().is_err());
        // A bad GD+shard shape is rejected even for backends that ignore it
        // — the builder validates the configuration, not the backend.
        assert!(EngineBuilder::new()
            .shards(3)
            .backend(PassthroughBackend::new())
            .build()
            .is_err());
    }

    #[test]
    fn builder_pair_roundtrips() {
        let builder = EngineBuilder::new().shards(4).workers(2);
        let mut dec = builder.build_decompressor().unwrap();
        let mut engine = builder.build().unwrap();
        let data = vec![9u8; 32 * 20];
        let stream = engine.compress_batch(&data).unwrap();
        assert_eq!(dec.decompress_batch(&stream).unwrap(), data);
    }

    #[test]
    fn pipelined_knob_is_validated_and_carried() {
        assert!(EngineBuilder::new().pipelined(0).build().is_err());
        assert!(EngineBuilder::new().pipelined(1 << 20).build().is_err());
        let engine = EngineBuilder::new()
            .spawn(SpawnPolicy::Inline)
            .pipelined(3)
            .build()
            .unwrap();
        let pipeline = engine.pipeline().expect("pipeline configured");
        assert_eq!(pipeline.depth, 3);
        assert_eq!(pipeline.spawn, SpawnPolicy::Inline);
        // Without the knob the engine stays synchronous-only.
        assert!(EngineBuilder::new().build().unwrap().pipeline().is_none());
        // The knob survives a backend swap.
        let engine = EngineBuilder::new()
            .pipelined(2)
            .backend(PassthroughBackend::new())
            .build()
            .unwrap();
        assert_eq!(engine.pipeline().unwrap().depth, 2);
    }

    #[test]
    fn live_sync_is_set_at_build() {
        let engine = EngineBuilder::new().live_sync(true).build().unwrap();
        assert!(engine.live_sync_enabled());
        let engine = EngineBuilder::new().build().unwrap();
        assert!(!engine.live_sync_enabled());
        // Delta-less backends silently ignore the knob.
        let engine = EngineBuilder::new()
            .backend(PassthroughBackend::new())
            .live_sync(true)
            .build()
            .unwrap();
        assert!(!engine.live_sync_enabled());
    }
}
