//! Durable shard store + journaled frame log: the engine's crash-recovery
//! layer.
//!
//! A [`ShardedDictionary`] is long-lived shared state — the whole point of
//! GD is that the `identifier → basis` table amortizes over hours of
//! traffic — yet before this module it lived only in memory: any engine
//! restart forced a cold-start snapshot resync, and an interrupted stream
//! was unrecoverable mid-flight. [`EngineStore`] makes the host path
//! restartable by journaling both sides of the engine to disk:
//!
//! * **shard store** (`shards.zsl`) — an append-only log of the
//!   [`DictionaryUpdate`] events every batch produces (the same journal
//!   live sync drains via `take_delta`), interleaved with periodic
//!   compacted **checkpoints** carrying a full [`DictionaryState`];
//! * **frame log** (`frames.zfl`) — every wire payload and interleaved
//!   control update the stream emitted, delimited by batch-boundary
//!   **commit markers**.
//!
//! # On-disk format
//!
//! Both files are sequences of self-checking records:
//!
//! ```text
//! record   := len:u32le  payload  crc:u32le
//! payload  := kind:u8  body
//! ```
//!
//! `len` counts the payload bytes and `crc` is CRC-32 (polynomial
//! `0x04C11DB7`, the [`CrcEngine`] convention) over the payload, so a
//! torn, truncated or bit-flipped tail never parses as a valid record.
//! All integers are little-endian; bit vectors serialize as
//! `bit_len:u32le` plus their byte-padded words.
//!
//! | file         | kinds                                                   |
//! |--------------|---------------------------------------------------------|
//! | `shards.zsl` | `0x01` header (`"ZLSS"`, version, shard shape) · `0x02` delta (batch, updates) · `0x03` checkpoint (batch, full state) |
//! | `frames.zfl` | `0x11` header (`"ZLFL"`, version) · `0x12` frame (packet type, bytes) · `0x13` control (update) · `0x14` commit (batch, cumulative bytes in / frames) · `0x15` tagged frame (codec id, packet type, bytes) |
//!
//! A `0x12` frame belongs to the stream's fixed backend; a `0x15` frame
//! carries an explicit per-batch [`CodecId`] tag so a self-describing
//! (multi-codec) stream replays through the right decoder after restart.
//! An unknown codec id fails loudly as [`PersistError::Corrupt`].
//!
//! # Commit protocol
//!
//! [`EngineStore::commit_batch`] makes one batch durable in write order:
//! frame + control records → shard delta (and checkpoint when the cadence
//! is due) → shard flush → commit marker → frame flush. The commit marker
//! is the *only* thing that makes a batch count: everything after the last
//! valid commit is, by definition, an interrupted batch and is truncated
//! away on open. A delta record is written for **every** batch (even an
//! empty one), so recovery can prove coverage of each committed batch.
//!
//! # Recovery invariants
//!
//! [`EngineStore::open`] scans both logs, stops each scan at the first
//! record that fails its length or CRC check (the torn tail), and then:
//!
//! 1. the last valid commit marker defines the durable boundary `C`;
//!    frame/control records after it are truncated (the interrupted
//!    batch re-runs on resume);
//! 2. the dictionary is rebuilt from the newest checkpoint with
//!    `batch <= C`, then the deltas for `checkpoint+1 ..= C` are folded in
//!    via [`ShardedDictionary::apply_update`]; with the default
//!    checkpoint cadence of 1 the checkpoint *is* batch `C` and the
//!    restored dictionary's future behaviour is bit-identical (recency
//!    order included); a folded restore is *consistent* (the
//!    `identifier → basis` mapping is exact, recency is approximated) —
//!    [`WarmStart::exact`] reports which one you got;
//! 3. anything structurally impossible fails **loudly** as
//!    [`PersistError::Corrupt`] instead of silently misrestoring:
//!    non-contiguous batch numbers (a duplicated or reordered tail
//!    segment), a shard log that cannot cover a committed batch (a
//!    mid-log bit flip upstream of valid commits), a shard log more than
//!    one batch ahead of the frame log (a frame log that lost commits
//!    mid-file), or a checkpoint whose state fails the dictionary's own
//!    structural validation.
//!
//! # Compaction
//!
//! [`EngineStore::compact`] retires both logs at a quiescent point (e.g.
//! stream finish): the frame log is rewritten as its header plus one
//! **baseline** commit carrying the cumulative counters (its journal
//! entries are already durable downstream, so replaying them on restart
//! would duplicate wire frames), and the shard log as its header plus one
//! checkpoint of the final state. Each rewrite is a temp-file-plus-rename;
//! the frame log goes first, and recovery accepts a first commit with
//! `batch > 1` as a baseline only when no journal records precede it, so
//! a crash between the two renames still restores correctly from the old
//! shard log.
//!
//! Durability defaults to process-crash granularity: records reach the OS
//! in commit order, so killing the writer at any byte offset leaves a
//! recoverable prefix. Opting into [`SyncPolicy::Data`] (via
//! [`StoreOptions::sync`] or `EngineBuilder::sync_policy`) adds `fdatasync`
//! at the two flush points — power-loss durability with no format change.

use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::registry::{codec_from_u8, CodecId};
use crate::shard::{
    DictionaryState, DictionaryUpdate, ShardState, ShardStats, ShardedDictionary, UpdateOp,
};
use zipline_gd::dictionary::{BasisDictionaryState, DictionaryEntryState};
use zipline_gd::packet::PacketType;
use zipline_gd::{BitVec, CrcEngine, CrcSpec};

/// File name of the dictionary event log + checkpoints.
const SHARD_LOG: &str = "shards.zsl";
/// File name of the wire frame journal.
const FRAME_LOG: &str = "frames.zfl";
const SHARD_MAGIC: &[u8; 4] = b"ZLSS";
const FRAME_MAGIC: &[u8; 4] = b"ZLFL";
const FORMAT_VERSION: u16 = 1;
/// Upper bound on one record's payload; anything larger is treated as a
/// torn length field.
const MAX_RECORD_BYTES: usize = 1 << 28;

const KIND_SHARD_HEADER: u8 = 0x01;
const KIND_DELTA: u8 = 0x02;
const KIND_CHECKPOINT: u8 = 0x03;
const KIND_FRAME_HEADER: u8 = 0x11;
const KIND_FRAME: u8 = 0x12;
const KIND_CONTROL: u8 = 0x13;
const KIND_COMMIT: u8 = 0x14;
const KIND_FRAME_TAGGED: u8 = 0x15;

/// The record CRC: CRC-32 in the crate's `B(x) mod g(x)` convention.
fn record_crc() -> CrcEngine {
    // zipline-lint: allow(L001): CRC-32 spec parameters are compile-time constants; construction cannot fail
    CrcEngine::new(CrcSpec::new(32, 0x04C1_1DB7).expect("CRC-32 spec is valid"))
}

/// A durability-layer failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// An OS-level I/O failure, with the operation that hit it.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The on-disk state is structurally impossible — recovery refuses to
    /// guess rather than silently misrestore.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "{context}: {source}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt(_) => None,
        }
    }
}

/// Persistence result alias.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> PersistError {
    let context = context.into();
    move |source| PersistError::Io { context, source }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Body serialization
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bitvec(buf: &mut Vec<u8>, bits: &BitVec) {
    put_u32(buf, bits.len() as u32);
    buf.extend_from_slice(&bits.to_bytes());
}

/// Bounded reader over one record body; every shortfall is a loud
/// [`PersistError::Corrupt`] naming the record being parsed.
struct BodyReader<'a> {
    data: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> BodyReader<'a> {
    fn new(data: &'a [u8], what: &'static str) -> Self {
        Self { data, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(corrupt(format!(
                "{}: body shorter than declared",
                self.what
            )));
        };
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Takes exactly `N` bytes as a fixed-size array. The length always
    /// matches because `take` returned exactly `N` bytes, so the slice
    /// pattern is irrefutable — no fallible conversion anywhere.
    fn array<const N: usize>(&mut self) -> PersistResult<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> PersistResult<u8> {
        let [b] = self.array()?;
        Ok(b)
    }

    fn u16(&mut self) -> PersistResult<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> PersistResult<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> PersistResult<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn bitvec(&mut self) -> PersistResult<BitVec> {
        let bit_len = self.u32()? as usize;
        let bytes = self.take(bit_len.div_ceil(8))?;
        let mut bits = BitVec::from_bytes(bytes);
        bits.truncate(bit_len);
        Ok(bits)
    }

    fn finish(self) -> PersistResult<()> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(corrupt(format!("{}: trailing bytes in body", self.what)))
        }
    }
}

fn packet_type_code(pt: PacketType) -> u8 {
    pt.number()
}

fn packet_type_from(code: u8, what: &'static str) -> PersistResult<PacketType> {
    match code {
        1 => Ok(PacketType::Raw),
        2 => Ok(PacketType::Uncompressed),
        3 => Ok(PacketType::Compressed),
        other => Err(corrupt(format!("{what}: unknown packet type {other}"))),
    }
}

fn put_update(buf: &mut Vec<u8>, update: &DictionaryUpdate) {
    put_u64(buf, update.seq);
    put_u64(buf, update.at);
    match &update.op {
        UpdateOp::Install { id, basis } => {
            buf.push(0);
            put_u64(buf, *id);
            put_bitvec(buf, basis);
        }
        UpdateOp::Remove { id } => {
            buf.push(1);
            put_u64(buf, *id);
        }
    }
}

fn read_update(r: &mut BodyReader<'_>) -> PersistResult<DictionaryUpdate> {
    let seq = r.u64()?;
    let at = r.u64()?;
    let op = match r.u8()? {
        0 => UpdateOp::Install {
            id: r.u64()?,
            basis: r.bitvec()?,
        },
        1 => UpdateOp::Remove { id: r.u64()? },
        other => return Err(corrupt(format!("{}: unknown update op {other}", r.what))),
    };
    Ok(DictionaryUpdate { seq, at, op })
}

fn put_state(buf: &mut Vec<u8>, state: &DictionaryState) {
    put_u32(buf, state.shard_count as u32);
    put_u32(buf, state.shard_capacity as u32);
    put_u64(buf, state.delta_seq);
    for shard in &state.shards {
        put_u64(buf, shard.clock);
        put_u64(buf, shard.stats.lookups);
        put_u64(buf, shard.stats.hits);
        put_u64(buf, shard.stats.learned);
        put_u64(buf, shard.stats.evictions);
        put_u64(buf, shard.dict.next_fresh);
        put_u64(buf, shard.dict.evictions);
        put_u64(buf, shard.dict.expirations);
        put_u32(buf, shard.dict.released.len() as u32);
        for &id in &shard.dict.released {
            put_u64(buf, id);
        }
        put_u32(buf, shard.dict.entries.len() as u32);
        for entry in &shard.dict.entries {
            put_u64(buf, entry.id);
            put_u64(buf, entry.last_used);
            put_u64(buf, entry.inserted_at);
            put_bitvec(buf, &entry.basis);
        }
    }
}

fn read_state(r: &mut BodyReader<'_>) -> PersistResult<DictionaryState> {
    let shard_count = r.u32()? as usize;
    let shard_capacity = r.u32()? as usize;
    let delta_seq = r.u64()?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let clock = r.u64()?;
        let stats = ShardStats {
            lookups: r.u64()?,
            hits: r.u64()?,
            learned: r.u64()?,
            evictions: r.u64()?,
        };
        let next_fresh = r.u64()?;
        let evictions = r.u64()?;
        let expirations = r.u64()?;
        let released_len = r.u32()? as usize;
        let mut released = Vec::with_capacity(released_len.min(1 << 20));
        for _ in 0..released_len {
            released.push(r.u64()?);
        }
        let entry_len = r.u32()? as usize;
        let mut entries = Vec::with_capacity(entry_len.min(1 << 20));
        for _ in 0..entry_len {
            entries.push(DictionaryEntryState {
                id: r.u64()?,
                last_used: r.u64()?,
                inserted_at: r.u64()?,
                basis: r.bitvec()?,
            });
        }
        shards.push(ShardState {
            clock,
            stats,
            dict: BasisDictionaryState {
                entries,
                next_fresh,
                released,
                evictions,
                expirations,
            },
        });
    }
    Ok(DictionaryState {
        shard_count,
        shard_capacity,
        delta_seq,
        shards,
    })
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// One CRC-validated record located in a scanned log.
struct RawRecord {
    kind: u8,
    body_start: usize,
    body_end: usize,
    /// Byte offset one past the record's trailing CRC.
    end: usize,
}

/// Little-endian `u32` starting at byte `at`; `None` when `data` is too
/// short — length checks and extraction in one step, no indexing.
fn read_le_u32(data: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let bytes: [u8; 4] = data.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Scans a log, returning every CRC-valid record and the byte offset of
/// the first invalid one (the torn-tail truncation point).
fn scan_log(data: &[u8], crc: &CrcEngine) -> (Vec<RawRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some(len) = read_le_u32(data, offset) {
        let len = len as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let payload_start = offset + 4;
        let Some(payload) = data.get(payload_start..payload_start + len) else {
            break;
        };
        let Some(stored) = read_le_u32(data, payload_start + len) else {
            break;
        };
        if crc.compute_bytes(payload) as u32 != stored {
            break;
        }
        let Some((&kind, _)) = payload.split_first() else {
            break;
        };
        let end = payload_start + len + 4;
        records.push(RawRecord {
            kind,
            body_start: payload_start + 1,
            body_end: payload_start + len,
            end,
        });
        offset = end;
    }
    (records, offset)
}

/// Frames `kind + body` with its length prefix and CRC and appends it.
fn append_record(
    file: &mut File,
    crc: &CrcEngine,
    payload: &mut Vec<u8>,
    kind: u8,
    body: &[u8],
    context: &str,
) -> PersistResult<()> {
    payload.clear();
    payload.reserve(body.len() + 9);
    put_u32(payload, (body.len() + 1) as u32);
    payload.push(kind);
    payload.extend_from_slice(body);
    let sum = crc.compute_bytes(&payload[4..]) as u32;
    put_u32(payload, sum);
    file.write_all(payload).map_err(io_err(context.to_string()))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// How far a commit's durability reaches before [`EngineStore::commit_batch`]
/// returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush to the OS at the two commit flush points (the default):
    /// records reach the kernel in commit order, so durability covers
    /// **process crash** — a kill at any byte offset leaves a recoverable
    /// prefix — but not power loss.
    #[default]
    Flush,
    /// Additionally `fdatasync` at the same two flush points (and on
    /// checkpoint/compaction writes, with a directory sync after each
    /// compaction rename): durability covers **power loss**. The on-disk
    /// format is unchanged; this is purely a write-barrier upgrade.
    Data,
}

/// Tuning knobs of an [`EngineStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Write a full-state checkpoint every `checkpoint_cadence` committed
    /// batches. The default of 1 makes every commit exactly recoverable
    /// (bit-identical future behaviour); larger cadences trade checkpoint
    /// bytes for delta-fold (*consistent*) recovery.
    pub checkpoint_cadence: u64,
    /// Crash-durability reach of each commit; see [`SyncPolicy`].
    pub sync: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            checkpoint_cadence: 1,
            sync: SyncPolicy::Flush,
        }
    }
}

/// One replayable entry of the durable frame journal, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommittedEntry {
    /// A wire payload the stream emitted.
    Frame {
        /// The payload's packet type.
        packet_type: PacketType,
        /// The per-batch codec tag for self-describing streams; `None`
        /// for a fixed-backend stream's untagged frames.
        codec: Option<CodecId>,
        /// The payload bytes.
        bytes: Vec<u8>,
    },
    /// An interleaved control-plane dictionary update.
    Control(DictionaryUpdate),
}

/// Everything [`EngineStore::open`] recovered: the rehydrated dictionary
/// state, the durable position, and the committed wire journal for replay.
#[derive(Debug)]
pub struct WarmStart {
    /// Full dictionary state as of batch [`Self::batches`].
    pub dictionary: DictionaryState,
    /// Number of durably committed batches.
    pub batches: u64,
    /// Cumulative input bytes consumed by those batches — the resume
    /// offset into the original input.
    pub bytes_in: u64,
    /// Cumulative wire frames committed.
    pub frames: u64,
    /// Every committed frame and control update, in emission order. A
    /// resumed run's output appended to this list is the uninterrupted
    /// stream.
    pub committed: Vec<CommittedEntry>,
    /// True when the dictionary was restored from a checkpoint taken at
    /// exactly the commit boundary (bit-identical future behaviour);
    /// false when deltas were folded in (`identifier → basis` mapping
    /// exact, recency approximated — lossless under live sync, but wire
    /// bytes may diverge from an uninterrupted run after resume).
    pub exact: bool,
}

/// The file-backed durability layer: an append-only shard store
/// (`shards.zsl`) plus a journaled frame log (`frames.zfl`) under one
/// directory. See the module docs for the format and recovery invariants.
#[derive(Debug)]
pub struct EngineStore {
    dir: PathBuf,
    shard_log: File,
    frame_log: File,
    shard_count: usize,
    shard_capacity: usize,
    options: StoreOptions,
    batches: u64,
    bytes_in: u64,
    frames: u64,
    /// Recycled body assembly buffer.
    body: Vec<u8>,
    /// Recycled framed-record buffer.
    payload: Vec<u8>,
    crc: CrcEngine,
}

impl EngineStore {
    /// Creates a fresh store under `dir` (created if missing), truncating
    /// any previous logs there.
    pub fn create(
        dir: impl AsRef<Path>,
        shard_count: usize,
        shard_capacity: usize,
    ) -> PersistResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err(format!(
            "creating store directory {}",
            dir.display()
        )))?;
        let crc = record_crc();
        let mut body = Vec::new();
        let mut payload = Vec::new();

        let mut shard_log = open_log(&dir.join(SHARD_LOG), true)?;
        body.extend_from_slice(SHARD_MAGIC);
        put_u16(&mut body, FORMAT_VERSION);
        put_u32(&mut body, shard_count as u32);
        put_u32(&mut body, shard_capacity as u32);
        append_record(
            &mut shard_log,
            &crc,
            &mut payload,
            KIND_SHARD_HEADER,
            &body,
            "writing shard log header",
        )?;

        let mut frame_log = open_log(&dir.join(FRAME_LOG), true)?;
        body.clear();
        body.extend_from_slice(FRAME_MAGIC);
        put_u16(&mut body, FORMAT_VERSION);
        append_record(
            &mut frame_log,
            &crc,
            &mut payload,
            KIND_FRAME_HEADER,
            &body,
            "writing frame log header",
        )?;

        Ok(Self {
            dir,
            shard_log,
            frame_log,
            shard_count,
            shard_capacity,
            options: StoreOptions::default(),
            batches: 0,
            bytes_in: 0,
            frames: 0,
            body,
            payload,
            crc,
        })
    }

    /// True when `dir` holds a store's log files.
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        let dir = dir.as_ref();
        dir.join(SHARD_LOG).is_file() && dir.join(FRAME_LOG).is_file()
    }

    /// Opens an existing store, recovering to the last durable batch
    /// boundary: torn tails are truncated, the dictionary is rehydrated
    /// from the newest covered checkpoint plus delta fold, and anything
    /// structurally impossible fails loudly ([`PersistError::Corrupt`])
    /// rather than silently misrestoring. Returns `None` for the warm
    /// start when the store has never committed anything.
    pub fn open(dir: impl AsRef<Path>) -> PersistResult<(Self, Option<WarmStart>)> {
        let dir = dir.as_ref().to_path_buf();
        let crc = record_crc();

        let frame_path = dir.join(FRAME_LOG);
        let shard_path = dir.join(SHARD_LOG);
        let frame_bytes = std::fs::read(&frame_path)
            .map_err(io_err(format!("reading {}", frame_path.display())))?;
        let shard_bytes = std::fs::read(&shard_path)
            .map_err(io_err(format!("reading {}", shard_path.display())))?;

        // ---- frame log: find the durable boundary C ----
        let (frame_records, _) = scan_log(&frame_bytes, &crc);
        let Some(header) = frame_records
            .first()
            .filter(|r| r.kind == KIND_FRAME_HEADER)
        else {
            return Err(corrupt("frame log header missing or torn"));
        };
        {
            let mut r = BodyReader::new(
                &frame_bytes[header.body_start..header.body_end],
                "frame log header",
            );
            if r.take(4)? != FRAME_MAGIC {
                return Err(corrupt("frame log magic mismatch"));
            }
            let version = r.u16()?;
            if version != FORMAT_VERSION {
                return Err(corrupt(format!(
                    "frame log format version {version} unsupported"
                )));
            }
            r.finish()?;
        }
        let mut committed: Vec<CommittedEntry> = Vec::new();
        let mut pending: Vec<CommittedEntry> = Vec::new();
        let mut pending_frames = 0u64;
        let mut commit_batch = 0u64;
        let mut bytes_in = 0u64;
        let mut frames = 0u64;
        let mut have_commit = false;
        let mut frame_keep_end = header.end;
        for rec in &frame_records[1..] {
            let body = &frame_bytes[rec.body_start..rec.body_end];
            match rec.kind {
                KIND_FRAME => {
                    let mut r = BodyReader::new(body, "frame record");
                    let packet_type = packet_type_from(r.u8()?, "frame record")?;
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    r.finish()?;
                    pending.push(CommittedEntry::Frame {
                        packet_type,
                        codec: None,
                        bytes,
                    });
                    pending_frames += 1;
                }
                KIND_FRAME_TAGGED => {
                    let mut r = BodyReader::new(body, "tagged frame record");
                    let raw = r.u8()?;
                    let Some(codec) = codec_from_u8(raw) else {
                        return Err(corrupt(format!(
                            "tagged frame record names unknown codec id {raw}"
                        )));
                    };
                    let packet_type = packet_type_from(r.u8()?, "tagged frame record")?;
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?.to_vec();
                    r.finish()?;
                    pending.push(CommittedEntry::Frame {
                        packet_type,
                        codec: Some(codec),
                        bytes,
                    });
                    pending_frames += 1;
                }
                KIND_CONTROL => {
                    let mut r = BodyReader::new(body, "control record");
                    let update = read_update(&mut r)?;
                    r.finish()?;
                    pending.push(CommittedEntry::Control(update));
                }
                KIND_COMMIT => {
                    let mut r = BodyReader::new(body, "commit record");
                    let batch = r.u64()?;
                    let cum_bytes = r.u64()?;
                    let cum_frames = r.u64()?;
                    r.finish()?;
                    if !have_commit && batch != 1 {
                        // A compaction baseline: the journal was retired
                        // down to its header plus one commit carrying the
                        // pre-compaction counters verbatim. Valid only as
                        // the log's very first record — journal entries in
                        // front of it mean the file was spliced.
                        if !pending.is_empty() {
                            return Err(corrupt(format!(
                                "frame log baseline commit for batch {batch} preceded by \
                                 journal records — duplicated or reordered tail segment"
                            )));
                        }
                    } else {
                        if batch != commit_batch + 1 {
                            return Err(corrupt(format!(
                                "frame log commit for batch {batch} follows batch {commit_batch} \
                                 — duplicated or reordered tail segment"
                            )));
                        }
                        if cum_bytes < bytes_in || cum_frames != frames + pending_frames {
                            return Err(corrupt(format!(
                                "frame log commit for batch {batch} disagrees with the journal \
                                 ({cum_frames} frames claimed, {} recorded)",
                                frames + pending_frames
                            )));
                        }
                    }
                    have_commit = true;
                    commit_batch = batch;
                    bytes_in = cum_bytes;
                    frames = cum_frames;
                    committed.append(&mut pending);
                    pending_frames = 0;
                    frame_keep_end = rec.end;
                }
                other => {
                    return Err(corrupt(format!(
                        "unexpected record kind {other:#x} in frame log"
                    )));
                }
            }
        }
        // Entries in `pending` belong to the interrupted batch and are
        // dropped with the truncation below.

        // ---- shard log: rebuild the dictionary up to C ----
        let (shard_records, _) = scan_log(&shard_bytes, &crc);
        let Some(header) = shard_records
            .first()
            .filter(|r| r.kind == KIND_SHARD_HEADER)
        else {
            return Err(corrupt("shard log header missing or torn"));
        };
        let (shard_count, shard_capacity) = {
            let mut r = BodyReader::new(
                &shard_bytes[header.body_start..header.body_end],
                "shard log header",
            );
            if r.take(4)? != SHARD_MAGIC {
                return Err(corrupt("shard log magic mismatch"));
            }
            let version = r.u16()?;
            if version != FORMAT_VERSION {
                return Err(corrupt(format!(
                    "shard log format version {version} unsupported"
                )));
            }
            let counts = (r.u32()? as usize, r.u32()? as usize);
            r.finish()?;
            counts
        };
        let mut last_batch: Option<u64> = None;
        let mut checkpoint: Option<(u64, DictionaryState)> = None;
        let mut deltas: Vec<(u64, Vec<DictionaryUpdate>)> = Vec::new();
        let mut shard_keep_end = header.end;
        for rec in &shard_records[1..] {
            let body = &shard_bytes[rec.body_start..rec.body_end];
            match rec.kind {
                KIND_DELTA => {
                    let mut r = BodyReader::new(body, "delta record");
                    let batch = r.u64()?;
                    let count = r.u32()? as usize;
                    let mut updates = Vec::with_capacity(count.min(1 << 20));
                    for _ in 0..count {
                        updates.push(read_update(&mut r)?);
                    }
                    r.finish()?;
                    let expected = last_batch.map_or(1, |b| b + 1);
                    if batch != expected {
                        return Err(corrupt(format!(
                            "shard log delta for batch {batch} where batch {expected} was \
                             expected — duplicated or reordered tail segment"
                        )));
                    }
                    last_batch = Some(batch);
                    if batch <= commit_batch {
                        deltas.push((batch, updates));
                        shard_keep_end = rec.end;
                    }
                }
                KIND_CHECKPOINT => {
                    let mut r = BodyReader::new(body, "checkpoint record");
                    let batch = r.u64()?;
                    let state = read_state(&mut r)?;
                    r.finish()?;
                    match last_batch {
                        None => last_batch = Some(batch),
                        Some(b) if b == batch => {}
                        Some(b) => {
                            return Err(corrupt(format!(
                                "checkpoint for batch {batch} interleaved at batch {b} — \
                                 duplicated or reordered tail segment"
                            )));
                        }
                    }
                    if batch <= commit_batch {
                        checkpoint = Some((batch, state));
                        shard_keep_end = rec.end;
                    }
                }
                other => {
                    return Err(corrupt(format!(
                        "unexpected record kind {other:#x} in shard log"
                    )));
                }
            }
        }
        // A shard log more than one batch ahead of the last commit means
        // the frame log lost commit markers mid-file (a valid delta can
        // only outrun the commit by the one interrupted batch).
        if let Some(b) = last_batch {
            if b > commit_batch + 1 {
                return Err(corrupt(format!(
                    "shard log covers batch {b} but the frame log's last commit is batch \
                     {commit_batch} — the frame log lost committed records"
                )));
            }
        }

        // ---- rehydrate ----
        let (start_batch, mut dict, mut exact) = match &checkpoint {
            Some((batch, state)) => {
                if state.shard_count != shard_count || state.shard_capacity != shard_capacity {
                    return Err(corrupt(format!(
                        "checkpoint shape {}x{} disagrees with the store header {}x{}",
                        state.shard_count, state.shard_capacity, shard_count, shard_capacity
                    )));
                }
                let dict = ShardedDictionary::from_state(state)
                    .map_err(|e| corrupt(format!("checkpoint state rejected: {e}")))?;
                (*batch, dict, true)
            }
            None => {
                let dict = ShardedDictionary::new(shard_count * shard_capacity, shard_count)
                    .map_err(|e| corrupt(format!("store header shape rejected: {e}")))?;
                (0, dict, true)
            }
        };
        for wanted in start_batch + 1..=commit_batch {
            let Some((_, updates)) = deltas.iter().find(|(b, _)| *b == wanted) else {
                return Err(corrupt(format!(
                    "shard store cannot cover committed batch {wanted}: no delta record \
                     survives for it"
                )));
            };
            for update in updates {
                dict.apply_update(update)
                    .map_err(|e| corrupt(format!("folding batch {wanted}: {e}")))?;
            }
            exact = false;
        }

        // ---- truncate both logs to the recovered boundary ----
        let mut shard_log = open_log(&shard_path, false)?;
        shard_log
            .set_len(shard_keep_end as u64)
            .map_err(io_err("truncating shard log tail"))?;
        shard_log
            .seek(SeekFrom::End(0))
            .map_err(io_err("seeking shard log end"))?;
        let mut frame_log = open_log(&frame_path, false)?;
        frame_log
            .set_len(frame_keep_end as u64)
            .map_err(io_err("truncating frame log tail"))?;
        frame_log
            .seek(SeekFrom::End(0))
            .map_err(io_err("seeking frame log end"))?;

        let warm = if commit_batch == 0 && checkpoint.is_none() {
            None
        } else {
            Some(WarmStart {
                dictionary: dict.export_state(),
                batches: commit_batch,
                bytes_in,
                frames,
                committed,
                exact,
            })
        };
        Ok((
            Self {
                dir,
                shard_log,
                frame_log,
                shard_count,
                shard_capacity,
                options: StoreOptions::default(),
                batches: commit_batch,
                bytes_in,
                frames,
                body: Vec::new(),
                payload: Vec::new(),
                crc,
            },
            warm,
        ))
    }

    /// [`Self::open`] when the store exists, [`Self::create`] otherwise.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        shard_count: usize,
        shard_capacity: usize,
    ) -> PersistResult<(Self, Option<WarmStart>)> {
        if Self::exists(&dir) {
            Self::open(dir)
        } else {
            Ok((Self::create(dir, shard_count, shard_capacity)?, None))
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard count recorded in the store header.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Per-shard identifier capacity recorded in the store header.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of durably committed batches.
    pub fn batches_committed(&self) -> u64 {
        self.batches
    }

    /// Cumulative input bytes across committed batches.
    pub fn bytes_in_committed(&self) -> u64 {
        self.bytes_in
    }

    /// Cumulative wire frames across committed batches.
    pub fn frames_committed(&self) -> u64 {
        self.frames
    }

    /// The tuning knobs.
    pub fn options(&self) -> StoreOptions {
        self.options
    }

    /// Replaces the tuning knobs.
    pub fn set_options(&mut self, options: StoreOptions) {
        self.options = options;
    }

    /// True when the *next* [`Self::commit_batch`] should carry a
    /// full-state checkpoint under the configured cadence.
    pub fn checkpoint_due(&self) -> bool {
        let cadence = self.options.checkpoint_cadence.max(1);
        (self.batches + 1).is_multiple_of(cadence)
    }

    /// Makes one batch durable. `records` are the batch's wire payloads
    /// in emission order (type + length into `wire`, the concatenated
    /// payload bytes), `codec` the batch's codec tag (`Some` only for
    /// self-describing multi-codec streams — the frames journal as
    /// `0x15` tagged records and replay with the tag attached),
    /// `updates` its dictionary delta, `state` the full
    /// dictionary state *after* the batch when a checkpoint is due (see
    /// [`Self::checkpoint_due`]), and `input_len` the input bytes the
    /// batch consumed. Write order — frames, shard delta (+ checkpoint),
    /// shard flush, commit marker, frame flush — guarantees a crash at
    /// any point leaves a recoverable prefix ending at a batch boundary.
    pub fn commit_batch(
        &mut self,
        records: &[(PacketType, u32)],
        wire: &[u8],
        codec: Option<CodecId>,
        updates: &[DictionaryUpdate],
        state: Option<&DictionaryState>,
        input_len: u64,
    ) -> PersistResult<()> {
        let batch = self.batches + 1;

        // Frame + control records, in exactly the interleaved emission
        // order: every update with `at <= i` precedes payload `i`.
        let mut next_update = updates.iter().peekable();
        let mut offset = 0usize;
        for (i, (packet_type, len)) in records.iter().enumerate() {
            while let Some(u) = next_update.peek() {
                if u.at > i as u64 {
                    break;
                }
                self.body.clear();
                put_update(&mut self.body, u);
                append_record(
                    &mut self.frame_log,
                    &self.crc,
                    &mut self.payload,
                    KIND_CONTROL,
                    &self.body,
                    "writing control record",
                )?;
                next_update.next();
            }
            let end = offset + *len as usize;
            let Some(bytes) = wire.get(offset..end) else {
                return Err(corrupt(format!(
                    "batch {batch}: record lengths overrun the wire buffer"
                )));
            };
            self.body.clear();
            if let Some(codec) = codec {
                self.body.push(codec.as_u8());
            }
            self.body.push(packet_type_code(*packet_type));
            put_u32(&mut self.body, *len);
            self.body.extend_from_slice(bytes);
            append_record(
                &mut self.frame_log,
                &self.crc,
                &mut self.payload,
                if codec.is_some() {
                    KIND_FRAME_TAGGED
                } else {
                    KIND_FRAME
                },
                &self.body,
                "writing frame record",
            )?;
            offset = end;
        }
        for u in next_update {
            self.body.clear();
            put_update(&mut self.body, u);
            append_record(
                &mut self.frame_log,
                &self.crc,
                &mut self.payload,
                KIND_CONTROL,
                &self.body,
                "writing control record",
            )?;
        }
        if offset != wire.len() {
            return Err(corrupt(format!(
                "batch {batch}: {} wire bytes left unaccounted for",
                wire.len() - offset
            )));
        }

        // Shard store: the batch's delta (always, even when empty, so
        // recovery can prove coverage), then the checkpoint when due.
        self.body.clear();
        put_u64(&mut self.body, batch);
        put_u32(&mut self.body, updates.len() as u32);
        for u in updates {
            put_update(&mut self.body, u);
        }
        append_record(
            &mut self.shard_log,
            &self.crc,
            &mut self.payload,
            KIND_DELTA,
            &self.body,
            "writing delta record",
        )?;
        if let Some(state) = state {
            self.body.clear();
            put_u64(&mut self.body, batch);
            put_state(&mut self.body, state);
            append_record(
                &mut self.shard_log,
                &self.crc,
                &mut self.payload,
                KIND_CHECKPOINT,
                &self.body,
                "writing checkpoint record",
            )?;
        }
        self.shard_log
            .flush()
            .map_err(io_err("flushing shard log"))?;
        sync_file(self.options.sync, &self.shard_log, "syncing shard log")?;

        // The commit marker makes the batch count.
        self.body.clear();
        put_u64(&mut self.body, batch);
        put_u64(&mut self.body, self.bytes_in + input_len);
        put_u64(&mut self.body, self.frames + records.len() as u64);
        append_record(
            &mut self.frame_log,
            &self.crc,
            &mut self.payload,
            KIND_COMMIT,
            &self.body,
            "writing commit record",
        )?;
        self.frame_log
            .flush()
            .map_err(io_err("flushing frame log"))?;
        sync_file(self.options.sync, &self.frame_log, "syncing frame log")?;

        self.batches = batch;
        self.bytes_in += input_len;
        self.frames += records.len() as u64;
        Ok(())
    }

    /// Appends a full-state checkpoint at the current batch boundary
    /// (outside the commit path — e.g. at stream finish).
    pub fn checkpoint(&mut self, state: &DictionaryState) -> PersistResult<()> {
        self.body.clear();
        put_u64(&mut self.body, self.batches);
        put_state(&mut self.body, state);
        append_record(
            &mut self.shard_log,
            &self.crc,
            &mut self.payload,
            KIND_CHECKPOINT,
            &self.body,
            "writing checkpoint record",
        )?;
        self.shard_log
            .flush()
            .map_err(io_err("flushing shard log"))?;
        sync_file(self.options.sync, &self.shard_log, "syncing shard log")
    }

    /// Compacts the store: atomically rewrites `frames.zfl` as its header
    /// plus one *baseline* commit carrying the current counters (the
    /// replayable journal is retired — everything before the baseline is
    /// already durable downstream), then rewrites `shards.zsl` as its
    /// header plus one checkpoint of `state` at the current batch
    /// boundary. Each rewrite goes through a temp file and rename; the
    /// frame log goes first so a crash between the two renames leaves a
    /// baseline commit plus the old shard log, which recovery handles (the
    /// checkpoint and deltas at or below the baseline batch still cover
    /// it). Call after a checkpoint-worthy quiescent point (e.g. stream
    /// finish) to bound log growth.
    pub fn compact(&mut self, state: &DictionaryState) -> PersistResult<()> {
        let tmp_path = self.dir.join("frames.zfl.tmp");
        let mut tmp = open_log(&tmp_path, true)?;
        self.body.clear();
        self.body.extend_from_slice(FRAME_MAGIC);
        put_u16(&mut self.body, FORMAT_VERSION);
        append_record(
            &mut tmp,
            &self.crc,
            &mut self.payload,
            KIND_FRAME_HEADER,
            &self.body,
            "writing compacted frame log header",
        )?;
        self.body.clear();
        put_u64(&mut self.body, self.batches);
        put_u64(&mut self.body, self.bytes_in);
        put_u64(&mut self.body, self.frames);
        append_record(
            &mut tmp,
            &self.crc,
            &mut self.payload,
            KIND_COMMIT,
            &self.body,
            "writing baseline commit",
        )?;
        tmp.flush()
            .map_err(io_err("flushing compacted frame log"))?;
        sync_file(self.options.sync, &tmp, "syncing compacted frame log")?;
        drop(tmp);
        let frame_path = self.dir.join(FRAME_LOG);
        std::fs::rename(&tmp_path, &frame_path)
            .map_err(io_err("renaming compacted frame log into place"))?;
        sync_dir(self.options.sync, &self.dir)?;
        self.frame_log = open_log(&frame_path, false)?;
        self.frame_log
            .seek(SeekFrom::End(0))
            .map_err(io_err("seeking compacted frame log end"))?;

        let tmp_path = self.dir.join("shards.zsl.tmp");
        let mut tmp = open_log(&tmp_path, true)?;
        self.body.clear();
        self.body.extend_from_slice(SHARD_MAGIC);
        put_u16(&mut self.body, FORMAT_VERSION);
        put_u32(&mut self.body, self.shard_count as u32);
        put_u32(&mut self.body, self.shard_capacity as u32);
        append_record(
            &mut tmp,
            &self.crc,
            &mut self.payload,
            KIND_SHARD_HEADER,
            &self.body,
            "writing compacted shard log header",
        )?;
        self.body.clear();
        put_u64(&mut self.body, self.batches);
        put_state(&mut self.body, state);
        append_record(
            &mut tmp,
            &self.crc,
            &mut self.payload,
            KIND_CHECKPOINT,
            &self.body,
            "writing compacted checkpoint",
        )?;
        tmp.flush()
            .map_err(io_err("flushing compacted shard log"))?;
        sync_file(self.options.sync, &tmp, "syncing compacted shard log")?;
        drop(tmp);
        let shard_path = self.dir.join(SHARD_LOG);
        std::fs::rename(&tmp_path, &shard_path)
            .map_err(io_err("renaming compacted shard log into place"))?;
        sync_dir(self.options.sync, &self.dir)?;
        self.shard_log = open_log(&shard_path, false)?;
        self.shard_log
            .seek(SeekFrom::End(0))
            .map_err(io_err("seeking compacted shard log end"))?;
        Ok(())
    }
}

/// Applies the store's [`SyncPolicy`] to one file: a no-op under `Flush`
/// (the caller already flushed to the OS), an `fdatasync` under `Data`.
fn sync_file(policy: SyncPolicy, file: &File, context: &'static str) -> PersistResult<()> {
    match policy {
        SyncPolicy::Flush => Ok(()),
        SyncPolicy::Data => file.sync_data().map_err(io_err(context)),
    }
}

/// Under [`SyncPolicy::Data`], syncs the directory so a rename performed
/// inside it is itself power-loss durable; no-op under `Flush`.
fn sync_dir(policy: SyncPolicy, dir: &Path) -> PersistResult<()> {
    match policy {
        SyncPolicy::Flush => Ok(()),
        SyncPolicy::Data => File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err("syncing store directory")),
    }
}

/// Opens a log file for appending; `truncate` starts it fresh.
fn open_log(path: &Path, truncate: bool) -> PersistResult<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(truncate)
        .open(path)
        .map_err(io_err(format!("opening {}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zipline-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn basis(seed: u8) -> BitVec {
        BitVec::from_bytes(&[seed; 4])
    }

    fn install(seq: u64, at: u64, id: u64, seed: u8) -> DictionaryUpdate {
        DictionaryUpdate {
            seq,
            at,
            op: UpdateOp::Install {
                id,
                basis: basis(seed),
            },
        }
    }

    /// A 2x4 dictionary driven through some churn, exported.
    fn churned_state() -> DictionaryState {
        let mut dict = ShardedDictionary::new(8, 2).unwrap();
        dict.set_journal(true);
        for i in 0..20u8 {
            let b = basis(i);
            let hash = b.hash_words();
            let shard = dict.shard_of_hash(hash);
            dict.classify_at(shard, &b, hash, i as u64).unwrap();
        }
        let _ = dict.take_delta();
        dict.export_state()
    }

    #[test]
    fn state_serialization_roundtrips() {
        let state = churned_state();
        let mut buf = Vec::new();
        put_state(&mut buf, &state);
        let mut r = BodyReader::new(&buf, "test state");
        let back = read_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn update_serialization_roundtrips() {
        let updates = vec![
            install(0, 3, 7, 0xAB),
            DictionaryUpdate {
                seq: 1,
                at: 3,
                op: UpdateOp::Remove { id: 7 },
            },
        ];
        let mut buf = Vec::new();
        for u in &updates {
            put_update(&mut buf, u);
        }
        let mut r = BodyReader::new(&buf, "test updates");
        let back = vec![read_update(&mut r).unwrap(), read_update(&mut r).unwrap()];
        r.finish().unwrap();
        assert_eq!(back, updates);
    }

    /// Exhaustiveness companion to the workspace lint's L002 rule: one
    /// committed batch carrying a delta, a checkpoint, frames and control
    /// updates must leave every declared record kind on disk. A kind
    /// added to the format without flowing through `commit_batch` (or
    /// without coverage here) fails this test or the lint.
    #[test]
    fn every_declared_kind_appears_on_disk_after_a_full_commit() {
        let dir = temp_dir("kinds");
        let mut store = EngineStore::create(&dir, 2, 4).unwrap();
        let mut dict = ShardedDictionary::new(8, 2).unwrap();
        dict.set_journal(true);
        for i in 0..4u8 {
            let b = basis(i);
            let hash = b.hash_words();
            let shard = dict.shard_of_hash(hash);
            dict.classify_at(shard, &b, hash, i as u64).unwrap();
        }
        let delta = dict.take_delta();
        assert!(!delta.updates.is_empty());
        let state = dict.export_state();
        let records = vec![(PacketType::Uncompressed, 3u32)];
        store
            .commit_batch(&records, &[7; 3], None, &delta.updates, Some(&state), 64)
            .unwrap();
        store
            .commit_batch(
                &records,
                &[8; 3],
                Some(crate::registry::CODEC_DEFLATE),
                &[],
                Some(&state),
                64,
            )
            .unwrap();
        drop(store);

        let crc = record_crc();
        let mut kinds = std::collections::BTreeSet::new();
        for log in [SHARD_LOG, FRAME_LOG] {
            let data = std::fs::read(dir.join(log)).unwrap();
            let (raw, valid) = scan_log(&data, &crc);
            assert_eq!(valid, data.len(), "{log} has a torn tail");
            kinds.extend(raw.iter().map(|r| r.kind));
        }
        for (name, kind) in [
            ("SHARD_HEADER", KIND_SHARD_HEADER),
            ("DELTA", KIND_DELTA),
            ("CHECKPOINT", KIND_CHECKPOINT),
            ("FRAME_HEADER", KIND_FRAME_HEADER),
            ("FRAME", KIND_FRAME),
            ("CONTROL", KIND_CONTROL),
            ("COMMIT", KIND_COMMIT),
            ("FRAME_TAGGED", KIND_FRAME_TAGGED),
        ] {
            assert!(
                kinds.contains(&kind),
                "declared kind {name} ({kind:#04x}) was never written"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_commit_reopen_recovers_everything() {
        let dir = temp_dir("roundtrip");
        let mut store = EngineStore::create(&dir, 2, 4).unwrap();
        assert!(store.checkpoint_due());

        let mut dict = ShardedDictionary::new(8, 2).unwrap();
        dict.set_journal(true);
        let mut all_updates = Vec::new();
        for batch in 0..3u8 {
            for i in 0..4u8 {
                let b = basis(batch * 4 + i);
                let hash = b.hash_words();
                let shard = dict.shard_of_hash(hash);
                dict.classify_at(shard, &b, hash, i as u64).unwrap();
            }
            let delta = dict.take_delta();
            let records = vec![
                (PacketType::Uncompressed, 3u32),
                (PacketType::Compressed, 2u32),
            ];
            let wire = vec![batch; 5];
            let state = dict.export_state();
            store
                .commit_batch(&records, &wire, None, &delta.updates, Some(&state), 128)
                .unwrap();
            all_updates.extend(delta.updates);
        }
        assert_eq!(store.batches_committed(), 3);
        assert_eq!(store.bytes_in_committed(), 384);
        assert_eq!(store.frames_committed(), 6);
        let final_state = dict.export_state();
        drop(store);

        let (store, warm) = EngineStore::open(&dir).unwrap();
        let warm = warm.expect("committed batches imply a warm start");
        assert_eq!(store.batches_committed(), 3);
        assert_eq!(warm.batches, 3);
        assert_eq!(warm.bytes_in, 384);
        assert_eq!(warm.frames, 6);
        assert!(warm.exact, "cadence-1 checkpoints restore exactly");
        assert_eq!(warm.dictionary, final_state);
        let frames: Vec<_> = warm
            .committed
            .iter()
            .filter(|e| matches!(e, CommittedEntry::Frame { .. }))
            .collect();
        assert_eq!(frames.len(), 6);
        let controls: Vec<_> = warm
            .committed
            .iter()
            .filter_map(|e| match e {
                CommittedEntry::Control(u) => Some(u.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(controls, all_updates);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_truncate_to_the_last_commit() {
        let dir = temp_dir("torn");
        let mut store = EngineStore::create(&dir, 1, 8).unwrap();
        let records = vec![(PacketType::Raw, 4u32)];
        store
            .commit_batch(
                &records,
                &[1, 2, 3, 4],
                None,
                &[],
                Some(&churn_free_state()),
                4,
            )
            .unwrap();
        store
            .commit_batch(
                &records,
                &[5, 6, 7, 8],
                None,
                &[],
                Some(&churn_free_state()),
                4,
            )
            .unwrap();
        drop(store);

        // Chop bytes off the frame log at every offset. Shallow cuts (a
        // crash mid-batch-2) recover to batch 1 or 2; deeper cuts destroy
        // records the shard log proves were committed, which must be loud
        // — never a silent rollback.
        let frame_path = dir.join(FRAME_LOG);
        let shard_path = dir.join(SHARD_LOG);
        let full = std::fs::read(&frame_path).unwrap();
        let shard_full = std::fs::read(&shard_path).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for cut in (0..=full.len()).rev() {
            std::fs::write(&frame_path, &full[..cut]).unwrap();
            match EngineStore::open(&dir) {
                Ok((store, _)) => {
                    seen.insert(store.batches_committed());
                    assert!(
                        (1..=2).contains(&store.batches_committed()),
                        "cut {cut} silently rolled back past the shard log"
                    );
                }
                Err(PersistError::Corrupt(_)) => {
                    // Cuts reaching committed batches (or the header) are
                    // loud, not a guess.
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            // Restore for the next iteration (open() itself truncates).
            std::fs::write(&frame_path, &full).unwrap();
            std::fs::write(&shard_path, &shard_full).unwrap();
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn churn_free_state() -> DictionaryState {
        ShardedDictionary::new(8, 1).unwrap().export_state()
    }

    #[test]
    fn corrupted_shard_record_under_valid_commits_fails_loudly() {
        let dir = temp_dir("corrupt");
        let mut store = EngineStore::create(&dir, 1, 8).unwrap();
        let mut dict = ShardedDictionary::new(8, 1).unwrap();
        dict.set_journal(true);
        for batch in 0..2u8 {
            let b = basis(batch);
            let hash = b.hash_words();
            dict.classify_at(0, &b, hash, 0).unwrap();
            let delta = dict.take_delta();
            // No checkpoint: recovery must lean on the delta records.
            store
                .commit_batch(
                    &[(PacketType::Raw, 1u32)],
                    &[batch],
                    None,
                    &delta.updates,
                    None,
                    1,
                )
                .unwrap();
        }
        drop(store);

        // Flip one byte inside the first delta record's body. The scan
        // stops there, the frame log still claims two commits, and open()
        // must refuse rather than misrestore.
        let shard_path = dir.join(SHARD_LOG);
        let mut bytes = std::fs::read(&shard_path).unwrap();
        let (records, _) = scan_log(&bytes, &record_crc());
        let delta_rec = &records[1];
        assert_eq!(delta_rec.kind, KIND_DELTA);
        let mid = (delta_rec.body_start + delta_rec.body_end) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&shard_path, &bytes).unwrap();
        match EngineStore::open(&dir) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("cannot cover committed batch"), "got: {msg}");
            }
            other => panic!("expected loud corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_tail_segment_fails_loudly() {
        let dir = temp_dir("dup");
        let mut store = EngineStore::create(&dir, 1, 8).unwrap();
        store
            .commit_batch(&[(PacketType::Raw, 2u32)], &[9, 9], None, &[], None, 2)
            .unwrap();
        drop(store);

        // Duplicate the frame log's tail (the last commit record): the
        // repeated batch number is structurally impossible.
        let frame_path = dir.join(FRAME_LOG);
        let mut bytes = std::fs::read(&frame_path).unwrap();
        let (records, _) = scan_log(&bytes, &record_crc());
        let commit = records.last().unwrap();
        let start = commit.body_start - 5;
        let tail = bytes[start..commit.end].to_vec();
        bytes.extend_from_slice(&tail);
        std::fs::write(&frame_path, &bytes).unwrap();
        match EngineStore::open(&dir) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("duplicated or reordered"), "got: {msg}");
            }
            other => panic!("expected loud corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoint_plus_newer_deltas_folds_consistently() {
        let dir = temp_dir("fold");
        let mut store = EngineStore::create(&dir, 2, 4).unwrap();
        store.set_options(StoreOptions {
            checkpoint_cadence: 2,
            ..StoreOptions::default()
        });
        let mut dict = ShardedDictionary::new(8, 2).unwrap();
        dict.set_journal(true);
        for batch in 0..3u8 {
            let b = basis(batch);
            let hash = b.hash_words();
            let shard = dict.shard_of_hash(hash);
            dict.classify_at(shard, &b, hash, 0).unwrap();
            let delta = dict.take_delta();
            let state = store.checkpoint_due().then(|| dict.export_state());
            store
                .commit_batch(
                    &[(PacketType::Raw, 1u32)],
                    &[batch],
                    None,
                    &delta.updates,
                    state.as_ref(),
                    1,
                )
                .unwrap();
        }
        drop(store);

        let (_, warm) = EngineStore::open(&dir).unwrap();
        let warm = warm.unwrap();
        assert_eq!(warm.batches, 3);
        assert!(
            !warm.exact,
            "batch 3 has no checkpoint; the delta was folded"
        );
        // The id → basis mapping must match the original exactly.
        let restored = ShardedDictionary::from_state(&warm.dictionary).unwrap();
        assert_eq!(restored.snapshot().entries, dict.snapshot().entries);
        assert_eq!(warm.dictionary.delta_seq, dict.delta_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_recovery() {
        let dir = temp_dir("compact");
        let mut store = EngineStore::create(&dir, 1, 8).unwrap();
        let mut dict = ShardedDictionary::new(8, 1).unwrap();
        dict.set_journal(true);
        for batch in 0..2u8 {
            let b = basis(batch);
            let hash = b.hash_words();
            dict.classify_at(0, &b, hash, 0).unwrap();
            let delta = dict.take_delta();
            let state = dict.export_state();
            store
                .commit_batch(
                    &[(PacketType::Raw, 1u32)],
                    &[batch],
                    None,
                    &delta.updates,
                    Some(&state),
                    1,
                )
                .unwrap();
        }
        let final_state = dict.export_state();
        store.compact(&final_state).unwrap();
        let compacted_len = std::fs::metadata(dir.join(SHARD_LOG)).unwrap().len();
        drop(store);

        let (store, warm) = EngineStore::open(&dir).unwrap();
        let warm = warm.unwrap();
        assert_eq!(warm.batches, 2);
        assert!(warm.exact);
        assert_eq!(warm.dictionary, final_state);
        assert_eq!(
            std::fs::metadata(dir.join(SHARD_LOG)).unwrap().len(),
            compacted_len,
            "open() keeps the compacted log intact"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn data_sync_policy_commits_checkpoints_and_compacts_identically() {
        let flush_dir = temp_dir("sync-flush");
        let data_dir = temp_dir("sync-data");
        let mut warms = Vec::new();
        for (dir, sync) in [
            (&flush_dir, SyncPolicy::Flush),
            (&data_dir, SyncPolicy::Data),
        ] {
            let mut store = EngineStore::create(dir, 1, 8).unwrap();
            store.set_options(StoreOptions {
                sync,
                ..StoreOptions::default()
            });
            assert_eq!(store.options().sync, sync);
            let mut dict = ShardedDictionary::new(8, 1).unwrap();
            dict.set_journal(true);
            for batch in 0..3u8 {
                let b = basis(batch);
                let hash = b.hash_words();
                dict.classify_at(0, &b, hash, 0).unwrap();
                let delta = dict.take_delta();
                let state = dict.export_state();
                store
                    .commit_batch(
                        &[(PacketType::Raw, 1u32)],
                        &[batch],
                        None,
                        &delta.updates,
                        Some(&state),
                        1,
                    )
                    .unwrap();
            }
            let final_state = dict.export_state();
            store.checkpoint(&final_state).unwrap();
            store.compact(&final_state).unwrap();
            drop(store);
            let (_store, warm) = EngineStore::open(dir).unwrap();
            warms.push(warm.expect("committed batches imply a warm start"));
        }
        let data = warms.pop().unwrap();
        let flush = warms.pop().unwrap();
        assert_eq!(flush.batches, data.batches);
        assert_eq!(flush.bytes_in, data.bytes_in);
        assert_eq!(flush.dictionary, data.dictionary);
        assert_eq!(flush.committed.len(), data.committed.len());
        assert!(data.exact, "SyncPolicy::Data must not change recovery");
        let _ = std::fs::remove_dir_all(&flush_dir);
        let _ = std::fs::remove_dir_all(&data_dir);
    }
}
