//! The backend abstraction: one engine, many codecs.
//!
//! The ZipLine paper evaluates Generalized Deduplication *against*
//! DEFLATE-class compressors (its Figure 3 gzip baseline). This module is
//! the seam that lets our engine run that comparison live instead of
//! offline: [`CompressionBackend`] captures exactly what
//! [`CompressionEngine`](crate::CompressionEngine),
//! [`EngineStream`](crate::EngineStream) and the `zipline` crate's host path
//! need from a codec, so the same sharded, streaming, live-synced pipeline
//! drives GD ([`GdBackend`](crate::GdBackend)), DEFLATE/gzip
//! ([`DeflateBackend`]) and a no-op floor ([`PassthroughBackend`]) — and,
//! later, persistent/mmap shard stores or the switch's `ExactMatchTable`
//! without another engine rewrite.
//!
//! # The backend contract
//!
//! A backend is a *batch* codec with a wire form:
//!
//! * [`compress_batch`](CompressionBackend::compress_batch) turns a buffer
//!   (a whole number of [`unit_bytes`](CompressionBackend::unit_bytes),
//!   except for the final flush) into an opaque
//!   [`Batch`](CompressionBackend::Batch);
//! * [`emit_batch`](CompressionBackend::emit_batch) serializes that batch
//!   into wire payloads through recycled scratch, calling the sink **once
//!   per record in input order** — the record index is the `at` coordinate
//!   the live-sync machinery interleaves
//!   [`DictionaryUpdate`](crate::DictionaryUpdate)s against;
//! * the mirrored [`Decompressor`](CompressionBackend::Decompressor)
//!   restores batches and wire payloads byte-exactly.
//!
//! # What live sync requires — and what delta-less backends opt out of
//!
//! A backend that maintains shared decoder state (GD's `identifier → basis`
//! dictionary) must implement the delta hooks so a remote decoder can track
//! it: [`set_live_sync`](CompressionBackend::set_live_sync) turns mutation
//! journaling on, and [`take_delta`](CompressionBackend::take_delta) drains
//! an ordered [`DictionaryDelta`] per batch. For the
//! delta ordering rules to hold across the trait boundary the backend must
//! guarantee, per batch:
//!
//! 1. every update's `at` is the input-order record index of the record at
//!    which the mutation happened, and `emit_batch` emits records in exactly
//!    that order (so "apply every update with `at <= i` before record `i`"
//!    resolves every reference);
//! 2. a `Remove` that recycles an identifier is journaled immediately before
//!    the `Install` that reuses it, at the same `at`;
//! 3. the delta — like the compressed bytes — is a pure function of the
//!    input and the backend's sharding shape, never of worker count or spawn
//!    policy.
//!
//! Self-contained backends such as [`DeflateBackend`] (every gzip member
//! carries its own Huffman tables and window) and [`PassthroughBackend`]
//! have no shared decoder state: they keep the default no-op hooks
//! ([`supports_live_sync`](CompressionBackend::supports_live_sync) is
//! `false`, deltas are empty, snapshots are `None`), and a control plane
//! attached to them simply never sees traffic.

use crate::engine::EngineConfig;
use crate::registry::{CodecId, CODEC_DEFLATE, CODEC_PASSTHROUGH};
use crate::shard::{DictionaryDelta, DictionarySnapshot, DictionaryState, ShardStats};
use zipline_deflate::Level;
use zipline_gd::error::{GdError, Result};
use zipline_gd::packet::PacketType;
use zipline_gd::stats::CompressionStats;

/// A batch codec the generic engine can drive; see the module docs for the
/// contract.
pub trait CompressionBackend {
    /// Opaque result of compressing one batch, consumed by
    /// [`Self::emit_batch`] or the mirrored decompressor.
    type Batch;
    /// The mirrored decoder for this backend's batches and wire payloads.
    type Decompressor: BackendDecompressor<Batch = Self::Batch>;

    /// Builds the backend a given engine configuration implies (the
    /// [`EngineBuilder`](crate::EngineBuilder) uses this when no explicit
    /// backend instance was supplied). Backends that ignore parts of the
    /// configuration — deflate has no shards — simply don't read them.
    fn from_engine_config(config: &EngineConfig) -> Result<Self>
    where
        Self: Sized;

    /// The backend's stable [`CodecId`] — the tag a self-describing
    /// container carries so a decoder can pick the right
    /// [`BackendDecompressor`] without out-of-band knowledge. Routing
    /// backends ([`AutoBackend`](crate::AutoBackend)) return the id of
    /// their stateful core; the per-batch decision is exposed through
    /// [`Self::batch_codec_id`] instead.
    fn codec_id(&self) -> CodecId;

    /// The codec one specific batch was routed to. Fixed backends always
    /// answer [`Self::codec_id`]; only routing backends override this.
    fn batch_codec_id(&self, batch: &Self::Batch) -> CodecId {
        let _ = batch;
        self.codec_id()
    }

    /// True when this backend's output must carry per-batch codec tags to
    /// be decodable (i.e. different batches may use different codecs).
    /// Fixed backends stay `false` and keep the untagged fast path: their
    /// containers are decoded by the stream's negotiated backend alone.
    fn tags_batches(&self) -> bool {
        false
    }

    /// Every codec id this backend may emit — what a hello advertises so
    /// the peer can check its decoder pool covers the stream.
    fn codec_ids(&self) -> Vec<CodecId> {
        vec![self.codec_id()]
    }

    /// Size in bytes of the backend's indivisible input unit. Batches passed
    /// to [`Self::compress_batch`] hold a whole number of units except for
    /// the final flush (whose ragged tail the backend must still represent
    /// losslessly). GD returns its chunk size; byte-stream backends return 1.
    fn unit_bytes(&self) -> usize;

    /// Compresses one batch into the backend's intermediate form, reusing
    /// internal scratch across calls.
    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch>;

    /// Serializes a batch into wire payloads through recycled scratch,
    /// calling `emit` once per record in input order.
    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()>;

    /// Compression statistics accumulated so far.
    fn stats(&self) -> CompressionStats;

    /// Per-shard dictionary counters; empty for unsharded backends.
    fn shard_stats(&self) -> Vec<ShardStats> {
        Vec::new()
    }

    /// Point-in-time snapshot of the backend's decoder-sync state, for
    /// *cold* decoder sync; `None` for backends without shared state.
    fn snapshot(&self) -> Option<DictionarySnapshot> {
        None
    }

    /// True when the backend maintains shared decoder state and therefore
    /// implements the delta hooks.
    fn supports_live_sync(&self) -> bool {
        false
    }

    /// Turns mutation journaling on or off. Backends without shared decoder
    /// state ignore this.
    fn set_live_sync(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// True when mutation journaling is currently on.
    fn live_sync_enabled(&self) -> bool {
        false
    }

    /// Drains the mutation journal accumulated since the last call into an
    /// ordered [`DictionaryDelta`]; always empty for delta-less backends.
    fn take_delta(&mut self) -> DictionaryDelta {
        DictionaryDelta::default()
    }

    /// Full behavioural state of the backend's shared dictionary, for the
    /// persistence layer's checkpoints; `None` for backends without shared
    /// state (they have nothing to persist — a durable stream still
    /// journals their frames, and recovery is the frame log alone).
    fn export_dictionary_state(&self) -> Option<DictionaryState> {
        None
    }

    /// Restores the backend's shared dictionary from a persisted
    /// [`DictionaryState`] (a warm restart). Backends without shared state
    /// reject the call: a store that carries dictionary state for them is
    /// mismatched.
    fn restore_dictionary_state(&mut self, state: &DictionaryState) -> Result<()> {
        let _ = state;
        Err(GdError::InvalidConfig(
            "this backend has no dictionary state to restore".into(),
        ))
    }

    /// Builds the mirrored decompressor for streams this backend produces.
    fn decompressor(&self) -> Result<Self::Decompressor>;

    /// Builds the decompressor a given engine configuration implies,
    /// *without* building the compression side. The default constructs and
    /// discards a backend; backends with expensive state (GD's sharded
    /// dictionary and worker scratch) override it to go straight to the
    /// decoder.
    fn decompressor_for(config: &EngineConfig) -> Result<Self::Decompressor>
    where
        Self: Sized,
    {
        Self::from_engine_config(config)?.decompressor()
    }
}

/// Decoder mirror of a [`CompressionBackend`].
pub trait BackendDecompressor {
    /// The backend's batch type.
    type Batch;

    /// Decompresses one batch back to the original bytes.
    fn decompress_batch(&mut self, batch: &Self::Batch) -> Result<Vec<u8>>;

    /// Decodes one wire payload produced by the backend's
    /// [`emit_batch`](CompressionBackend::emit_batch), appending the
    /// restored bytes to `out`.
    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()>;

    /// Decoder statistics accumulated so far.
    fn stats(&self) -> &CompressionStats;
}

/// Maps a deflate error into the engine's error type.
fn deflate_error(e: zipline_deflate::DeflateError) -> GdError {
    GdError::Malformed(format!("deflate backend: {e}"))
}

// ---------------------------------------------------------------------------
// DeflateBackend
// ---------------------------------------------------------------------------

/// DEFLATE/gzip backend: each engine batch becomes one gzip member
/// (RFC 1952), emitted as a single raw (type 1) wire payload.
///
/// This is the paper's Figure 3 baseline running *inside* the engine
/// pipeline instead of offline. Two deliberate asymmetries with
/// [`GdBackend`](crate::GdBackend) mirror the paper's argument for why
/// DEFLATE cannot run in a switch data plane:
///
/// * a DEFLATE stream is inherently serial (back-references reach into the
///   member's own history), so the engine's worker/shard axes do not fan a
///   member out — output bytes are a pure function of `(data, batch
///   boundaries)` and worker count never changes them. The per-worker
///   encoder state this backend recycles is its member scratch pool: one
///   buffer per in-flight batch, reused across batches;
/// * every member is self-contained (it carries its own Huffman tables), so
///   there is no shared decoder state to sync: the backend is delta-less
///   and opts out of the live-sync hooks entirely.
///
/// Batch size is the ratio lever: DEFLATE "requires a minimum of 3 kB to
/// compress data" (the paper's phrasing), so feed it kilobyte-scale batches
/// — e.g. `EngineStream` with `unit_bytes == 1` and `batch_units == 8192`.
#[derive(Debug, Clone)]
pub struct DeflateBackend {
    level: Level,
    stats: CompressionStats,
    /// Recycled member buffers: `compress_batch` pops one, `emit_batch`
    /// returns it after serialization.
    spare: Vec<Vec<u8>>,
}

impl DeflateBackend {
    /// A backend compressing at the given DEFLATE level.
    pub fn new(level: Level) -> Self {
        Self {
            level,
            stats: CompressionStats::new(),
            spare: Vec::new(),
        }
    }

    /// The configured DEFLATE level.
    pub fn level(&self) -> Level {
        self.level
    }

    fn take_buffer(&mut self) -> Vec<u8> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf
    }
}

impl Default for DeflateBackend {
    fn default() -> Self {
        Self::new(Level::Default)
    }
}

impl CompressionBackend for DeflateBackend {
    type Batch = Vec<u8>;
    type Decompressor = DeflateDecompressor;

    fn from_engine_config(_config: &EngineConfig) -> Result<Self> {
        Ok(Self::default())
    }

    fn codec_id(&self) -> CodecId {
        CODEC_DEFLATE
    }

    fn unit_bytes(&self) -> usize {
        1
    }

    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch> {
        let mut member = self.take_buffer();
        if data.is_empty() {
            return Ok(member);
        }
        zipline_deflate::gzip_compress_into(data, self.level, &mut member);
        self.stats.chunks_in += 1;
        self.stats.emitted_compressed += 1;
        self.stats.bytes_in += data.len() as u64;
        self.stats.bytes_out += member.len() as u64;
        Ok(member)
    }

    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        if !batch.is_empty() {
            emit(PacketType::Raw, &batch);
        }
        self.spare.push(batch);
        Ok(())
    }

    fn stats(&self) -> CompressionStats {
        self.stats
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        Ok(DeflateDecompressor::default())
    }
}

/// Decoder mirror of [`DeflateBackend`]: every payload is one gzip member,
/// restored through the crate's streaming `gzip_decompress_into` (CRC-32
/// checked per member) into the caller's accumulator.
#[derive(Debug, Clone, Default)]
pub struct DeflateDecompressor {
    stats: CompressionStats,
}

impl BackendDecompressor for DeflateDecompressor {
    type Batch = Vec<u8>;

    fn decompress_batch(&mut self, batch: &Self::Batch) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        if !batch.is_empty() {
            self.restore_payload_into(PacketType::Raw, batch, &mut out)?;
        }
        Ok(out)
    }

    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if packet_type != PacketType::Raw {
            self.stats.decode_failures += 1;
            return Err(GdError::Malformed(format!(
                "deflate streams carry only raw (type 1) payloads, got type {}",
                packet_type.number()
            )));
        }
        match zipline_deflate::gzip_decompress_into(bytes, out) {
            Ok(_) => {
                self.stats.chunks_decoded += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.decode_failures += 1;
                Err(deflate_error(e))
            }
        }
    }

    fn stats(&self) -> &CompressionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// PassthroughBackend
// ---------------------------------------------------------------------------

/// The identity backend: batches are copied to the wire verbatim as raw
/// (type 1) payloads.
///
/// Useless as a compressor by construction — which is the point: it is the
/// ratio floor every real backend must beat (the "No op" baseline of the
/// paper's Figure 4), and the cheapest way to exercise the full engine →
/// stream → host-path → deployment wire plumbing in tests without any codec
/// behavior in the way.
#[derive(Debug, Clone, Default)]
pub struct PassthroughBackend {
    stats: CompressionStats,
    /// Recycled batch buffers, same discipline as [`DeflateBackend`].
    spare: Vec<Vec<u8>>,
}

impl PassthroughBackend {
    /// A fresh passthrough backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompressionBackend for PassthroughBackend {
    type Batch = Vec<u8>;
    type Decompressor = PassthroughDecompressor;

    fn from_engine_config(_config: &EngineConfig) -> Result<Self> {
        Ok(Self::new())
    }

    fn codec_id(&self) -> CodecId {
        CODEC_PASSTHROUGH
    }

    fn unit_bytes(&self) -> usize {
        1
    }

    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch> {
        let mut batch = self.spare.pop().unwrap_or_default();
        batch.clear();
        batch.extend_from_slice(data);
        if !data.is_empty() {
            self.stats.chunks_in += 1;
            self.stats.emitted_raw += 1;
            self.stats.bytes_in += data.len() as u64;
            self.stats.bytes_out += data.len() as u64;
        }
        Ok(batch)
    }

    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        if !batch.is_empty() {
            emit(PacketType::Raw, &batch);
        }
        self.spare.push(batch);
        Ok(())
    }

    fn stats(&self) -> CompressionStats {
        self.stats
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        Ok(PassthroughDecompressor::default())
    }
}

/// Decoder mirror of [`PassthroughBackend`]: appends payload bytes as-is.
#[derive(Debug, Clone, Default)]
pub struct PassthroughDecompressor {
    stats: CompressionStats,
}

impl BackendDecompressor for PassthroughDecompressor {
    type Batch = Vec<u8>;

    fn decompress_batch(&mut self, batch: &Self::Batch) -> Result<Vec<u8>> {
        if !batch.is_empty() {
            self.stats.chunks_decoded += 1;
        }
        Ok(batch.clone())
    }

    fn restore_payload_into(
        &mut self,
        packet_type: PacketType,
        bytes: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if packet_type != PacketType::Raw {
            self.stats.decode_failures += 1;
            return Err(GdError::Malformed(format!(
                "passthrough streams carry only raw (type 1) payloads, got type {}",
                packet_type.number()
            )));
        }
        out.extend_from_slice(bytes);
        self.stats.chunks_decoded += 1;
        Ok(())
    }

    fn stats(&self) -> &CompressionStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflate_backend_roundtrips_and_recycles() {
        let mut backend = DeflateBackend::default();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 23) as u8).collect();
        let member = backend.compress_batch(&data).unwrap();
        assert!(member.len() < data.len(), "redundant data compresses");
        let mut dec = backend.decompressor().unwrap();
        assert_eq!(dec.decompress_batch(&member).unwrap(), data);

        // Emission hands the buffer back to the pool.
        let mut emitted = Vec::new();
        backend
            .emit_batch(member, &mut |pt, bytes| {
                assert_eq!(pt, PacketType::Raw);
                emitted.push(bytes.to_vec());
            })
            .unwrap();
        assert_eq!(emitted.len(), 1);
        assert_eq!(backend.spare.len(), 1);
        let recycled = backend.compress_batch(&data).unwrap();
        assert_eq!(recycled, emitted[0], "recycled buffer compresses the same");
        assert!(backend.spare.is_empty());

        let stats = backend.stats();
        assert!(stats.is_consistent());
        assert_eq!(stats.chunks_in, 2);
        assert!(stats.compression_ratio().unwrap() < 1.0);
    }

    #[test]
    fn deflate_decoder_rejects_processed_payloads_and_corruption() {
        let mut backend = DeflateBackend::new(Level::Fast);
        let mut dec = backend.decompressor().unwrap();
        let mut out = Vec::new();
        assert!(dec
            .restore_payload_into(PacketType::Compressed, &[0u8; 8], &mut out)
            .is_err());
        let mut member = backend.compress_batch(b"hello hello hello").unwrap();
        let n = member.len();
        member[n - 1] ^= 0xFF;
        assert!(dec
            .restore_payload_into(PacketType::Raw, &member, &mut out)
            .is_err());
        assert_eq!(dec.stats().decode_failures, 2);
        assert!(out.is_empty(), "failed decodes append nothing");
    }

    #[test]
    fn passthrough_is_the_identity() {
        let mut backend = PassthroughBackend::new();
        let data = b"anything at all".to_vec();
        let batch = backend.compress_batch(&data).unwrap();
        assert_eq!(batch, data);
        let mut dec = backend.decompressor().unwrap();
        assert_eq!(dec.decompress_batch(&batch).unwrap(), data);
        let stats = backend.stats();
        assert_eq!(stats.bytes_in, stats.bytes_out);
        assert!(stats.is_consistent());
        assert!(!backend.supports_live_sync());
        assert!(backend.take_delta().is_empty());
        assert!(backend.snapshot().is_none());
    }

    #[test]
    fn empty_batches_emit_nothing() {
        let mut deflate = DeflateBackend::default();
        let batch = deflate.compress_batch(&[]).unwrap();
        let mut calls = 0;
        deflate.emit_batch(batch, &mut |_, _| calls += 1).unwrap();
        assert_eq!(calls, 0);
        assert_eq!(deflate.stats(), CompressionStats::new());
    }
}
