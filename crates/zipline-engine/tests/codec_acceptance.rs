//! PR-10 acceptance suite for the codec registry and self-describing
//! container (ISSUE 10):
//!
//! * `AutoBackend` lands within 5% of the best fixed backend's wire size on
//!   the sensor and DNS workloads — the router must not cost more than the
//!   hindsight-optimal fixed choice plus its probing overhead;
//! * the GD→deflate hybrid beats plain GD on the tracked sensor workload;
//! * property test: tagged mixed-codec streams roundtrip bit-identically
//!   through `EngineStream`, `PipelinedStream` and the durable store — the
//!   per-batch codec tags survive every path and a `RegistryDecompressor`
//!   reconstructs the input from the tags alone.

use std::cell::RefCell;
use std::path::PathBuf;

use proptest::prelude::*;
use zipline_deflate::Level;
use zipline_engine::{
    AutoBackend, AutoConfig, CodecCursor, CodecId, CommittedEntry, CompressionBackend,
    DeflateBackend, DictionaryUpdate, EngineBuilder, EngineConfig, EngineStream, GdBackend,
    HybridGdDeflateBackend, PipelinedStream, RegistryDecompressor, SpawnPolicy, CODEC_DEFLATE,
    CODEC_GD,
};
use zipline_gd::packet::PacketType;
use zipline_traces::{
    ChunkWorkload, DnsWorkload, DnsWorkloadConfig, SensorWorkload, SensorWorkloadConfig,
};

/// Small inline engine shape shared by every test: paper GD parameters,
/// 4 shards, single worker.
fn config() -> EngineConfig {
    let mut config = EngineConfig::paper_default();
    config.shards = 4;
    config.workers = 1;
    config.spawn = SpawnPolicy::Inline;
    config
}

/// Total wire bytes `backend` produces over `data`, batch by batch — the
/// apples-to-apples ratio probe (every backend sees identical batching).
fn wire_bytes<B: CompressionBackend>(backend: &mut B, data: &[u8], batch_bytes: usize) -> usize {
    let mut total = 0usize;
    for batch in data.chunks(batch_bytes) {
        let compressed = backend.compress_batch(batch).expect("batch compresses");
        backend
            .emit_batch(compressed, &mut |_, bytes| total += bytes.len())
            .expect("batch emits");
    }
    total
}

fn sensor_bytes() -> Vec<u8> {
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 16384,
        ..SensorWorkloadConfig::small()
    });
    workload.chunks().flatten().collect()
}

fn dns_bytes() -> Vec<u8> {
    let workload = DnsWorkload::new(DnsWorkloadConfig {
        queries: 16384,
        ..DnsWorkloadConfig::small()
    });
    workload.chunks().flatten().collect()
}

/// ISSUE-10 acceptance: on both evaluation workloads the auto router's
/// total wire size is within 5% of the best *fixed* backend — probing and
/// hysteresis are allowed to cost something, but not more than that.
#[test]
fn auto_is_within_5_percent_of_the_best_fixed_backend_on_sensor_and_dns() {
    let config = config();
    let batch_bytes = 64 * config.gd.chunk_bytes;
    for (name, data) in [("sensor", sensor_bytes()), ("dns", dns_bytes())] {
        let gd = wire_bytes(&mut GdBackend::new(config).unwrap(), &data, batch_bytes);
        let deflate = wire_bytes(&mut DeflateBackend::default(), &data, batch_bytes);
        let auto = wire_bytes(
            &mut AutoBackend::new(config, AutoConfig::default()).unwrap(),
            &data,
            batch_bytes,
        );
        let best = gd.min(deflate);
        assert!(
            auto as f64 <= best as f64 * 1.05,
            "{name}: auto {auto} B exceeds best fixed ({best} B: gd {gd}, \
             deflate {deflate}) by more than 5%"
        );
    }
}

/// ISSUE-10 acceptance: gzipping the GD residue beats plain GD on the
/// tracked sensor workload — the cross-chunk redundancy GD's per-chunk
/// deviations leave behind is real, not a synthetic artifact.
#[test]
fn hybrid_beats_plain_gd_on_the_sensor_workload() {
    let config = config();
    let batch_bytes = 64 * config.gd.chunk_bytes;
    let data = sensor_bytes();
    let gd = wire_bytes(&mut GdBackend::new(config).unwrap(), &data, batch_bytes);
    let hybrid = wire_bytes(
        &mut HybridGdDeflateBackend::new(config, Level::Default).unwrap(),
        &data,
        batch_bytes,
    );
    assert!(
        hybrid < gd,
        "hybrid ({hybrid} B) must beat plain GD ({gd} B) on the sensor workload"
    );
}

// ---------------------------------------------------------------------------
// Tagged mixed-codec roundtrip property
// ---------------------------------------------------------------------------

/// One element of the tagged wire in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Update(DictionaryUpdate),
    Payload(Option<CodecId>, PacketType, Vec<u8>),
}

/// Mixed workload: alternating GD-friendly segments (few chunk bases,
/// sparse deviations) and deflate-friendly segments (every chunk a fresh
/// basis, but text-like low-entropy bytes), so the auto router has a reason
/// to switch codecs mid-stream.
fn mixed_data(
    seed: u64,
    segments: usize,
    chunks_per_segment: usize,
    chunk_bytes: usize,
) -> Vec<u8> {
    let mut data = Vec::new();
    for s in 0..segments {
        for i in 0..chunks_per_segment {
            let mut chunk = vec![0u8; chunk_bytes];
            if (s + seed as usize).is_multiple_of(2) {
                // GD territory.
                chunk[0] = ((seed >> (s % 8)) as usize % 5) as u8;
                chunk[8] = 0xA5;
                if i % 7 == 0 {
                    chunk[20] ^= 0x10;
                }
            } else {
                // Deflate territory.
                for (j, byte) in chunk.iter_mut().enumerate() {
                    *byte = ((seed as usize + s * 131 + i * 17 + j * 7) % 9) as u8 + b'a';
                }
            }
            data.extend_from_slice(&chunk);
        }
    }
    data
}

fn auto_builder(dir: Option<&PathBuf>) -> EngineBuilder<AutoBackend> {
    let config = config();
    let mut builder = EngineBuilder::new().config(config).live_sync(true);
    if let Some(dir) = dir {
        builder = builder.durable(dir.clone());
    }
    builder.backend(AutoBackend::new(config, AutoConfig::default()).expect("auto builds"))
}

/// Runs `data` through a synchronous tagged `EngineStream`, collecting the
/// interleaved events with each payload's codec tag sampled off the cursor.
fn run_tagged_stream(
    dir: Option<&PathBuf>,
    data: &[u8],
    batch_units: usize,
    finish: bool,
) -> Vec<Event> {
    let mut engine = auto_builder(dir).build().expect("engine builds");
    let events: RefCell<Vec<Event>> = RefCell::new(Vec::new());
    let cursor = CodecCursor::new();
    let sampled = cursor.clone();
    let sink = |pt: PacketType, bytes: &[u8]| {
        events
            .borrow_mut()
            .push(Event::Payload(sampled.get(), pt, bytes.to_vec()));
    };
    let control_sink = Some(|update: &DictionaryUpdate| {
        events.borrow_mut().push(Event::Update(update.clone()));
    });
    let mut stream = EngineStream::with_control_sink(&mut engine, batch_units, sink, control_sink);
    stream.set_codec_cursor(cursor);
    stream.push_record(data).expect("push succeeds");
    if finish {
        stream.finish().expect("finish succeeds");
    } else {
        drop(stream);
    }
    events.into_inner()
}

/// Applies `events` to a fresh registry decoder, returning the restored
/// byte stream. Panics (failing the test) on any unknown tag or misorder.
fn decode(events: &[Event]) -> Vec<u8> {
    let mut decoder = RegistryDecompressor::new(config(), CODEC_GD).expect("decoder builds");
    let mut out = Vec::new();
    for event in events {
        match event {
            Event::Update(update) => decoder.apply_update(update).expect("update applies"),
            Event::Payload(codec, pt, bytes) => decoder
                .restore_payload_tagged(*codec, *pt, bytes, &mut out)
                .expect("payload decodes"),
        }
    }
    out
}

/// A deterministic mixed stream routes through *both* codecs and every
/// payload leaves tagged — the self-describing container in one picture.
#[test]
fn mixed_stream_is_fully_tagged_and_uses_both_codecs() {
    let chunk = config().gd.chunk_bytes;
    let data = mixed_data(0, 6, 64, chunk);
    let events = run_tagged_stream(None, &data, 16, true);
    let tags: Vec<CodecId> = events
        .iter()
        .filter_map(|e| match e {
            Event::Payload(codec, ..) => Some(codec.expect("tagging backend tags every payload")),
            Event::Update(_) => None,
        })
        .collect();
    assert!(tags.contains(&CODEC_GD), "GD batches appear");
    assert!(tags.contains(&CODEC_DEFLATE), "deflate batches appear");
    assert_eq!(decode(&events), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tagged mixed-codec streams roundtrip bit-identically through the
    /// synchronous stream, the pipelined stream and the durable store.
    #[test]
    fn tagged_mixed_codec_streams_roundtrip_bit_identically(
        seed in any::<u64>(),
        segments in 2usize..5,
        batches_per_segment in 1usize..4,
    ) {
        let chunk = config().gd.chunk_bytes;
        let batch_units = 16usize;
        let data = mixed_data(seed, segments, batches_per_segment * batch_units, chunk);

        // Path 1: synchronous EngineStream.
        let reference = run_tagged_stream(None, &data, batch_units, true);
        prop_assert!(reference.iter().all(|e| !matches!(e, Event::Payload(None, ..))),
            "a tagging backend leaves no payload untagged");
        prop_assert_eq!(decode(&reference), data.clone());

        // Path 2: PipelinedStream — byte- and tag-identical to path 1.
        let engine = auto_builder(None).pipelined(2).build().expect("engine builds");
        let events: RefCell<Vec<Event>> = RefCell::new(Vec::new());
        let cursor = CodecCursor::new();
        let sampled = cursor.clone();
        let sink = |pt: PacketType, bytes: &[u8]| {
            events.borrow_mut().push(Event::Payload(sampled.get(), pt, bytes.to_vec()));
        };
        let control_sink = Some(|update: &DictionaryUpdate| {
            events.borrow_mut().push(Event::Update(update.clone()));
        });
        let mut stream = PipelinedStream::with_control_sink(engine, batch_units, sink, control_sink)
            .expect("stream builds");
        stream.set_codec_cursor(cursor);
        stream.push_record(&data).expect("push succeeds");
        stream.finish().expect("finish succeeds");
        let pipelined = events.into_inner();
        prop_assert_eq!(&pipelined, &reference);

        // Path 3: durable store — a killed writer's journal preserves the
        // tags, and the committed prefix decodes bit-identically.
        let dir = std::env::temp_dir()
            .join(format!("zipline-codec-acceptance-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let emitted = run_tagged_stream(Some(&dir), &data, batch_units, false);
        let mut reopened = auto_builder(Some(&dir)).build().expect("engine reopens");
        let warm = reopened.take_warm_start().expect("store is warm");
        let committed: Vec<Event> = warm
            .committed
            .into_iter()
            .map(|entry| match entry {
                CommittedEntry::Frame { packet_type, codec, bytes } => {
                    Event::Payload(codec, packet_type, bytes)
                }
                CommittedEntry::Control(update) => Event::Update(update),
            })
            .collect();
        prop_assert_eq!(&committed, &emitted, "journal preserves order and tags");
        let restored = decode(&committed);
        prop_assert_eq!(&restored[..], &data[..warm.bytes_in as usize]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
