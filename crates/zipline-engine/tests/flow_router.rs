//! Property-test suite for the multi-tenant flow router (ISSUE 9
//! acceptance): N flows interleaved through **one** [`FlowRouter`] produce,
//! per flow, exactly the event stream of N **isolated** single-tenant
//! pipelined engines — for arbitrary shard/worker/spawn shapes, batch
//! sizes, push slicings and churn-heavy data (the tiny 6-bit dictionary
//! evicts constantly), with the in-band control frames preserved in
//! strictly-before-the-data order. A [`FlowDecoderPool`] driven by the
//! interleaved stream restores every flow bit-identically.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use proptest::prelude::*;
use zipline_engine::{
    DictionaryUpdate, EngineBuilder, EngineConfig, FlowDecoderPool, FlowEvent, FlowKey, FlowRouter,
    FlowRouterConfig, PipelinedStream, SpawnPolicy,
};
use zipline_gd::config::GdConfig;
use zipline_gd::packet::PacketType;

/// Small parameters so shards see churn and evictions: m = 3 (1-byte
/// chunks), 6-bit identifiers (64 total, 16 per shard at 4 shards).
fn small_gd() -> GdConfig {
    GdConfig::for_parameters(3, 6).unwrap()
}

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

/// One element of a flow's wire, with the tag stripped: a control update or
/// a payload, in emission order.
#[derive(Debug, Clone, PartialEq)]
enum RefEvent {
    Control(DictionaryUpdate),
    Payload(PacketType, Vec<u8>),
}

/// Runs `data` through one dedicated single-tenant pipelined engine — the
/// isolated reference a multiplexed flow must be indistinguishable from.
fn isolated_events(config: EngineConfig, batch_units: usize, data: &[u8]) -> Vec<RefEvent> {
    let engine = EngineBuilder::new()
        .config(config)
        .live_sync(true)
        .pipelined(2)
        .build()
        .expect("valid engine config");
    let events: Rc<RefCell<Vec<RefEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = {
        let events = Rc::clone(&events);
        move |pt: PacketType, bytes: &[u8]| {
            events
                .borrow_mut()
                .push(RefEvent::Payload(pt, bytes.to_vec()));
        }
    };
    let control_sink = {
        let events = Rc::clone(&events);
        move |update: &DictionaryUpdate| {
            events.borrow_mut().push(RefEvent::Control(update.clone()));
        }
    };
    let mut stream =
        PipelinedStream::with_control_sink(engine, batch_units, sink, Some(control_sink))
            .expect("pipelined engine");
    stream.push_record(data).expect("push succeeds");
    stream.finish().expect("finish succeeds");
    Rc::try_unwrap(events)
        .expect("sinks dropped with the stream")
        .into_inner()
}

/// Strips the flow tag, asserting it matches `key`.
fn untag(event: &FlowEvent) -> RefEvent {
    match event {
        FlowEvent::Control { update, .. } => RefEvent::Control(update.clone()),
        FlowEvent::Payload {
            packet_type, bytes, ..
        } => RefEvent::Payload(*packet_type, bytes.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The per-flow bit-identity criterion: route N interleaved flows
    /// through one router, compare each flow's tagged event stream to its
    /// isolated single-tenant reference, and restore every flow through one
    /// decoder pool fed the raw interleaving.
    #[test]
    fn interleaved_flows_are_bit_identical_to_isolated_engines(
        datas in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..400), 2..5),
        shard_exp in 0u32..3,
        workers in 1usize..4,
        spawn_selector in any::<u8>(),
        batch_units in 1usize..9,
        step in 1usize..48,
    ) {
        let engine = EngineConfig {
            gd: small_gd(),
            shards: 1usize << shard_exp,
            workers,
            spawn: spawn_of(spawn_selector),
        };
        let mut config = FlowRouterConfig::new(engine);
        config.batch_units = batch_units;
        let mut router: FlowRouter = FlowRouter::new(config).expect("valid router config");

        // Spread the flows across two tenants so tenant isolation is in
        // play, not just flow isolation.
        let keys: Vec<FlowKey> = (0..datas.len())
            .map(|i| FlowKey::new(1 + (i % 2) as u64, i as u64))
            .collect();
        for &key in &keys {
            router.open_flow(key, 0).expect("cold open");
        }

        // Interleave pushes round-robin in `step`-byte slices, draining the
        // tagged emissions as they appear.
        let mut tagged: Vec<FlowEvent> = Vec::new();
        let mut offsets = vec![0usize; datas.len()];
        loop {
            let mut pushed = false;
            for (i, data) in datas.iter().enumerate() {
                let at = offsets[i];
                if at < data.len() {
                    let end = (at + step).min(data.len());
                    router.push(keys[i], &data[at..end]).expect("push succeeds");
                    offsets[i] = end;
                    pushed = true;
                    tagged.extend(router.drain_events());
                }
            }
            if !pushed {
                break;
            }
        }
        for &key in &keys {
            router.end_flow(key).expect("finish succeeds");
            tagged.extend(router.drain_events());
        }

        // Per flow, the tagged subsequence equals the isolated reference.
        let mut per_flow: BTreeMap<FlowKey, Vec<RefEvent>> = BTreeMap::new();
        for event in &tagged {
            per_flow.entry(event.key()).or_default().push(untag(event));
        }
        for (i, data) in datas.iter().enumerate() {
            let reference = isolated_events(engine, batch_units, data);
            let observed = per_flow.remove(&keys[i]).unwrap_or_default();
            prop_assert_eq!(
                observed,
                reference,
                "flow {} diverged from its isolated engine",
                keys[i]
            );
        }
        prop_assert!(per_flow.is_empty(), "events appeared for unknown flows");

        // One decoder pool fed the raw interleaving restores every flow.
        let mut pool = FlowDecoderPool::new(engine);
        let mut restored: BTreeMap<FlowKey, Vec<u8>> = BTreeMap::new();
        for &key in &keys {
            pool.open(key).expect("pool open");
            restored.insert(key, Vec::new());
        }
        for event in &tagged {
            let out = restored.get_mut(&event.key()).expect("known flow");
            pool.decode_event(event, out).expect("decode succeeds");
        }
        for (i, data) in datas.iter().enumerate() {
            prop_assert_eq!(
                &restored[&keys[i]],
                data,
                "flow {} did not restore bit-identically",
                keys[i]
            );
        }
    }
}
