//! Property-test suite for the non-GD backends (ISSUE 4 acceptance):
//!
//! * [`DeflateBackend`] roundtrips arbitrary record batches bit-exactly
//!   through [`EngineStream`] for **any** shard/worker/spawn shape and batch
//!   size — the engine axes it deliberately ignores must never change its
//!   bytes, and the wire form must always restore;
//! * the deflate wire output itself is a pure function of `(data, batch
//!   boundaries)` — worker count and spawn policy never change a byte;
//! * [`PassthroughBackend`] is the identity on the wire (the ratio floor);
//! * attaching a live-sync control sink to a delta-less backend is a
//!   harmless no-op: zero updates, identical payloads.

use proptest::prelude::*;
use zipline_engine::{
    DeflateBackend, DictionaryUpdate, EngineBuilder, EngineStream, PassthroughBackend, SpawnPolicy,
};
use zipline_gd::packet::PacketType;

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

/// Streams `records` through a deflate engine of the given shape, returning
/// the emitted wire payloads.
fn deflate_wire(
    shards: usize,
    workers: usize,
    spawn: SpawnPolicy,
    batch_units: usize,
    records: &[Vec<u8>],
) -> Vec<(PacketType, Vec<u8>)> {
    let mut engine = EngineBuilder::new()
        .shards(shards)
        .workers(workers)
        .spawn(spawn)
        .backend(DeflateBackend::default())
        .build()
        .expect("valid engine shape");
    let mut wire = Vec::new();
    let mut stream = EngineStream::new(&mut engine, batch_units, |pt, bytes| {
        wire.push((pt, bytes.to_vec()));
    });
    for record in records {
        stream.push_record(record).expect("push succeeds");
    }
    stream.finish().expect("finish succeeds");
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deflate roundtrips arbitrary record batches bit-exactly through the
    /// generic stream for any engine shape, and its wire bytes are
    /// independent of the worker/shard/spawn axes.
    #[test]
    fn deflate_stream_roundtrips_for_any_shape(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..12,
        ),
        shard_exp in 0u32..4,
        workers in 1usize..6,
        spawn_selector in any::<u8>(),
        batch_units in 1usize..600,
    ) {
        let wire = deflate_wire(
            1usize << shard_exp,
            workers,
            spawn_of(spawn_selector),
            batch_units,
            &records,
        );
        // Byte-exact restoration through the mirrored decompressor.
        let mut dec = EngineBuilder::new()
            .backend(DeflateBackend::default())
            .build_decompressor()
            .expect("valid decoder");
        let mut restored = Vec::new();
        for (pt, bytes) in &wire {
            prop_assert_eq!(*pt, PacketType::Raw);
            dec.restore_payload_into(*pt, bytes, &mut restored).expect("member decodes");
        }
        let input: Vec<u8> = records.iter().flatten().copied().collect();
        prop_assert_eq!(restored, input);

        // The wire is a pure function of (data, batch boundaries): the
        // 1-shard/1-worker/inline stream emits identical bytes.
        let reference = deflate_wire(1, 1, SpawnPolicy::Inline, batch_units, &records);
        prop_assert_eq!(wire, reference);
    }

    /// Passthrough is the identity on the wire for any shape, and a control
    /// sink attached to it never fires.
    #[test]
    fn passthrough_stream_is_identity_for_any_shape(
        data in proptest::collection::vec(any::<u8>(), 0..800),
        workers in 1usize..5,
        spawn_selector in any::<u8>(),
        batch_units in 1usize..300,
    ) {
        let mut engine = EngineBuilder::new()
            .workers(workers)
            .spawn(spawn_of(spawn_selector))
            .backend(PassthroughBackend::new())
            .build()
            .expect("valid engine shape");
        let mut wire = Vec::new();
        let mut updates = 0usize;
        let mut stream = EngineStream::new(&mut engine, batch_units, |pt, bytes: &[u8]| {
            assert_eq!(pt, PacketType::Raw);
            wire.extend_from_slice(bytes);
        })
        .control(|_: &DictionaryUpdate| updates += 1);
        stream.push_record(&data).expect("push succeeds");
        let summary = stream.finish().expect("finish succeeds");
        prop_assert_eq!(&wire, &data);
        prop_assert_eq!(summary.wire_bytes, data.len() as u64);
        prop_assert_eq!(summary.control_updates, 0);
        prop_assert_eq!(updates, 0);

        let mut dec = engine.decompressor().expect("valid decoder");
        let mut restored = Vec::new();
        if !wire.is_empty() {
            dec.restore_payload_into(PacketType::Raw, &wire, &mut restored)
                .expect("identity decodes");
        }
        prop_assert_eq!(restored, data);
    }
}
