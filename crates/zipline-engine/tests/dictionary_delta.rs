//! Contract tests for the live-sync [`DictionaryDelta`] (ISSUE 3):
//!
//! * a decoder that maintains a plain `id → basis` map by applying every
//!   update with `at <= i` before decoding record `i` reconstructs the
//!   stream bit-exactly, even when the workload churns the dictionary far
//!   past capacity;
//! * the delta's ordering guarantees hold: `seq` strictly increasing,
//!   updates sorted by `at`, each eviction's `Remove` immediately preceding
//!   the `Install` that recycles its identifier;
//! * the delta is a pure function of `(data, shard count)` — worker count
//!   and spawn policy never change it;
//! * the post-hoc snapshot provably *cannot* express a churned stream (the
//!   aliasing bug the live protocol fixes), pinned at the engine level.

use std::collections::HashMap;

use zipline_engine::{CompressionEngine, DictionaryDelta, EngineBuilder, SpawnPolicy, UpdateOp};
use zipline_gd::bits::BitVec;
use zipline_gd::codec::{ChunkCodec, DecodeScratch, Record};
use zipline_gd::config::GdConfig;
use zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

/// 64 identifiers, 32-byte chunks — small enough to churn cheaply.
fn churny_gd() -> GdConfig {
    GdConfig::for_parameters(8, 6).unwrap()
}

fn engine(gd: GdConfig, shards: usize, workers: usize, spawn: SpawnPolicy) -> CompressionEngine {
    EngineBuilder::new()
        .gd(gd)
        .shards(shards)
        .workers(workers)
        .spawn(spawn)
        .live_sync(true)
        .build()
        .unwrap()
}

/// `distinct` distinct bases (≥ 3-bit pairwise distance so none fold
/// together), each appearing `repeats` times in a row — the shared
/// `zipline_traces::churn` fixture.
fn churn_workload(distinct: u32, repeats: u32, chunk_bytes: usize) -> Vec<u8> {
    ChurnWorkload::new(ChurnWorkloadConfig {
        distinct,
        repeats,
        chunk_len: chunk_bytes,
    })
    .bytes()
}

/// Decodes one batch's records against an `id → basis` map kept live by the
/// delta: every update with `at <= i` is applied before record `i`.
fn decode_with_delta(
    codec: &ChunkCodec,
    records: &[Record],
    delta: &DictionaryDelta,
    table: &mut HashMap<u64, BitVec>,
    out: &mut Vec<u8>,
) {
    let mut scratch = DecodeScratch::new();
    let mut updates = delta.updates.iter().peekable();
    for (i, record) in records.iter().enumerate() {
        while updates.peek().is_some_and(|u| u.at <= i as u64) {
            match &updates.next().expect("peeked").op {
                UpdateOp::Install { id, basis } => {
                    table.insert(*id, basis.clone());
                }
                UpdateOp::Remove { id } => {
                    table.remove(id);
                }
            }
        }
        match record {
            Record::NewBasis {
                extra,
                deviation,
                basis,
            } => codec
                .decode_parts_into(extra, *deviation, basis, &mut scratch, out)
                .unwrap(),
            Record::Ref {
                extra,
                deviation,
                id,
            } => {
                let basis = table
                    .get(id)
                    .unwrap_or_else(|| panic!("Ref id {id} must be installed before use"));
                codec
                    .decode_parts_into(extra, *deviation, basis, &mut scratch, out)
                    .unwrap()
            }
            Record::RawTail { bytes } => out.extend_from_slice(bytes),
        }
    }
    for update in updates {
        match &update.op {
            UpdateOp::Install { id, basis } => {
                table.insert(*id, basis.clone());
            }
            UpdateOp::Remove { id } => {
                table.remove(id);
            }
        }
    }
}

#[test]
fn delta_replay_decodes_churned_streams_bit_exactly() {
    let gd = churny_gd();
    let codec = ChunkCodec::new(&gd).unwrap();
    // 8x the identifier space, in several batches.
    let data = churn_workload(8 * gd.dictionary_capacity() as u32, 2, gd.chunk_bytes);
    let mut engine = engine(gd, 4, 2, SpawnPolicy::Inline);
    let mut table = HashMap::new();
    let mut out = Vec::new();
    for batch in data.chunks(64 * gd.chunk_bytes) {
        let stream = engine.compress_batch(batch).unwrap();
        let delta = engine.take_delta();
        decode_with_delta(&codec, &stream.records, &delta, &mut table, &mut out);
    }
    assert_eq!(out, data);
    assert!(
        engine.stats().evictions > 0,
        "the workload must recycle identifiers"
    );
    assert!(
        table.len() <= gd.dictionary_capacity(),
        "removes keep the mirrored table bounded by the dictionary capacity"
    );
}

#[test]
fn delta_ordering_guarantees_hold() {
    let gd = churny_gd();
    let data = churn_workload(4 * gd.dictionary_capacity() as u32, 2, gd.chunk_bytes);
    let mut engine = engine(gd, 4, 2, SpawnPolicy::Inline);
    let n_records = (data.len() / gd.chunk_bytes) as u64;
    let mut last_seq: Option<u64> = None;

    for batch in data.chunks(64 * gd.chunk_bytes) {
        engine.compress_batch(batch).unwrap();
        let delta = engine.take_delta();
        assert!(!delta.is_empty(), "every churny batch journals updates");
        let mut pending_remove: Option<u64> = None;
        for window in delta.updates.windows(2) {
            assert!(window[0].at <= window[1].at, "updates sorted by position");
        }
        for update in &delta.updates {
            // seq strictly increases across batches.
            assert!(last_seq.is_none_or(|s| update.seq > s), "monotonic seq");
            last_seq = Some(update.seq);
            assert!(update.at < n_records, "positions lie within the batch");
            match &update.op {
                UpdateOp::Remove { id } => {
                    assert!(pending_remove.is_none(), "removes come singly");
                    pending_remove = Some(*id);
                }
                UpdateOp::Install { id, .. } => {
                    if let Some(removed) = pending_remove.take() {
                        assert_eq!(
                            removed, *id,
                            "an eviction's Remove immediately precedes the Install \
                             recycling the same identifier"
                        );
                    }
                }
            }
        }
        assert!(pending_remove.is_none(), "no dangling Remove");
    }
}

#[test]
fn delta_is_a_pure_function_of_data_and_shard_count() {
    let gd = churny_gd();
    let data = churn_workload(3 * gd.dictionary_capacity() as u32, 3, gd.chunk_bytes);
    for shards in [1usize, 4] {
        let mut reference: Option<DictionaryDelta> = None;
        for workers in [1usize, 2, 5] {
            for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads] {
                let mut engine = engine(gd, shards, workers, spawn);
                engine.compress_batch(&data).unwrap();
                let delta = engine.take_delta();
                match &reference {
                    None => reference = Some(delta),
                    Some(r) => assert_eq!(
                        &delta, r,
                        "shards = {shards}, workers = {workers}, spawn = {spawn:?} \
                         changed the delta"
                    ),
                }
            }
        }
    }
}

/// Engine-level pin of the aliasing bug: decoding a churned stream against
/// the final snapshot resolves pre-eviction `Ref`s to the *latest* basis at
/// their recycled identifier — silent corruption, no decode failure.
#[test]
fn post_hoc_snapshot_aliases_recycled_identifiers() {
    let gd = churny_gd();
    let codec = ChunkCodec::new(&gd).unwrap();
    let data = churn_workload(4 * gd.dictionary_capacity() as u32, 2, gd.chunk_bytes);
    let mut engine = engine(gd, 4, 2, SpawnPolicy::Inline);
    let stream = engine.compress_batch(&data).unwrap();
    assert!(engine.stats().evictions > 0);

    let snapshot_table: HashMap<u64, BitVec> = engine.snapshot().entries.into_iter().collect();
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    for record in &stream.records {
        match record {
            Record::NewBasis {
                extra,
                deviation,
                basis,
            } => codec
                .decode_parts_into(extra, *deviation, basis, &mut scratch, &mut out)
                .unwrap(),
            Record::Ref {
                extra,
                deviation,
                id,
            } => {
                // The snapshot holds *some* basis for every live id; a
                // pre-eviction Ref gets the wrong one.
                let basis = snapshot_table.get(id).expect("snapshot covers live ids");
                codec
                    .decode_parts_into(extra, *deviation, basis, &mut scratch, &mut out)
                    .unwrap()
            }
            Record::RawTail { bytes } => out.extend_from_slice(bytes),
        }
    }
    assert_ne!(out, data, "snapshot decode must misrestore under churn");
}
