//! Property-test suite for the sharded engine (ISSUE 2 acceptance):
//!
//! * engine output decompresses byte-identically to the input for **any**
//!   shard count, worker count and spawn policy;
//! * the compressed stream is a pure function of `(data, shard count)` —
//!   worker count and spawn policy never change a byte;
//! * the 1-shard/1-worker configuration is byte-identical to
//!   [`GdCompressor::compress_batch`], records and statistics included;
//! * [`GdDecompressor::decompress_batch`] (the recycled-scratch batch decode)
//!   equals the per-record reference loop.

use proptest::prelude::*;
use zipline_engine::{CompressionEngine, EngineConfig, EngineDecompressor, SpawnPolicy};
use zipline_gd::codec::{CompressedStream, GdCompressor, GdDecompressor};
use zipline_gd::config::GdConfig;

/// Small parameters so shards see churn and evictions: m = 3 (1-byte
/// chunks), 6-bit identifiers (64 total, 16 per shard at 4 shards).
fn small_gd() -> GdConfig {
    GdConfig::for_parameters(3, 6).unwrap()
}

fn engine_config(gd: GdConfig, shards: usize, workers: usize, spawn: SpawnPolicy) -> EngineConfig {
    EngineConfig {
        gd,
        shards,
        workers,
        spawn,
    }
}

fn compress_with(config: EngineConfig, data: &[u8]) -> CompressedStream {
    let mut engine = CompressionEngine::new(config).expect("valid engine config");
    engine.compress_batch(data).expect("compression succeeds")
}

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (shards, workers, spawn) roundtrips byte-identically through the
    /// mirrored decompressor.
    #[test]
    fn engine_roundtrips_for_any_shape(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        shard_exp in 0u32..4,
        workers in 1usize..6,
        spawn_selector in any::<u8>(),
    ) {
        let config = engine_config(
            small_gd(),
            1usize << shard_exp,
            workers,
            spawn_of(spawn_selector),
        );
        let stream = compress_with(config, &data);
        let mut dec = EngineDecompressor::new(&config).expect("valid decoder config");
        prop_assert_eq!(dec.decompress_batch(&stream).expect("decode succeeds"), data);
    }

    /// The stream depends on the shard count only: sweeping workers and
    /// spawn policies at a fixed shard count yields identical bytes.
    #[test]
    fn stream_is_independent_of_worker_count(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        shard_exp in 0u32..4,
    ) {
        let shards = 1usize << shard_exp;
        let reference = compress_with(
            engine_config(small_gd(), shards, 1, SpawnPolicy::Inline),
            &data,
        );
        for workers in [2usize, 3, 5, 8] {
            for spawn in [SpawnPolicy::Threads, SpawnPolicy::Auto] {
                let stream = compress_with(engine_config(small_gd(), shards, workers, spawn), &data);
                prop_assert_eq!(
                    &stream, &reference,
                    "shards = {}, workers = {}, spawn = {:?}", shards, workers, spawn
                );
            }
        }
    }

    /// 1 shard / 1 worker reproduces the single-threaded compressor exactly:
    /// same records, same serialized bytes, same statistics.
    #[test]
    fn one_shard_one_worker_matches_compress_batch(
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let gd = small_gd();
        let engine_stream = compress_with(EngineConfig::single_threaded(gd), &data);
        let mut reference = GdCompressor::new(&gd).expect("valid config");
        let reference_stream = reference.compress_batch(&data).expect("compression succeeds");
        prop_assert_eq!(&engine_stream, &reference_stream);
        prop_assert_eq!(engine_stream.to_bytes(), reference_stream.to_bytes());

        let mut engine = CompressionEngine::new(EngineConfig::single_threaded(gd)).unwrap();
        engine.compress_batch(&data).unwrap();
        prop_assert_eq!(engine.stats(), *reference.stats());
    }

    /// Engine streams with one shard also decode through the plain
    /// (unsharded) decompressor, and vice versa via the serialized format.
    #[test]
    fn one_shard_streams_decode_with_plain_decompressor(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        workers in 1usize..5,
    ) {
        let gd = small_gd();
        let config = engine_config(gd, 1, workers, SpawnPolicy::Auto);
        let stream = compress_with(config, &data);
        let parsed = CompressedStream::from_bytes(&stream.to_bytes()).expect("parses");
        let mut dec = GdDecompressor::new(&gd).expect("valid config");
        prop_assert_eq!(dec.decompress_batch(&parsed).expect("decodes"), data);
    }

    /// The recycled-scratch batch decode equals the per-record reference
    /// loop, statistics included.
    #[test]
    fn batch_decode_matches_record_loop(
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let gd = small_gd();
        let mut comp = GdCompressor::new(&gd).expect("valid config");
        let stream = comp.compress_batch(&data).expect("compression succeeds");

        let mut batch = GdDecompressor::new(&gd).expect("valid config");
        let batch_out = batch.decompress_batch(&stream).expect("batch decode");

        let mut reference = GdDecompressor::new(&gd).expect("valid config");
        let mut reference_out = Vec::new();
        for record in &stream.records {
            reference_out.extend_from_slice(
                &reference.decompress_record(record).expect("record decode"),
            );
        }

        prop_assert_eq!(&batch_out, &reference_out);
        prop_assert_eq!(batch_out, data);
        prop_assert_eq!(batch.stats(), reference.stats());
    }

    /// Paper-parameter smoke property: the threaded engine at realistic
    /// scale roundtrips and stays self-consistent.
    #[test]
    fn paper_params_threaded_roundtrip(
        seed in any::<u8>(),
        chunks in 1usize..80,
    ) {
        let gd = GdConfig::paper_default();
        let config = engine_config(gd, 8, 4, SpawnPolicy::Threads);
        let mut data = Vec::with_capacity(chunks * 32);
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = seed.wrapping_add((i % 7) as u8);
            chunk[9] = (i % 3) as u8;
            data.extend_from_slice(&chunk);
        }
        let mut engine = CompressionEngine::new(config).expect("valid config");
        let stream = engine.compress_batch(&data).expect("compression succeeds");
        let mut dec = EngineDecompressor::new(&config).expect("valid config");
        prop_assert_eq!(dec.decompress_batch(&stream).expect("decodes"), data);
        prop_assert!(engine.stats().is_consistent());
    }
}
