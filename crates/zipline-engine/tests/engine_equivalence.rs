//! Property-test suite for the sharded engine (ISSUE 2 acceptance):
//!
//! * engine output decompresses byte-identically to the input for **any**
//!   shard count, worker count and spawn policy;
//! * the compressed stream is a pure function of `(data, shard count)` —
//!   worker count and spawn policy never change a byte;
//! * the 1-shard/1-worker configuration is byte-identical to
//!   [`GdCompressor::compress_batch`], records and statistics included;
//! * [`GdDecompressor::decompress_batch`] (the recycled-scratch batch decode)
//!   equals the per-record reference loop;
//! * (ISSUE 3) the live-sync interleaved control+data stream roundtrips
//!   bit-exactly for any shard/worker/spawn shape, including workloads that
//!   churn the dictionary far past capacity — a decoder driven only by the
//!   in-order event stream never sees an identifier it cannot restore;
//! * (ISSUE 4) the same 1-shard/1-worker equivalence holds across the
//!   [`CompressionBackend`] trait boundary — the generic engine cannot
//!   drift from `GdCompressor::compress_batch` however it is driven.

use std::cell::RefCell;
use std::collections::HashMap;

use proptest::prelude::*;
use zipline_engine::{
    CompressionBackend, CompressionEngine, DictionaryUpdate, EngineConfig, EngineDecompressor,
    EngineStream, GdBackend, SpawnPolicy, UpdateOp,
};
use zipline_gd::bits::BitVec;
use zipline_gd::codec::{
    ChunkCodec, CompressedStream, DecodeScratch, GdCompressor, GdDecompressor,
};
use zipline_gd::config::GdConfig;
use zipline_gd::packet::{PacketType, ZipLinePayload};

/// Small parameters so shards see churn and evictions: m = 3 (1-byte
/// chunks), 6-bit identifiers (64 total, 16 per shard at 4 shards).
fn small_gd() -> GdConfig {
    GdConfig::for_parameters(3, 6).unwrap()
}

fn engine_config(gd: GdConfig, shards: usize, workers: usize, spawn: SpawnPolicy) -> EngineConfig {
    EngineConfig {
        gd,
        shards,
        workers,
        spawn,
    }
}

fn compress_with(config: EngineConfig, data: &[u8]) -> CompressedStream {
    let mut engine = CompressionEngine::new(config).expect("valid engine config");
    engine.compress_batch(data).expect("compression succeeds")
}

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

/// One element of the live-sync wire: a dictionary update or a payload, in
/// emission order.
#[derive(Debug, Clone)]
enum WireEvent {
    Update(DictionaryUpdate),
    Payload(PacketType, Vec<u8>),
}

/// Runs `data` through a live-sync [`EngineStream`], capturing control
/// updates and payloads into one interleaved event sequence.
fn live_sync_events(config: EngineConfig, batch_chunks: usize, data: &[u8]) -> Vec<WireEvent> {
    let mut engine = CompressionEngine::new(config).expect("valid engine config");
    let events: RefCell<Vec<WireEvent>> = RefCell::new(Vec::new());
    let sink = |pt: PacketType, bytes: &[u8]| {
        events
            .borrow_mut()
            .push(WireEvent::Payload(pt, bytes.to_vec()));
    };
    let control_sink = |update: &DictionaryUpdate| {
        events.borrow_mut().push(WireEvent::Update(update.clone()));
    };
    let mut stream =
        EngineStream::with_control_sink(&mut engine, batch_chunks, sink, Some(control_sink));
    stream.push_record(data).expect("push succeeds");
    stream.finish().expect("finish succeeds");
    events.into_inner()
}

/// Replays an interleaved event sequence the way a live-synced decoder
/// would: updates maintain the `id → basis` table, payloads decode against
/// it. Panics when a compressed payload references an identifier the
/// preceding control traffic has not installed.
fn replay_events(gd: &GdConfig, events: &[WireEvent]) -> Vec<u8> {
    let codec = ChunkCodec::new(gd).expect("valid codec");
    let mut table: HashMap<u64, BitVec> = HashMap::new();
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();
    for event in events {
        match event {
            WireEvent::Update(update) => match &update.op {
                UpdateOp::Install { id, basis } => {
                    table.insert(*id, basis.clone());
                }
                UpdateOp::Remove { id } => {
                    table.remove(id);
                }
            },
            WireEvent::Payload(pt, bytes) => {
                match ZipLinePayload::decode(gd, *pt, bytes).expect("well-formed payload") {
                    ZipLinePayload::Raw(raw) => out.extend_from_slice(&raw),
                    ZipLinePayload::Uncompressed {
                        deviation,
                        extra,
                        basis,
                    } => codec
                        .decode_parts_into(&extra, deviation, &basis, &mut scratch, &mut out)
                        .expect("decode succeeds"),
                    ZipLinePayload::Compressed {
                        deviation,
                        extra,
                        id,
                    } => {
                        let basis = table.get(&id).unwrap_or_else(|| {
                            panic!("Ref id {id} not installed before its first use")
                        });
                        codec
                            .decode_parts_into(&extra, deviation, basis, &mut scratch, &mut out)
                            .expect("decode succeeds")
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (shards, workers, spawn) roundtrips byte-identically through the
    /// mirrored decompressor.
    #[test]
    fn engine_roundtrips_for_any_shape(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        shard_exp in 0u32..4,
        workers in 1usize..6,
        spawn_selector in any::<u8>(),
    ) {
        let config = engine_config(
            small_gd(),
            1usize << shard_exp,
            workers,
            spawn_of(spawn_selector),
        );
        let stream = compress_with(config, &data);
        let mut dec = EngineDecompressor::new(config).expect("valid decoder config");
        prop_assert_eq!(dec.decompress_batch(&stream).expect("decode succeeds"), data);
    }

    /// The stream depends on the shard count only: sweeping workers and
    /// spawn policies at a fixed shard count yields identical bytes.
    #[test]
    fn stream_is_independent_of_worker_count(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        shard_exp in 0u32..4,
    ) {
        let shards = 1usize << shard_exp;
        let reference = compress_with(
            engine_config(small_gd(), shards, 1, SpawnPolicy::Inline),
            &data,
        );
        for workers in [2usize, 3, 5, 8] {
            for spawn in [SpawnPolicy::Threads, SpawnPolicy::Auto] {
                let stream = compress_with(engine_config(small_gd(), shards, workers, spawn), &data);
                prop_assert_eq!(
                    &stream, &reference,
                    "shards = {}, workers = {}, spawn = {:?}", shards, workers, spawn
                );
            }
        }
    }

    /// 1 shard / 1 worker reproduces the single-threaded compressor exactly:
    /// same records, same serialized bytes, same statistics.
    #[test]
    fn one_shard_one_worker_matches_compress_batch(
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let gd = small_gd();
        let engine_stream = compress_with(EngineConfig::single_threaded(gd), &data);
        let mut reference = GdCompressor::new(&gd).expect("valid config");
        let reference_stream = reference.compress_batch(&data).expect("compression succeeds");
        prop_assert_eq!(&engine_stream, &reference_stream);
        prop_assert_eq!(engine_stream.to_bytes(), reference_stream.to_bytes());

        let mut engine = CompressionEngine::new(EngineConfig::single_threaded(gd)).unwrap();
        engine.compress_batch(&data).unwrap();
        prop_assert_eq!(engine.stats(), *reference.stats());
    }

    /// (ISSUE 4) The PR-2/PR-3 invariant asserted across the
    /// `CompressionBackend` trait boundary: a `GdBackend` driven exclusively
    /// through the trait's `compress_batch` in the 1-shard/1-worker config
    /// stays bit-identical to `GdCompressor::compress_batch`, serialized
    /// bytes and statistics included — the generic engine shell cannot
    /// drift from the reference codec.
    #[test]
    fn gd_backend_through_trait_boundary_matches_compress_batch(
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let gd = small_gd();
        let mut backend =
            <GdBackend as CompressionBackend>::from_engine_config(&EngineConfig::single_threaded(gd))
                .expect("valid config");
        let stream =
            CompressionBackend::compress_batch(&mut backend, &data).expect("compression succeeds");
        let mut reference = GdCompressor::new(&gd).expect("valid config");
        let reference_stream = reference.compress_batch(&data).expect("compression succeeds");
        prop_assert_eq!(&stream, &reference_stream);
        prop_assert_eq!(stream.to_bytes(), reference_stream.to_bytes());
        prop_assert_eq!(CompressionBackend::stats(&backend), *reference.stats());
    }

    /// Engine streams with one shard also decode through the plain
    /// (unsharded) decompressor, and vice versa via the serialized format.
    #[test]
    fn one_shard_streams_decode_with_plain_decompressor(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        workers in 1usize..5,
    ) {
        let gd = small_gd();
        let config = engine_config(gd, 1, workers, SpawnPolicy::Auto);
        let stream = compress_with(config, &data);
        let parsed = CompressedStream::from_bytes(&stream.to_bytes()).expect("parses");
        let mut dec = GdDecompressor::new(&gd).expect("valid config");
        prop_assert_eq!(dec.decompress_batch(&parsed).expect("decodes"), data);
    }

    /// The recycled-scratch batch decode equals the per-record reference
    /// loop, statistics included.
    #[test]
    fn batch_decode_matches_record_loop(
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let gd = small_gd();
        let mut comp = GdCompressor::new(&gd).expect("valid config");
        let stream = comp.compress_batch(&data).expect("compression succeeds");

        let mut batch = GdDecompressor::new(&gd).expect("valid config");
        let batch_out = batch.decompress_batch(&stream).expect("batch decode");

        let mut reference = GdDecompressor::new(&gd).expect("valid config");
        let mut reference_out = Vec::new();
        for record in &stream.records {
            reference_out.extend_from_slice(
                &reference.decompress_record(record).expect("record decode"),
            );
        }

        prop_assert_eq!(&batch_out, &reference_out);
        prop_assert_eq!(batch_out, data);
        prop_assert_eq!(batch.stats(), reference.stats());
    }

    /// (ISSUE 3) Live sync: the interleaved control+data stream roundtrips
    /// bit-exactly for any shard/worker/spawn shape and batch size, on a
    /// configuration whose dictionary (4 identifiers, 16 possible bases)
    /// churns constantly — every `Ref` must be preceded by its install and
    /// recycled identifiers must be retired in order.
    #[test]
    fn live_sync_interleaved_stream_roundtrips_under_churn(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        shard_exp in 0u32..3,
        workers in 1usize..6,
        spawn_selector in any::<u8>(),
        batch_chunks in 1usize..48,
    ) {
        // Capacity 4 with m = 3 (1-byte chunks): random bytes exceed
        // capacity several-fold, forcing evictions and identifier recycling.
        let gd = GdConfig::for_parameters(3, 2).unwrap();
        let config = engine_config(gd, 1usize << shard_exp, workers, spawn_of(spawn_selector));
        let events = live_sync_events(config, batch_chunks, &data);
        prop_assert_eq!(replay_events(&gd, &events), data);
    }

    /// The interleaved event stream is itself a pure function of
    /// `(data, shard count, batch size)`: worker count and spawn policy
    /// change neither payloads nor control updates.
    #[test]
    fn live_sync_events_independent_of_worker_count(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        shard_exp in 0u32..3,
    ) {
        let gd = GdConfig::for_parameters(3, 2).unwrap();
        let shards = 1usize << shard_exp;
        let reference = live_sync_events(
            engine_config(gd, shards, 1, SpawnPolicy::Inline),
            16,
            &data,
        );
        for workers in [2usize, 4] {
            for spawn in [SpawnPolicy::Threads, SpawnPolicy::Auto] {
                let events = live_sync_events(engine_config(gd, shards, workers, spawn), 16, &data);
                prop_assert_eq!(events.len(), reference.len());
                for (a, b) in events.iter().zip(reference.iter()) {
                    match (a, b) {
                        (WireEvent::Update(x), WireEvent::Update(y)) => prop_assert_eq!(x, y),
                        (WireEvent::Payload(tx, bx), WireEvent::Payload(ty, by)) => {
                            prop_assert_eq!(tx, ty);
                            prop_assert_eq!(bx, by);
                        }
                        _ => prop_assert!(false, "event kinds diverge"),
                    }
                }
            }
        }
    }

    /// Paper-parameter smoke property: the threaded engine at realistic
    /// scale roundtrips and stays self-consistent.
    #[test]
    fn paper_params_threaded_roundtrip(
        seed in any::<u8>(),
        chunks in 1usize..80,
    ) {
        let gd = GdConfig::paper_default();
        let config = engine_config(gd, 8, 4, SpawnPolicy::Threads);
        let mut data = Vec::with_capacity(chunks * 32);
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = seed.wrapping_add((i % 7) as u8);
            chunk[9] = (i % 3) as u8;
            data.extend_from_slice(&chunk);
        }
        let mut engine = CompressionEngine::new(config).expect("valid config");
        let stream = engine.compress_batch(&data).expect("compression succeeds");
        let mut dec = EngineDecompressor::new(config).expect("valid config");
        prop_assert_eq!(dec.decompress_batch(&stream).expect("decodes"), data);
        prop_assert!(engine.stats().is_consistent());
    }
}
