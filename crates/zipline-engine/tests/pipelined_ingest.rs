//! Acceptance suite for pipelined ingest (ISSUE 5):
//!
//! * [`PipelinedStream`] output — payload bytes *and* interleaved control
//!   updates — is **bit-identical** to the synchronous [`EngineStream`] for
//!   any shard count, worker count, spawn policy, pipeline depth and batch
//!   size, including workloads that churn the dictionary past capacity with
//!   live sync on (the proptest at the bottom);
//! * the 1-shard/1-worker pipelined stream reproduces
//!   [`GdCompressor::compress_batch`]'s records on the wire byte for byte;
//! * edge cases: zero records, dropping the stream mid-batch (channel
//!   closed with data in flight), and a depth-1 bounded channel with the
//!   worker forced on (backpressure engaged on every batch).

use std::cell::RefCell;

use proptest::prelude::*;
use zipline_engine::{
    CompressionEngine, DictionaryUpdate, EngineBuilder, EngineError, EngineStream, GdBackend,
    PipelinedStream, SpawnPolicy,
};
use zipline_gd::codec::GdCompressor;
use zipline_gd::config::GdConfig;
use zipline_gd::error::Result;
use zipline_gd::packet::{PacketType, ZipLinePayload};

/// Result alias for code driving the streams (which surface the engine's
/// typed error, not the bare codec error).
type EngineResult<T> = std::result::Result<T, EngineError>;

/// One element of the live-sync wire: a dictionary update or a payload, in
/// emission order (the same shape `engine_equivalence.rs` uses).
#[derive(Debug, Clone, PartialEq, Eq)]
enum WireEvent {
    Update(DictionaryUpdate),
    Payload(PacketType, Vec<u8>),
}

/// Captured output of one stream run: the interleaved event sequence plus
/// the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StreamRun {
    events: Vec<WireEvent>,
    summary: zipline_engine::StreamSummary,
}

fn engine_for(
    gd: GdConfig,
    shards: usize,
    workers: usize,
    spawn: SpawnPolicy,
    depth: usize,
) -> CompressionEngine<GdBackend> {
    EngineBuilder::new()
        .gd(gd)
        .shards(shards)
        .workers(workers)
        .spawn(spawn)
        .pipelined(depth)
        .build()
        .expect("valid engine config")
}

/// Runs `records` through the synchronous [`EngineStream`].
fn run_sync(
    mut engine: CompressionEngine<GdBackend>,
    batch_units: usize,
    records: &[Vec<u8>],
    live_sync: bool,
) -> EngineResult<StreamRun> {
    let events: RefCell<Vec<WireEvent>> = RefCell::new(Vec::new());
    let sink = |pt: PacketType, bytes: &[u8]| {
        events
            .borrow_mut()
            .push(WireEvent::Payload(pt, bytes.to_vec()));
    };
    let control_sink = live_sync.then_some(|update: &DictionaryUpdate| {
        events.borrow_mut().push(WireEvent::Update(update.clone()));
    });
    let mut stream = EngineStream::with_control_sink(&mut engine, batch_units, sink, control_sink);
    for record in records {
        stream.push_record(record)?;
    }
    let summary = stream.finish()?;
    Ok(StreamRun {
        events: events.into_inner(),
        summary,
    })
}

/// Runs `records` through the [`PipelinedStream`].
fn run_pipelined(
    engine: CompressionEngine<GdBackend>,
    batch_units: usize,
    records: &[Vec<u8>],
    live_sync: bool,
) -> EngineResult<StreamRun> {
    let events: RefCell<Vec<WireEvent>> = RefCell::new(Vec::new());
    let sink = |pt: PacketType, bytes: &[u8]| {
        events
            .borrow_mut()
            .push(WireEvent::Payload(pt, bytes.to_vec()));
    };
    let control_sink = live_sync.then_some(|update: &DictionaryUpdate| {
        events.borrow_mut().push(WireEvent::Update(update.clone()));
    });
    let mut stream = PipelinedStream::with_control_sink(engine, batch_units, sink, control_sink)?;
    for record in records {
        stream.push_record(record)?;
    }
    let (_engine, summary) = stream.finish()?;
    Ok(StreamRun {
        events: events.into_inner(),
        summary,
    })
}

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

#[test]
fn zero_records_emit_nothing() {
    for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads, SpawnPolicy::Auto] {
        let engine = engine_for(GdConfig::paper_default(), 4, 2, spawn, 2);
        let mut emitted = 0usize;
        let stream = PipelinedStream::new(engine, 16, |_, _| emitted += 1).unwrap();
        let (engine, summary) = stream.finish().unwrap();
        assert_eq!(emitted, 0, "spawn = {spawn:?}");
        assert_eq!(summary, Default::default(), "spawn = {spawn:?}");
        assert_eq!(engine.stats().chunks_in, 0, "spawn = {spawn:?}");
    }
}

#[test]
fn empty_records_are_free() {
    let engine = engine_for(GdConfig::paper_default(), 4, 2, SpawnPolicy::Threads, 1);
    let mut stream = PipelinedStream::new(engine, 4, |_, _| {}).unwrap();
    for _ in 0..100 {
        stream.push_record(&[]).unwrap();
    }
    let (_, summary) = stream.finish().unwrap();
    assert_eq!(summary.bytes_in, 0);
    assert_eq!(summary.payloads_emitted, 0);
}

/// Dropping the stream closes the channel with batches (and a partial fill)
/// still in flight: the worker must drain and exit without panicking or
/// deadlocking, and nothing is emitted from `drop`.
#[test]
fn drop_mid_batch_closes_the_channel_cleanly() {
    let emitted = RefCell::new(0usize);
    {
        let engine = engine_for(GdConfig::paper_default(), 4, 2, SpawnPolicy::Threads, 1);
        let mut stream =
            PipelinedStream::new(engine, 8, |_, _| *emitted.borrow_mut() += 1).unwrap();
        // Several full batches plus a ragged remainder left in the fill
        // buffer — then the stream is abandoned.
        stream.push_record(&vec![5u8; 32 * 8 * 4 + 7]).unwrap();
    }
    // Whatever was drained before the drop stays below the full stream's
    // payload count; the partial batch is definitely gone.
    let total = *emitted.borrow();
    assert!(
        total <= 32,
        "drop must not flush the pipeline (saw {total})"
    );
}

/// Depth 1 with the worker forced on: every dispatch beyond the first two
/// blocks on the bounded channel until the worker catches up. The stream
/// must make progress and produce the exact synchronous output.
#[test]
fn depth_one_backpressure_still_produces_identical_output() {
    let gd = GdConfig::paper_default();
    let data: Vec<u8> = (0..32 * 300).map(|i| (i / 96) as u8).collect();
    let records: Vec<Vec<u8>> = data.chunks(65).map(|c| c.to_vec()).collect();

    let sync = run_sync(
        engine_for(gd, 4, 2, SpawnPolicy::Inline, 1),
        4,
        &records,
        true,
    )
    .unwrap();
    let piped = run_pipelined(
        engine_for(gd, 4, 2, SpawnPolicy::Threads, 1),
        4,
        &records,
        true,
    )
    .unwrap();
    assert!(piped.summary.payloads_emitted > 10);
    assert_eq!(piped, sync);
}

/// A backend that fails compression on a chosen batch, to exercise the
/// worker's error path end to end.
#[derive(Debug, Default)]
struct FailingBackend {
    batches: usize,
    fail_at: usize,
}

impl zipline_engine::CompressionBackend for FailingBackend {
    type Batch = Vec<u8>;
    type Decompressor = zipline_engine::PassthroughDecompressor;

    fn from_engine_config(_config: &zipline_engine::EngineConfig) -> Result<Self> {
        Ok(Self::default())
    }

    fn codec_id(&self) -> zipline_engine::CodecId {
        zipline_engine::CODEC_PASSTHROUGH
    }

    fn unit_bytes(&self) -> usize {
        1
    }

    fn compress_batch(&mut self, data: &[u8]) -> Result<Self::Batch> {
        self.batches += 1;
        if self.batches == self.fail_at {
            return Err(zipline_gd::error::GdError::InvalidConfig(
                "synthetic mid-stream failure".into(),
            ));
        }
        Ok(data.to_vec())
    }

    fn emit_batch(
        &mut self,
        batch: Self::Batch,
        emit: &mut dyn FnMut(PacketType, &[u8]),
    ) -> Result<()> {
        emit(PacketType::Raw, &batch);
        Ok(())
    }

    fn stats(&self) -> zipline_gd::stats::CompressionStats {
        zipline_gd::stats::CompressionStats::new()
    }

    fn decompressor(&self) -> Result<Self::Decompressor> {
        Ok(Default::default())
    }
}

/// A worker-side compression error surfaces through `push_record` or
/// `finish` instead of hanging the pipeline, for both backings.
#[test]
fn worker_errors_surface_to_the_caller() {
    for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads] {
        let mut engine = CompressionEngine::from_backend(FailingBackend {
            batches: 0,
            fail_at: 3,
        });
        engine.set_pipeline(Some(zipline_engine::PipelineConfig { depth: 1, spawn }));
        let mut stream = PipelinedStream::new(engine, 64, |_, _| {}).unwrap();
        // Six 64-byte batches; the third compress fails. The error may
        // arrive on any push after the failing dispatch or at finish —
        // but it must arrive, and the pipeline must not deadlock.
        let mut result: EngineResult<()> = Ok(());
        for _ in 0..6 {
            result = stream.push_record(&[0xAAu8; 64]);
            if result.is_err() {
                break;
            }
        }
        let final_result = match result {
            Err(e) => Err(e),
            Ok(()) => stream.finish().map(|_| ()),
        };
        let err = final_result.expect_err("the synthetic failure must surface");
        assert!(
            err.to_string().contains("synthetic mid-stream failure"),
            "spawn = {spawn:?}: unexpected error {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Bit-identity pins
// ---------------------------------------------------------------------------

/// The 1-shard/1-worker pipelined stream serializes exactly the records
/// `GdCompressor::compress_batch` would produce, payload for payload — the
/// PR-2 invariant extended through the asynchronous ingest layer.
#[test]
fn single_shard_pipelined_wire_matches_gd_compressor() {
    let gd = GdConfig::paper_default();
    let mut data: Vec<u8> = (0..32 * 64).map(|i| (i / 128) as u8).collect();
    data.extend_from_slice(b"ragged tail");

    // Expected wire: the reference compressor's records, serialized through
    // the same payload codec. One batch spans the whole input so record
    // boundaries agree with a single compress_batch call.
    let batch_units = data.len() / gd.chunk_bytes + 1;
    let mut reference = GdCompressor::new(&gd).unwrap();
    let stream = reference.compress_batch(&data).unwrap();
    let mut expected: Vec<(PacketType, Vec<u8>)> = Vec::new();
    for record in stream.records {
        let payload = match record {
            zipline_gd::codec::Record::NewBasis {
                extra,
                deviation,
                basis,
            } => ZipLinePayload::Uncompressed {
                deviation,
                extra,
                basis,
            },
            zipline_gd::codec::Record::Ref {
                extra,
                deviation,
                id,
            } => ZipLinePayload::Compressed {
                deviation,
                extra,
                id,
            },
            zipline_gd::codec::Record::RawTail { bytes } => ZipLinePayload::Raw(bytes),
        };
        let mut bytes = Vec::new();
        payload.encode_into(&gd, &mut bytes).unwrap();
        expected.push((payload.packet_type(), bytes));
    }

    for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads] {
        let engine = engine_for(gd, 1, 1, spawn, 2);
        let mut emitted: Vec<(PacketType, Vec<u8>)> = Vec::new();
        let mut piped = PipelinedStream::new(engine, batch_units, |pt, bytes: &[u8]| {
            emitted.push((pt, bytes.to_vec()));
        })
        .unwrap();
        piped.push_record(&data).unwrap();
        piped.finish().unwrap();
        assert_eq!(emitted, expected, "spawn = {spawn:?}");
    }
}

/// Pipelined output is a pure function of `(data, shard count, batch
/// size)`: depth, spawn policy and worker count never change a byte or an
/// event — mirroring the synchronous stream's purity guarantee.
#[test]
fn pipelined_output_is_pure_in_shape_knobs() {
    let gd = GdConfig::for_parameters(3, 4).unwrap();
    let data: Vec<u8> = (0..512u32).map(|i| (i % 41) as u8).collect();
    let records: Vec<Vec<u8>> = data.chunks(23).map(|c| c.to_vec()).collect();
    let reference = run_pipelined(
        engine_for(gd, 4, 1, SpawnPolicy::Inline, 1),
        16,
        &records,
        true,
    )
    .unwrap();
    for workers in [2usize, 3] {
        for spawn in [SpawnPolicy::Threads, SpawnPolicy::Auto] {
            for depth in [1usize, 2, 4] {
                let run =
                    run_pipelined(engine_for(gd, 4, workers, spawn, depth), 16, &records, true)
                        .unwrap();
                assert_eq!(
                    run, reference,
                    "workers = {workers}, spawn = {spawn:?}, depth = {depth}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Proptest equivalence: PipelinedStream == EngineStream
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any shard/worker/spawn/depth shape, batch size and record
    /// segmentation — on a dictionary small enough that random bytes churn
    /// it constantly, with live sync on — the pipelined stream emits the
    /// same interleaved event sequence and the same summary as the
    /// synchronous stream.
    #[test]
    fn pipelined_equals_engine_stream_under_churn(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        record_len in 1usize..64,
        shard_exp in 0u32..3,
        workers in 1usize..5,
        spawn_selector in any::<u8>(),
        depth in 1usize..5,
        batch_units in 1usize..48,
        live_sync in any::<bool>(),
    ) {
        // Capacity 4 with m = 3 (1-byte chunks): random data exceeds
        // capacity several-fold, forcing evictions and recycling.
        let gd = GdConfig::for_parameters(3, 2).unwrap();
        let shards = 1usize << shard_exp;
        let spawn = spawn_of(spawn_selector);
        let records: Vec<Vec<u8>> = data.chunks(record_len).map(|c| c.to_vec()).collect();

        let sync = run_sync(
            engine_for(gd, shards, workers, spawn, depth),
            batch_units,
            &records,
            live_sync,
        ).expect("sync stream");
        let piped = run_pipelined(
            engine_for(gd, shards, workers, spawn, depth),
            batch_units,
            &records,
            live_sync,
        ).expect("pipelined stream");
        prop_assert_eq!(piped, sync);
    }

    /// Same equivalence at paper parameters on redundant sensor-style data
    /// (the non-churn regime), sweeping the pipeline depth.
    #[test]
    fn pipelined_equals_engine_stream_at_paper_params(
        seed in any::<u8>(),
        chunks in 1usize..96,
        depth in 1usize..4,
        batch_units in 1usize..24,
    ) {
        let gd = GdConfig::paper_default();
        let mut data = Vec::with_capacity(chunks * 32);
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = seed.wrapping_add((i % 6) as u8);
            chunk[17] = (i % 4) as u8;
            data.extend_from_slice(&chunk);
        }
        let records = vec![data];
        let sync = run_sync(
            engine_for(gd, 8, 4, SpawnPolicy::Auto, depth),
            batch_units,
            &records,
            true,
        ).expect("sync stream");
        let piped = run_pipelined(
            engine_for(gd, 8, 4, SpawnPolicy::Threads, depth),
            batch_units,
            &records,
            true,
        ).expect("pipelined stream");
        prop_assert_eq!(piped, sync);
    }
}
