//! Acceptance suite for the durable engine store (ISSUE 6).
//!
//! The crash-recovery property under test: for a stream killed at an
//! arbitrary point, the store recovers a dictionary **bit-identical to a
//! valid committed prefix** of the run, and the frames committed before
//! the kill concatenated with the frames a *resumed* stream produces are
//! **bit-identical** to an uninterrupted run from that batch boundary —
//! no duplicated, lost or silently altered wire bytes. Durability must
//! also be observably free when nothing crashes: a durable stream emits
//! the same bytes as an in-memory one.

use std::cell::RefCell;
use std::path::PathBuf;

use zipline_engine::{
    CommittedEntry, CompressionEngine, DictionaryUpdate, EngineBuilder, EngineStream, GdBackend,
    PipelinedStream, SpawnPolicy,
};
use zipline_gd::config::GdConfig;
use zipline_gd::packet::PacketType;
use zipline_traces::CrashWorkload;

/// One element of the wire in emission order (payload or control update) —
/// the unit the bit-identity assertions compare.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WireEvent {
    Update(DictionaryUpdate),
    Payload(PacketType, Vec<u8>),
}

/// A fresh per-test store directory under the system temp dir.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zipline-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small churny engine: 64 identifiers, 32-byte chunks, live sync on.
fn builder(dir: Option<&PathBuf>) -> EngineBuilder {
    let mut b = EngineBuilder::new()
        .gd(GdConfig::for_parameters(8, 6).unwrap())
        .shards(4)
        .workers(2)
        .spawn(SpawnPolicy::Inline)
        .live_sync(true);
    if let Some(dir) = dir {
        b = b.durable(dir.clone());
    }
    b
}

/// Runs `data` through a synchronous [`EngineStream`] over `engine`,
/// collecting the interleaved wire events. `finish` controls whether the
/// stream is completed (trailing flush + store compaction) or dropped
/// mid-flight like a crashed process.
fn run_stream(
    engine: &mut CompressionEngine<GdBackend>,
    batch_units: usize,
    data: &[u8],
    finish: bool,
) -> Vec<WireEvent> {
    let events: RefCell<Vec<WireEvent>> = RefCell::new(Vec::new());
    let sink = |pt: PacketType, bytes: &[u8]| {
        events
            .borrow_mut()
            .push(WireEvent::Payload(pt, bytes.to_vec()));
    };
    let control_sink = Some(|update: &DictionaryUpdate| {
        events.borrow_mut().push(WireEvent::Update(update.clone()));
    });
    let mut stream = EngineStream::with_control_sink(engine, batch_units, sink, control_sink);
    stream.push_record(data).unwrap();
    if finish {
        stream.finish().unwrap();
    } else {
        drop(stream);
    }
    events.into_inner()
}

/// The store's committed entries in the same event shape the sinks see.
fn committed_events(committed: Vec<CommittedEntry>) -> Vec<WireEvent> {
    committed
        .into_iter()
        .map(|entry| match entry {
            CommittedEntry::Frame {
                packet_type, bytes, ..
            } => WireEvent::Payload(packet_type, bytes),
            CommittedEntry::Control(update) => WireEvent::Update(update),
        })
        .collect()
}

#[test]
fn durable_stream_emits_the_same_bytes_as_an_in_memory_one() {
    let dir = store_dir("transparent");
    let data = CrashWorkload::exceeding_capacity(64, 4, 32).full().bytes();

    let mut plain = builder(None).build().unwrap();
    let reference = run_stream(&mut plain, 16, &data, true);

    let mut durable = builder(Some(&dir)).build().unwrap();
    assert!(durable.take_warm_start().is_none(), "fresh store is cold");
    let observed = run_stream(&mut durable, 16, &data, true);

    assert_eq!(observed, reference, "commit-then-emit changes no byte");
    assert!(reference.iter().any(|e| matches!(e, WireEvent::Update(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance property at a batch boundary: kill the writer
/// after N whole batches (no finish, no compaction), restart over the same
/// directory, and the committed frames plus the resumed stream's frames
/// are bit-identical to one uninterrupted run.
#[test]
fn killed_stream_resumes_bit_identically_from_the_last_commit() {
    let workload = CrashWorkload::exceeding_capacity(64, 4, 32);
    let data = workload.full().bytes();
    let batch_units = 16usize;
    let chunk = 32usize;

    let mut reference_engine = builder(None).build().unwrap();
    let reference = run_stream(&mut reference_engine, batch_units, &data, true);

    // Sweep several kill points (in whole batches) including one past the
    // dictionary's first eviction wave.
    for kill_after_batches in [1usize, 3, 7] {
        let dir = store_dir(&format!("kill-{kill_after_batches}"));
        let cut = kill_after_batches * batch_units * chunk;
        assert!(cut < data.len(), "kill point inside the stream");

        // Phase 1: the doomed writer. Whole batches only — the buffered
        // remainder (none here) and anything unfinished die with it.
        let mut engine = builder(Some(&dir)).build().unwrap();
        let emitted_before = run_stream(&mut engine, batch_units, &data[..cut], false);
        drop(engine);

        // Phase 2: restart. The store must hand back exactly what phase 1
        // emitted (sinks only see committed batches, and every whole batch
        // was committed) plus the resume cursor.
        let mut engine = builder(Some(&dir)).build().unwrap();
        let warm = engine.take_warm_start().expect("store is warm");
        assert_eq!(warm.batches, kill_after_batches as u64);
        assert_eq!(warm.bytes_in, cut as u64, "resume cursor in input bytes");
        assert!(warm.exact, "cadence-1 checkpoints restore bit-exactly");
        let committed = committed_events(warm.committed);
        assert_eq!(committed, emitted_before, "durable output = emitted output");

        // Phase 3: resume feeding from the recovered cursor.
        let resumed = run_stream(&mut engine, batch_units, &data[cut..], true);

        let mut rejoined = committed;
        rejoined.extend(resumed);
        assert_eq!(
            rejoined, reference,
            "kill after {kill_after_batches} batches: committed ++ resumed \
             frames must be bit-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A kill *mid-batch* loses only the uncommitted tail: the committed
/// prefix is a valid batch boundary, and bytes_in tells the producer how
/// much input to re-feed.
#[test]
fn mid_batch_kill_loses_only_the_uncommitted_tail() {
    let dir = store_dir("mid-batch");
    let workload = CrashWorkload::exceeding_capacity(64, 4, 32);
    let data = workload.full().bytes();
    let batch_units = 16usize;
    // 2 whole batches plus 5 chunks of a third: the tail never commits.
    let cut = (2 * batch_units + 5) * 32;

    let mut engine = builder(Some(&dir)).build().unwrap();
    let emitted = run_stream(&mut engine, batch_units, &data[..cut], false);
    drop(engine);

    let mut engine = builder(Some(&dir)).build().unwrap();
    let warm = engine.take_warm_start().expect("store is warm");
    assert_eq!(warm.batches, 2, "the partial third batch never committed");
    assert_eq!(warm.bytes_in, (2 * batch_units * 32) as u64);
    assert_eq!(
        committed_events(warm.committed),
        emitted,
        "everything the sinks saw was committed — nothing more"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pipelined stream holds the store caller-side and commits before
/// emitting; its durable output matches the synchronous durable stream
/// byte for byte, and after `finish` the store is compacted and
/// re-attached so a reopen warm-starts at the full stream boundary.
#[test]
fn pipelined_durable_stream_matches_and_reattaches_the_store() {
    let data = CrashWorkload::exceeding_capacity(64, 4, 32).full().bytes();
    let batch_units = 16usize;

    let sync_dir = store_dir("piped-sync");
    let mut sync_engine = builder(Some(&sync_dir)).build().unwrap();
    let reference = run_stream(&mut sync_engine, batch_units, &data, true);

    for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads] {
        let dir = store_dir(&format!("piped-{spawn:?}"));
        let engine = builder(Some(&dir))
            .spawn(spawn)
            .pipelined(2)
            .build()
            .unwrap();
        let events: RefCell<Vec<WireEvent>> = RefCell::new(Vec::new());
        let sink = |pt: PacketType, bytes: &[u8]| {
            events
                .borrow_mut()
                .push(WireEvent::Payload(pt, bytes.to_vec()));
        };
        let control_sink = Some(|update: &DictionaryUpdate| {
            events.borrow_mut().push(WireEvent::Update(update.clone()));
        });
        let mut stream =
            PipelinedStream::with_control_sink(engine, batch_units, sink, control_sink).unwrap();
        stream.push_record(&data).unwrap();
        let (engine, _) = stream.finish().unwrap();
        assert_eq!(
            events.into_inner(),
            reference,
            "spawn = {spawn:?}: pipelined durable wire diverges"
        );
        let store = engine.store().expect("finish re-attaches the store");
        let batch_bytes = batch_units * 32;
        let whole = (data.len() / batch_bytes) as u64;
        let expected = whole + u64::from(!data.len().is_multiple_of(batch_bytes));
        assert_eq!(store.batches_committed(), expected);
        drop(engine);

        // Reopen: the compacted store warm-starts at the final boundary
        // with the full dictionary.
        let mut reopened = builder(Some(&dir)).build().unwrap();
        let warm = reopened.take_warm_start().expect("store is warm");
        assert_eq!(warm.bytes_in, data.len() as u64);
        assert!(warm.committed.is_empty(), "compaction retired the journal");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&sync_dir);
}

/// A killed *pipelined* writer recovers exactly like the synchronous one:
/// the committed prefix plus a resumed synchronous run reproduces the
/// uninterrupted wire.
#[test]
fn killed_pipelined_stream_recovers_at_a_commit_boundary() {
    let workload = CrashWorkload::exceeding_capacity(64, 4, 32);
    let data = workload.full().bytes();
    let batch_units = 16usize;
    let cut = workload.crash_offset_bytes();
    assert_eq!(cut % (batch_units * 32), 0, "crash at a batch boundary");

    let mut reference_engine = builder(None).build().unwrap();
    let reference = run_stream(&mut reference_engine, batch_units, &data, true);

    let dir = store_dir("piped-kill");
    let engine = builder(Some(&dir))
        .spawn(SpawnPolicy::Threads)
        .pipelined(2)
        .build()
        .unwrap();
    let mut stream = PipelinedStream::new(engine, batch_units, |_, _| {}).unwrap();
    stream.push_record(&data[..cut]).unwrap();
    // Abandon the stream without finish: the worker drains, commits stop at
    // the last whole batch, no compaction happens.
    drop(stream);

    let mut engine = builder(Some(&dir)).build().unwrap();
    let warm = engine.take_warm_start().expect("store is warm");
    // Dropping a threaded stream abandons in-flight shuttles without
    // committing them, so the durable cursor may trail the bytes pushed —
    // but it must sit on a batch boundary at or before the kill point.
    let resume = warm.bytes_in as usize;
    assert!(resume > 0 && resume <= cut, "cursor inside the fed prefix");
    assert!(
        resume.is_multiple_of(batch_units * 32),
        "cursor on a batch boundary"
    );
    assert!(
        !warm.exact,
        "pipelined commits carry no checkpoints; recovery folds the delta log"
    );
    let mut rejoined = committed_events(warm.committed);
    rejoined.extend(run_stream(&mut engine, batch_units, &data[resume..], true));
    assert_eq!(rejoined, reference);
    let _ = std::fs::remove_dir_all(&dir);
}
