//! Property tests for the backend-generic [`EngineHostPath`] (ISSUE 4):
//! `DeflateBackend` roundtrips arbitrary record batches bit-exactly through
//! the full host path — records → `EngineStream` batching → gzip members →
//! Ethernet frames → decoder-switch forwarding → mirrored decompressor —
//! for **any** shard/worker/spawn shape, and the emitted frame bytes are a
//! pure function of `(data, batch size)`.

use proptest::prelude::*;
use zipline::decoder::{DecoderConfig, ZipLineDecodeProgram};
use zipline::host::{EngineHostPath, HostPathConfig};
use zipline_engine::{DeflateBackend, EngineConfig, SpawnPolicy};
use zipline_gd::packet::PacketType;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::time::SimTime;
use zipline_switch::packet_ctx::PacketContext;
use zipline_switch::program::PipelineProgram;

fn spawn_of(selector: u8) -> SpawnPolicy {
    match selector % 3 {
        0 => SpawnPolicy::Auto,
        1 => SpawnPolicy::Inline,
        _ => SpawnPolicy::Threads,
    }
}

fn host_config(
    shards: usize,
    workers: usize,
    spawn: SpawnPolicy,
    batch_bytes: usize,
) -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            shards,
            workers,
            spawn,
            ..EngineConfig::paper_default()
        },
        batch_chunks: batch_bytes, // unit_bytes == 1 for deflate
        ..HostPathConfig::paper_default()
    }
}

/// Compresses `records` through a deflate host path, returning the frames.
fn deflate_frames(
    shards: usize,
    workers: usize,
    spawn: SpawnPolicy,
    batch_bytes: usize,
    records: &[Vec<u8>],
) -> (EngineHostPath<DeflateBackend>, Vec<EthernetFrame>) {
    let mut host = EngineHostPath::with_backend(
        host_config(shards, workers, spawn, batch_bytes),
        DeflateBackend::default(),
    )
    .expect("valid host config");
    let mut frames = Vec::new();
    for record in records {
        let (batch, _) = host.compress_to_frames(record).expect("compress succeeds");
        frames.extend(batch);
    }
    (host, frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary record batches roundtrip bit-exactly through
    /// `EngineStream` + `EngineHostPath` for any shard/worker/spawn shape,
    /// with the frames forwarded by the decoder switch program on the way.
    #[test]
    fn deflate_host_path_roundtrips_for_any_shape(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..300),
            1..8,
        ),
        shard_exp in 0u32..4,
        workers in 1usize..6,
        spawn_selector in any::<u8>(),
        batch_bytes in 64usize..2048,
    ) {
        let spawn = spawn_of(spawn_selector);
        let (host, frames) =
            deflate_frames(1 << shard_exp, workers, spawn, batch_bytes, &records);

        // The wire is independent of the worker/shard/spawn axes: the
        // 1/1/inline host path emits byte-identical frames.
        let (_, reference) = deflate_frames(1, 1, SpawnPolicy::Inline, batch_bytes, &records);
        prop_assert_eq!(&frames, &reference);

        // Forward every frame through the decoder switch program (gzip
        // members travel as raw frames and pass through untouched), then
        // restore with the mirrored backend decompressor.
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let data_port = decoder.config().data_egress_port;
        let mut dec = host.decompressor().expect("mirror builds");
        let mut restored = Vec::new();
        for frame in frames {
            let mut ctx = PacketContext::new(0, frame);
            decoder.ingress(&mut ctx, SimTime::ZERO);
            prop_assert_eq!(ctx.egress_port, Some(data_port));
            dec.restore_payload_into(PacketType::Raw, &ctx.frame.payload, &mut restored)
                .expect("member decodes");
        }
        let input: Vec<u8> = records.iter().flatten().copied().collect();
        prop_assert_eq!(restored, input);
        prop_assert_eq!(decoder.stats().decode_failures, 0);
    }
}
