//! ZipLine: in-network compression at line speed — reproduction of the
//! CoNEXT 2020 paper.
//!
//! This crate assembles the pieces provided by the substrate crates into the
//! system the paper describes:
//!
//! * [`encoder`] / [`decoder`] — the ZipLine encode and decode switch
//!   programs (Figures 1 and 2), expressed against the Tofino-like
//!   primitives of `zipline-switch` (CRC extern, constant syndrome-mask
//!   table, match-action basis tables, digests, counters);
//! * [`controller`] — the encoder-side control plane: identifier pool with
//!   LRU recycling, pending installs, and the two-phase
//!   reverse-mapping-first protocol of section 5;
//! * [`control`] — the out-of-band control-channel message format used
//!   between the two ZipLine instances;
//! * [`engine_control`] / [`host`] — the engine-backed host path, generic
//!   over the engine's `CompressionBackend`: end hosts compress with
//!   `zipline_engine::CompressionEngine<B>` (GD by default; deflate/gzip
//!   and passthrough ride the same pipeline) and, for the GD backend, the
//!   [`engine_control::EngineControlPlane`] streams incremental
//!   install/remove traffic in-band with the data frames, so the decoder
//!   switch stays in sync even when the dictionary churns past capacity;
//! * [`deployment`] — ready-made simulated topologies (sender → encoder
//!   switch → decoder switch → receiver, plus the out-of-band control link);
//! * [`experiment`] — the drivers that reproduce every figure of the paper's
//!   evaluation (compression ratios, throughput, latency, dynamic-learning
//!   delay), shared by the examples and the benchmark harness.
//!
//! # Quick start
//!
//! ```
//! use zipline::deployment::{ZipLineDeployment, DeploymentConfig};
//! use zipline_gd::GdConfig;
//!
//! // Two switches with the paper's parameters, ideal links.
//! let mut deployment = ZipLineDeployment::new(DeploymentConfig {
//!     gd: GdConfig::paper_default(),
//!     ..DeploymentConfig::fast_test()
//! }).unwrap();
//!
//! // Send the same 32-byte payload five times; after the control plane has
//! // learned the basis, packets travel compressed and are restored
//! // byte-exactly at the receiver.
//! let payload = vec![0xAB; 32];
//! let received = deployment.run_payloads(&vec![payload.clone(); 5]).unwrap();
//! assert_eq!(received.len(), 5);
//! assert!(received.iter().all(|p| p == &payload));
//! ```

pub mod control;
pub mod controller;
pub mod decoder;
pub mod deployment;
pub mod encoder;
pub mod engine_control;
pub mod error;
pub mod experiment;
pub mod host;
pub mod mask_table;

pub use controller::EncoderControlPlane;
pub use decoder::ZipLineDecodeProgram;
pub use deployment::{DeploymentConfig, ZipLineDeployment};
pub use encoder::ZipLineEncodeProgram;
pub use engine_control::{EngineControlPlane, FlowControlPlanes};
pub use error::ZipLineError;
