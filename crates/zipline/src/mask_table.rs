//! The constant syndrome → bit-flip-mask table.
//!
//! Section 5: "We use a P4 table with constant entries that are pre-computed
//! using a short C++ program making use of Boost CRC library. The entry that
//! matches the syndrome is XORed to the data, hence flipping the appropriate
//! bit of the sequence."
//!
//! [`SyndromeMaskTable`] plays the role of that constant-entries table: it is
//! built once at program-load time (our equivalent of the offline C++
//! precomputation) from the same generator polynomial as the CRC extern, and
//! the data plane only ever performs an exact-match lookup on the syndrome
//! value.

use crate::error::Result;
use zipline_gd::bits::BitVec;
use zipline_gd::hamming::HammingCode;

/// Constant-entries table mapping each syndrome value to the `n`-bit mask
/// whose XOR undoes the corresponding single-bit deviation.
///
/// Because every non-zero entry has exactly one set bit, the data path does
/// not need to materialise the mask: [`Self::lookup_flip`] returns the bit
/// *position* instead, and the XOR of the mask degenerates to a single-word
/// bit flip. [`Self::lookup`] still serves the full masks for diagnostics
/// and the resource-inventory view of the table.
#[derive(Debug, Clone)]
pub struct SyndromeMaskTable {
    masks: Vec<BitVec>,
    /// `positions[s]` is the bit position flipped by syndrome `s`
    /// (`None` for the zero syndrome).
    positions: Vec<Option<usize>>,
    /// Data-plane lookups performed (diagnostics).
    lookups: std::cell::Cell<u64>,
}

impl SyndromeMaskTable {
    /// Precomputes the table for the Hamming code with parameter `m`
    /// (the offline step the paper performs with Boost.CRC).
    pub fn precompute(code: &HammingCode) -> Result<Self> {
        let n = code.n();
        let mut masks = Vec::with_capacity(n + 1);
        let mut positions = Vec::with_capacity(n + 1);
        for syndrome in 0..=(n as u64) {
            masks.push(code.error_mask(syndrome)?);
            positions.push(code.error_position(syndrome)?);
        }
        Ok(Self {
            masks,
            positions,
            lookups: std::cell::Cell::new(0),
        })
    }

    /// Number of entries (always `n + 1`: the zero syndrome plus one entry
    /// per bit position).
    pub fn entries(&self) -> usize {
        self.masks.len()
    }

    /// Number of lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Exact-match lookup: returns the mask for a syndrome, or `None` for a
    /// syndrome value outside the table (cannot happen for a well-formed
    /// CRC result, but the data plane must not panic on anything).
    pub fn lookup(&self, syndrome: u64) -> Option<&BitVec> {
        self.lookups.set(self.lookups.get() + 1);
        usize::try_from(syndrome)
            .ok()
            .and_then(|s| self.masks.get(s))
    }

    /// Exact-match lookup returning the flip *position* instead of the mask:
    /// `Some(None)` for the zero syndrome (no flip), `Some(Some(p))` for a
    /// single-bit deviation at position `p`, `None` for out-of-range
    /// syndromes. Applying the entry is a single-word bit flip.
    pub fn lookup_flip(&self, syndrome: u64) -> Option<Option<usize>> {
        self.lookups.set(self.lookups.get() + 1);
        usize::try_from(syndrome)
            .ok()
            .and_then(|s| self.positions.get(s))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_n_plus_one_entries() {
        let code = HammingCode::new(3).unwrap();
        let table = SyndromeMaskTable::precompute(&code).unwrap();
        assert_eq!(table.entries(), 8);
        let code = HammingCode::new(8).unwrap();
        let table = SyndromeMaskTable::precompute(&code).unwrap();
        assert_eq!(table.entries(), 256);
    }

    #[test]
    fn masks_invert_their_own_syndrome() {
        let code = HammingCode::new(8).unwrap();
        let table = SyndromeMaskTable::precompute(&code).unwrap();
        for syndrome in 0..=255u64 {
            let mask = table.lookup(syndrome).unwrap();
            assert_eq!(mask.len(), code.n());
            if syndrome == 0 {
                assert!(mask.is_zero());
            } else {
                assert_eq!(mask.count_ones(), 1);
                assert_eq!(code.syndrome(mask).unwrap(), syndrome);
            }
        }
        assert_eq!(table.lookups(), 256);
    }

    #[test]
    fn out_of_range_syndromes_return_none() {
        let code = HammingCode::new(3).unwrap();
        let table = SyndromeMaskTable::precompute(&code).unwrap();
        assert!(table.lookup(8).is_none());
        assert!(table.lookup(u64::MAX).is_none());
        assert!(table.lookup_flip(8).is_none());
        assert!(table.lookup_flip(u64::MAX).is_none());
    }

    #[test]
    fn flip_positions_agree_with_masks() {
        let code = HammingCode::new(8).unwrap();
        let table = SyndromeMaskTable::precompute(&code).unwrap();
        for syndrome in 0..=255u64 {
            let mask = table.lookup(syndrome).unwrap().clone();
            match table.lookup_flip(syndrome).unwrap() {
                None => assert!(mask.is_zero(), "syndrome {syndrome}"),
                Some(position) => {
                    assert!(mask.get(position), "syndrome {syndrome}");
                    assert_eq!(mask.count_ones(), 1, "syndrome {syndrome}");
                }
            }
        }
    }
}
