//! The engine-side control plane: live decoder sync for host-compressed
//! streams.
//!
//! [`crate::controller::EncoderControlPlane`] implements the paper's
//! two-phase install for the *switch* encoder, where the control plane also
//! owns identifier assignment. The sharded
//! [`zipline_engine::CompressionEngine`] assigns identifiers itself (the
//! global shard layout), so its control plane has a narrower job: turn the
//! engine's per-batch [`DictionaryDelta`] into the out-of-band
//! [`ControlMessage`] traffic that keeps a remote decoder's
//! `identifier → basis` table exactly in sync — **including under churn**,
//! when identifiers are evicted and recycled and a one-shot post-hoc
//! snapshot would alias earlier frames.
//!
//! The nonce machinery mirrors [`crate::controller`]: every install carries a
//! monotonic sequence number that the decoder echoes in its acknowledgement
//! (stale acks for recycled identifiers are discarded), and — closing the
//! symmetric race — every [`ControlMessage::RemoveMapping`] carries the nonce
//! of the install it retires, so a delayed remove cannot take down a newer
//! mapping at the same recycled identifier.
//!
//! Frame ordering is the whole protocol: [`EngineHostPath`] serializes each
//! update's control frames onto the *same in-order channel* as the data
//! frames, immediately before the frame at whose position the update
//! happened. The decoder therefore always holds the reverse mapping before
//! the first compressed frame that needs it — the paper's two-phase
//! guarantee, streamed.
//!
//! [`DictionaryDelta`]: zipline_engine::DictionaryDelta
//! [`EngineHostPath`]: crate::host::EngineHostPath

use std::collections::{BTreeMap, HashMap};

use crate::control::ControlMessage;
use zipline_engine::{DictionaryUpdate, FlowKey, UpdateOp};
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;

/// Counters exposed by the engine control plane.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineControlStats {
    /// Install requests emitted.
    pub installs_sent: u64,
    /// Remove requests emitted.
    pub removes_sent: u64,
    /// Acknowledgements received from the decoder.
    pub acks_received: u64,
    /// Acknowledgements that matched a pending install.
    pub acks_matched: u64,
    /// Acknowledgements discarded as stale (identifier re-installed with a
    /// newer nonce while the ack was in flight).
    pub stale_acks: u64,
}

/// Turns [`DictionaryUpdate`]s into two-phase control traffic; see the
/// module docs.
#[derive(Debug, Clone, Default)]
pub struct EngineControlPlane {
    /// Monotonic install counter.
    next_nonce: u32,
    /// Nonce of the live install per identifier (what a remove must echo).
    installed: HashMap<u64, u32>,
    /// Installs emitted but not yet acknowledged: `id → nonce`.
    pending: HashMap<u64, u32>,
    stats: EngineControlStats,
}

impl EngineControlPlane {
    /// Creates an empty control plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> EngineControlStats {
        self.stats
    }

    /// Number of installs awaiting decoder acknowledgement.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Builds the control message for one dictionary update, advancing the
    /// nonce state: installs are stamped with a fresh nonce (and become
    /// pending until acknowledged), removes echo the nonce of the install
    /// they retire.
    pub fn message_for(&mut self, update: &DictionaryUpdate) -> ControlMessage {
        match &update.op {
            UpdateOp::Install { id, basis } => {
                let nonce = self.next_nonce;
                self.next_nonce = self.next_nonce.wrapping_add(1);
                // A still-pending install for a recycled identifier is
                // superseded; its late ack will fail the nonce check.
                self.pending.insert(*id, nonce);
                self.installed.insert(*id, nonce);
                self.stats.installs_sent += 1;
                ControlMessage::InstallMapping {
                    id: *id,
                    nonce,
                    basis: basis.to_bytes(),
                }
            }
            UpdateOp::Remove { id } => {
                let nonce = self.installed.remove(id).unwrap_or(0);
                self.pending.remove(id);
                self.stats.removes_sent += 1;
                ControlMessage::RemoveMapping { id: *id, nonce }
            }
        }
    }

    /// Builds the control frame(s) for one dictionary update and appends
    /// them to `out` (one frame per update with the current protocol).
    pub fn push_frames_for(
        &mut self,
        update: &DictionaryUpdate,
        src: MacAddress,
        dst: MacAddress,
        out: &mut Vec<EthernetFrame>,
    ) {
        out.push(self.message_for(update).to_frame(src, dst));
    }

    /// Rebuilds the control plane after a warm engine restart, returning
    /// the re-announcement traffic for the recovered dictionary.
    ///
    /// A crash loses the in-memory nonce table, but a decoder that stayed
    /// up still holds the *pre-crash* nonces — a restarted plane that
    /// started counting from zero would emit removes the decoder discards
    /// as stale, resurrecting the snapshot-aliasing bug under churn. The
    /// replay rules are therefore:
    ///
    /// 1. `next_nonce` jumps to at least `nonce_floor` (the restored
    ///    dictionary's `delta_seq`, which bounds every nonce the previous
    ///    incarnation can have issued), so fresh nonces never collide with
    ///    in-flight pre-crash acks;
    /// 2. every live mapping is **re-announced**: each `(id, basis)` gets a
    ///    fresh [`ControlMessage::InstallMapping`]. The decoder applies
    ///    installs unconditionally, so the re-announcement both heals a
    ///    decoder that missed the crash-window tail and re-syncs the nonce
    ///    table a surviving decoder echoes into removes;
    /// 3. pre-crash pending installs are dropped — their acks are stale by
    ///    rule 1, and the re-announcement supersedes them.
    pub fn reseed(
        &mut self,
        live: impl IntoIterator<Item = (u64, Vec<u8>)>,
        nonce_floor: u32,
    ) -> Vec<ControlMessage> {
        self.pending.clear();
        self.installed.clear();
        self.next_nonce = self.next_nonce.max(nonce_floor);
        live.into_iter()
            .map(|(id, basis)| {
                let nonce = self.next_nonce;
                self.next_nonce = self.next_nonce.wrapping_add(1);
                self.pending.insert(id, nonce);
                self.installed.insert(id, nonce);
                self.stats.installs_sent += 1;
                ControlMessage::InstallMapping { id, nonce, basis }
            })
            .collect()
    }

    /// Processes a decoder acknowledgement; returns `true` when it matched
    /// the pending install for `id` (and clears it), `false` when stale.
    pub fn handle_ack(&mut self, id: u64, nonce: u32) -> bool {
        self.stats.acks_received += 1;
        match self.pending.get(&id) {
            Some(pending) if *pending == nonce => {
                self.pending.remove(&id);
                self.stats.acks_matched += 1;
                true
            }
            _ => {
                self.stats.stale_acks += 1;
                false
            }
        }
    }
}

/// One control plane per tenant-scoped flow: the multi-tenant counterpart
/// of [`EngineControlPlane`] for hosts that drive a
/// [`zipline_engine::FlowRouter`].
///
/// Every flow owns an isolated nonce space and pending-install table, so a
/// delayed acknowledgement (or remove) from one tenant's decoder can never
/// retire or confirm a mapping in another tenant's — the control-plane
/// analogue of the router's dictionary-namespace isolation. Planes are
/// created lazily on first use and dropped with [`Self::close`] when the
/// flow ends.
#[derive(Debug, Clone, Default)]
pub struct FlowControlPlanes {
    planes: BTreeMap<FlowKey, EngineControlPlane>,
}

impl FlowControlPlanes {
    /// Creates an empty set of per-flow control planes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plane of `key`'s flow, created empty on first use.
    pub fn plane_mut(&mut self, key: FlowKey) -> &mut EngineControlPlane {
        self.planes.entry(key).or_default()
    }

    /// Builds the control message for one update of `key`'s flow,
    /// advancing only that flow's nonce state.
    pub fn message_for(&mut self, key: FlowKey, update: &DictionaryUpdate) -> ControlMessage {
        self.plane_mut(key).message_for(update)
    }

    /// Builds the control frame(s) for one update of `key`'s flow and
    /// appends them to `out`.
    pub fn push_frames_for(
        &mut self,
        key: FlowKey,
        update: &DictionaryUpdate,
        src: MacAddress,
        dst: MacAddress,
        out: &mut Vec<EthernetFrame>,
    ) {
        self.plane_mut(key).push_frames_for(update, src, dst, out);
    }

    /// Rebuilds one flow's plane after a warm restart; see
    /// [`EngineControlPlane::reseed`]. Other flows are untouched.
    pub fn reseed(
        &mut self,
        key: FlowKey,
        live: impl IntoIterator<Item = (u64, Vec<u8>)>,
        nonce_floor: u32,
    ) -> Vec<ControlMessage> {
        self.plane_mut(key).reseed(live, nonce_floor)
    }

    /// Routes a decoder acknowledgement to `key`'s flow; an ack for a flow
    /// that has no plane is stale by definition.
    pub fn handle_ack(&mut self, key: FlowKey, id: u64, nonce: u32) -> bool {
        match self.planes.get_mut(&key) {
            Some(plane) => plane.handle_ack(id, nonce),
            None => false,
        }
    }

    /// Counters of `key`'s flow, if it ever produced control traffic.
    pub fn stats(&self, key: FlowKey) -> Option<EngineControlStats> {
        self.planes.get(&key).map(EngineControlPlane::stats)
    }

    /// Installs awaiting acknowledgement across all flows.
    pub fn pending_total(&self) -> usize {
        self.planes.values().map(EngineControlPlane::pending).sum()
    }

    /// Flows that currently hold a plane, in key order.
    pub fn flows(&self) -> Vec<FlowKey> {
        self.planes.keys().copied().collect()
    }

    /// Drops `key`'s plane (the flow ended), returning its final counters.
    pub fn close(&mut self, key: FlowKey) -> Option<EngineControlStats> {
        self.planes.remove(&key).map(|plane| plane.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipline_gd::bits::BitVec;

    fn install(seq: u64, id: u64, v: u64) -> DictionaryUpdate {
        DictionaryUpdate {
            seq,
            at: seq,
            op: UpdateOp::Install {
                id,
                basis: BitVec::from_u64(v, 16),
            },
        }
    }

    fn remove(seq: u64, id: u64) -> DictionaryUpdate {
        DictionaryUpdate {
            seq,
            at: seq,
            op: UpdateOp::Remove { id },
        }
    }

    #[test]
    fn installs_get_monotonic_nonces_and_acks_clear_pending() {
        let mut cp = EngineControlPlane::new();
        let ControlMessage::InstallMapping { id, nonce, basis } = cp.message_for(&install(0, 7, 1))
        else {
            panic!("install update produces an install message");
        };
        assert_eq!((id, nonce), (7, 0));
        assert_eq!(basis, BitVec::from_u64(1, 16).to_bytes());
        let ControlMessage::InstallMapping { nonce: second, .. } =
            cp.message_for(&install(1, 9, 2))
        else {
            panic!("install update produces an install message");
        };
        assert_eq!(second, 1);
        assert_eq!(cp.pending(), 2);
        assert!(cp.handle_ack(7, 0));
        assert!(!cp.handle_ack(7, 0), "duplicate ack is stale");
        assert_eq!(cp.pending(), 1);
        assert_eq!(cp.stats().acks_matched, 1);
        assert_eq!(cp.stats().stale_acks, 1);
    }

    #[test]
    fn removes_echo_the_retired_installs_nonce() {
        let mut cp = EngineControlPlane::new();
        cp.message_for(&install(0, 4, 1));
        let ControlMessage::RemoveMapping { id, nonce } = cp.message_for(&remove(1, 4)) else {
            panic!("remove update produces a remove message");
        };
        assert_eq!((id, nonce), (4, 0));
        // Recycling the identifier: the new install gets a fresh nonce and a
        // second remove echoes *that* nonce.
        cp.message_for(&install(2, 4, 2));
        let ControlMessage::RemoveMapping { nonce: second, .. } = cp.message_for(&remove(3, 4))
        else {
            panic!("remove update produces a remove message");
        };
        assert_eq!(second, 1);
        assert_eq!(cp.stats().removes_sent, 2);
    }

    #[test]
    fn reseed_reannounces_live_mappings_above_the_nonce_floor() {
        let mut cp = EngineControlPlane::new();
        cp.message_for(&install(0, 2, 1)); // pre-crash state, nonce 0
        let messages = cp.reseed(vec![(2, vec![0xAA]), (5, vec![0xBB])], 17);
        // Fresh nonces start at the floor, one per live mapping, in order.
        let nonces: Vec<u32> = messages
            .iter()
            .map(|m| match m {
                ControlMessage::InstallMapping { nonce, .. } => *nonce,
                other => panic!("reseed emits installs only, got {other:?}"),
            })
            .collect();
        assert_eq!(nonces, vec![17, 18]);
        // Pre-crash pending installs are gone; the re-announcements pend.
        assert_eq!(cp.pending(), 2);
        assert!(!cp.handle_ack(2, 0), "pre-crash ack is stale");
        assert!(cp.handle_ack(2, 17), "ack for the re-announcement matches");
        // A remove after reseed echoes the fresh nonce, not the lost one.
        let ControlMessage::RemoveMapping { nonce, .. } = cp.message_for(&remove(9, 5)) else {
            panic!("remove update produces a remove message");
        };
        assert_eq!(nonce, 18);
    }

    #[test]
    fn ack_for_recycled_identifier_with_old_nonce_is_stale() {
        let mut cp = EngineControlPlane::new();
        cp.message_for(&install(0, 3, 1)); // nonce 0, never acked
        cp.message_for(&remove(1, 3));
        cp.message_for(&install(2, 3, 2)); // nonce 1 recycles id 3
        assert!(!cp.handle_ack(3, 0), "late ack for the old install");
        assert!(cp.handle_ack(3, 1), "ack for the live install");
    }

    #[test]
    fn flow_planes_isolate_nonce_spaces_per_flow() {
        let mut planes = FlowControlPlanes::new();
        let a = FlowKey::new(1, 10);
        let b = FlowKey::new(2, 10); // same flow id, different tenant
        let ControlMessage::InstallMapping { nonce: first_a, .. } =
            planes.message_for(a, &install(0, 7, 1))
        else {
            panic!("install update produces an install message");
        };
        let ControlMessage::InstallMapping { nonce: first_b, .. } =
            planes.message_for(b, &install(0, 7, 2))
        else {
            panic!("install update produces an install message");
        };
        // Both flows start from nonce 0: isolated counters, not a shared one.
        assert_eq!((first_a, first_b), (0, 0));
        assert_eq!(planes.pending_total(), 2);
        // Flow a's ack clears only flow a; the same (id, nonce) pair from
        // flow b's decoder is routed to b's plane.
        assert!(planes.handle_ack(a, 7, 0));
        assert_eq!(planes.pending_total(), 1);
        assert!(planes.handle_ack(b, 7, 0));
        assert!(
            !planes.handle_ack(FlowKey::new(3, 10), 7, 0),
            "ack for a flow without a plane is stale"
        );
        assert_eq!(planes.flows(), vec![a, b]);
    }

    #[test]
    fn flow_plane_reseed_and_close_touch_one_flow_only() {
        let mut planes = FlowControlPlanes::new();
        let a = FlowKey::new(1, 1);
        let b = FlowKey::new(1, 2);
        planes.message_for(a, &install(0, 2, 1));
        planes.message_for(b, &install(0, 9, 3));
        let messages = planes.reseed(a, vec![(2, vec![0xAA])], 11);
        assert_eq!(messages.len(), 1);
        // Flow a restarted above its floor; flow b's state is untouched.
        assert!(planes.handle_ack(a, 2, 11));
        assert!(planes.handle_ack(b, 9, 0));
        let closed = planes.close(b).expect("flow b held a plane");
        assert_eq!(closed.installs_sent, 1);
        assert_eq!(planes.flows(), vec![a]);
        assert!(planes.stats(b).is_none(), "closed plane is gone");
    }
}
