//! The end-to-end latency experiment (Figure 5).
//!
//! "We evaluate the latency by having one server sending packets to itself
//! via the programmable switch. We then measure the round-trip time."
//!
//! The topology is a single host with an RTT probe connected to one switch
//! port; the switch hairpins every frame back out of the same port, running
//! either the plain forwarding program, the ZipLine encoder or the ZipLine
//! decoder. The paper's point — reproduced here — is that the three
//! operations are indistinguishable: the pipeline latency is constant and
//! independent of the program.
//!
//! Absolute values differ from the paper's ~10 µs because the simulation does
//! not model the host kernel/NIC stack, only the wire and the switch; an
//! optional `host_overhead` can be added to make the absolute numbers
//! comparable (see EXPERIMENTS.md).

use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
use crate::encoder::{EncoderConfig, ZipLineEncodeProgram};
use crate::error::Result;
use crate::experiment::throughput::SwitchOperation;
use zipline_gd::config::GdConfig;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::host::RttProbe;
use zipline_net::link::LinkParams;
use zipline_net::mac::MacAddress;
use zipline_net::sim::Network;
use zipline_net::time::{SimDuration, SimTime};
use zipline_switch::node::{SwitchConfig, SwitchNode};
use zipline_switch::packet_ctx::PacketContext;
use zipline_switch::program::{L2ForwardingProgram, PipelineProgram};

/// Configuration of the latency experiment.
#[derive(Debug, Clone)]
pub struct LatencyExperimentConfig {
    /// GD parameters used by the encode/decode programs.
    pub gd: GdConfig,
    /// Wire size of the probe frames.
    pub frame_size: usize,
    /// Number of probes per operation (the paper repeats measurements 10
    /// times and reports the average).
    pub probes: usize,
    /// Interval between probes.
    pub probe_interval: SimDuration,
    /// Link parameters.
    pub link: LinkParams,
    /// Switch pipeline latency.
    pub pipeline_latency: SimDuration,
    /// Fixed per-direction host overhead (NIC + kernel stack) added to the
    /// reported RTT so absolute values are comparable with the testbed.
    pub host_overhead: SimDuration,
}

impl LatencyExperimentConfig {
    /// Paper-like defaults: 64-byte probes, 10 repetitions, a ~5 µs
    /// per-direction host overhead matching the testbed's kernel stack.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            frame_size: 64,
            probes: 10,
            probe_interval: SimDuration::from_millis(1),
            link: LinkParams::line_rate_100g(),
            pipeline_latency: SimDuration::from_nanos(600),
            host_overhead: SimDuration::from_micros(5),
        }
    }

    /// Fast test configuration.
    pub fn fast_test() -> Self {
        Self {
            probes: 5,
            probe_interval: SimDuration::from_micros(50),
            ..Self::paper_default()
        }
    }
}

/// RTT statistics for one switch operation.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Switch operation measured.
    pub operation: SwitchOperation,
    /// Mean round-trip time (including the configured host overhead).
    pub mean_rtt: SimDuration,
    /// Minimum observed RTT.
    pub min_rtt: SimDuration,
    /// Maximum observed RTT.
    pub max_rtt: SimDuration,
    /// Individual samples.
    pub samples: Vec<SimDuration>,
}

/// Runs the latency experiment for every switch operation.
pub fn run_latency_experiment(config: &LatencyExperimentConfig) -> Result<Vec<LatencyResult>> {
    SwitchOperation::all()
        .iter()
        .map(|&operation| run_one(config, operation))
        .collect()
}

/// Runs the latency experiment for a single operation.
pub fn run_one(
    config: &LatencyExperimentConfig,
    operation: SwitchOperation,
) -> Result<LatencyResult> {
    let src = MacAddress::local(1);
    let dst = MacAddress::local(2);
    let raw_frame = EthernetFrame::test_frame(dst, src, config.frame_size, 0x5A);

    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: config.pipeline_latency,
        control_plane_latency: SimDuration::from_micros(590),
        cpu_ports: vec![2],
        digest_queue_capacity: 1024,
    };

    let mut net = Network::new();
    let (probe_frame, switch_id) = match operation {
        SwitchOperation::NoOp => {
            let node = SwitchNode::new(switch_config, L2ForwardingProgram::hairpin(0))?;
            (raw_frame.clone(), net.add_node(Box::new(node)))
        }
        SwitchOperation::Encode => {
            // Hairpin variant of the encoder: data egress = ingress port.
            let program = ZipLineEncodeProgram::new(EncoderConfig {
                gd: config.gd,
                data_egress_port: 0,
                ..EncoderConfig::paper_default()
            })?;
            let node = SwitchNode::new(switch_config, program)?;
            (raw_frame.clone(), net.add_node(Box::new(node)))
        }
        SwitchOperation::Decode => {
            // Offer a pre-encoded type 2 frame so the decoder reconstructs it
            // on every pass.
            let mut encoder = ZipLineEncodeProgram::new(EncoderConfig {
                gd: config.gd,
                ..EncoderConfig::paper_default()
            })?;
            let mut ctx = PacketContext::new(0, raw_frame.clone());
            encoder.ingress(&mut ctx, SimTime::ZERO);
            let encoded_frame = ctx.frame.clone();
            let program = ZipLineDecodeProgram::new(DecoderConfig {
                gd: config.gd,
                data_egress_port: 0,
                ..DecoderConfig::paper_default()
            })?;
            let node = SwitchNode::new(switch_config, program)?;
            (encoded_frame, net.add_node(Box::new(node)))
        }
    };

    let probe = RttProbe::new(probe_frame, 0);
    let probe_id = net.add_node(Box::new(probe));
    net.connect((probe_id, 0), (switch_id, 0), config.link)?;
    for i in 0..config.probes {
        net.schedule_timer(
            SimTime(i as u64 * config.probe_interval.as_nanos()),
            probe_id,
            i as u64,
        );
    }
    net.run(100_000);

    let probe = net.node_as::<RttProbe>(probe_id).expect("probe node");
    let overhead = SimDuration::from_nanos(2 * config.host_overhead.as_nanos());
    let samples: Vec<SimDuration> = probe.rtts.iter().map(|rtt| *rtt + overhead).collect();
    assert!(!samples.is_empty(), "no probe completed — topology error");
    let total: u64 = samples.iter().map(|d| d.as_nanos()).sum();
    let mean_rtt = SimDuration::from_nanos(total / samples.len() as u64);
    let min_rtt = *samples.iter().min().expect("non-empty");
    let max_rtt = *samples.iter().max().expect("non-empty");
    Ok(LatencyResult {
        operation,
        mean_rtt,
        min_rtt,
        max_rtt,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_probes_complete_for_every_operation() {
        let config = LatencyExperimentConfig::fast_test();
        let results = run_latency_experiment(&config).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.samples.len(), config.probes, "{:?}", r.operation);
            assert!(r.min_rtt <= r.mean_rtt && r.mean_rtt <= r.max_rtt);
        }
    }

    #[test]
    fn figure5_shape_operations_are_indistinguishable() {
        let config = LatencyExperimentConfig::fast_test();
        let results = run_latency_experiment(&config).unwrap();
        let rtt = |op: SwitchOperation| {
            results
                .iter()
                .find(|r| r.operation == op)
                .unwrap()
                .mean_rtt
                .as_nanos() as f64
        };
        let noop = rtt(SwitchOperation::NoOp);
        for op in [SwitchOperation::Encode, SwitchOperation::Decode] {
            let delta = (rtt(op) - noop).abs() / noop;
            assert!(delta < 0.02, "{op:?} deviates by {delta}");
        }
        // RTTs land in the paper's order of magnitude (microseconds).
        assert!(noop > 1_000.0 && noop < 50_000.0, "noop RTT = {noop} ns");
    }

    #[test]
    fn host_overhead_is_added_to_the_report() {
        let mut config = LatencyExperimentConfig::fast_test();
        config.host_overhead = SimDuration::ZERO;
        let without = run_one(&config, SwitchOperation::NoOp).unwrap().mean_rtt;
        config.host_overhead = SimDuration::from_micros(5);
        let with = run_one(&config, SwitchOperation::NoOp).unwrap().mean_rtt;
        assert_eq!(with.as_nanos() - without.as_nanos(), 10_000);
    }
}
