//! The compression experiment (Figure 3).
//!
//! "The goal of this experiment is to assess the compression ratio that can
//! be obtained by using ZipLine. [...] We replay these traces to our switch
//! and monitor which action ZipLine undertakes with the payload of each
//! packet. We then deduce the payload size, as each action produces a packet
//! type of a fixed size. The sum of all original chunks represents the
//! baseline."
//!
//! Five measurements per dataset:
//!
//! * **Original** — the baseline: the sum of all original chunk sizes;
//! * **No table** — the compression table stays empty, every chunk leaves as
//!   a type 2 packet (the ~3 % padding overhead of the hardware format);
//! * **Static table** — every basis is pre-installed, chunks leave as type 3
//!   packets;
//! * **Dynamic learning** — the full two-switch deployment with an initially
//!   empty table, run through the discrete-event simulation so the
//!   control-plane learning delay is charged faithfully;
//! * **Gzip** — all payloads concatenated into one file and compressed with
//!   the DEFLATE/gzip baseline.

use crate::deployment::{DeploymentConfig, ZipLineDeployment};
use crate::error::Result;
use zipline_gd::codec::ChunkCodec;
use zipline_gd::config::GdConfig;
use zipline_gd::dictionary::BasisDictionary;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_traces::ChunkWorkload;

/// The scenarios of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionMode {
    /// Sum of the original chunk sizes (the baseline the ratios are against).
    Original,
    /// Empty compression table: every chunk becomes a type 2 packet.
    NoTable,
    /// All bases pre-installed: every chunk becomes a type 3 packet
    /// (bases beyond the dictionary capacity stay uncompressed).
    StaticTable,
    /// Empty table filled by the control plane while the trace replays.
    DynamicLearning,
    /// The gzip baseline on the concatenated payloads.
    Gzip,
}

impl CompressionMode {
    /// Label used by the paper's Figure 3.
    pub fn label(&self) -> &'static str {
        match self {
            CompressionMode::Original => "Original data",
            CompressionMode::NoTable => "No table",
            CompressionMode::StaticTable => "Static table",
            CompressionMode::DynamicLearning => "Dynamic learning",
            CompressionMode::Gzip => "Gzip",
        }
    }

    /// All five modes, in the order Figure 3 lists them.
    pub fn all() -> [CompressionMode; 5] {
        [
            CompressionMode::Original,
            CompressionMode::NoTable,
            CompressionMode::StaticTable,
            CompressionMode::DynamicLearning,
            CompressionMode::Gzip,
        ]
    }
}

/// Configuration of the compression experiment.
#[derive(Debug, Clone)]
pub struct CompressionExperimentConfig {
    /// GD parameters.
    pub gd: GdConfig,
    /// Bytes preceding the chunk in each payload, carried verbatim.
    pub chunk_offset: usize,
    /// Deployment used for the dynamic-learning scenario.
    pub deployment: DeploymentConfig,
    /// gzip compression level for the baseline.
    pub gzip_level: zipline_deflate::Level,
}

impl CompressionExperimentConfig {
    /// Paper parameters with a 1 Mpkt/s replay rate for the dynamic run
    /// (the replay rate determines how many packets race each learning
    /// round trip; see EXPERIMENTS.md).
    pub fn paper_default() -> Self {
        let mut deployment = DeploymentConfig::paper_default();
        deployment.max_packets_per_second = Some(1_000_000.0);
        deployment.record_received_payloads = false;
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            deployment,
            gzip_level: zipline_deflate::Level::Default,
        }
    }

    /// Fast configuration for tests: ideal links, short control latency.
    pub fn fast_test() -> Self {
        let mut deployment = DeploymentConfig::fast_test();
        deployment.record_received_payloads = false;
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            deployment,
            gzip_level: zipline_deflate::Level::Fast,
        }
    }
}

/// Result of one (dataset, mode) cell of Figure 3.
#[derive(Debug, Clone)]
pub struct CompressionResult {
    /// Scenario measured.
    pub mode: CompressionMode,
    /// Total payload bytes after processing.
    pub resulting_bytes: u64,
    /// Ratio to the original size (1.0 for the baseline itself).
    pub ratio: f64,
    /// Packets / chunks that left compressed (type 3), when applicable.
    pub compressed_chunks: u64,
    /// Packets / chunks that left uncompressed or processed-uncompressed.
    pub uncompressed_chunks: u64,
}

/// Runs the requested scenarios over a workload.
pub fn run_compression_experiment(
    workload: &dyn ChunkWorkload,
    modes: &[CompressionMode],
    config: &CompressionExperimentConfig,
) -> Result<Vec<CompressionResult>> {
    let original_bytes: u64 = (workload.total_chunks() * workload.chunk_len()) as u64;
    let mut results = Vec::with_capacity(modes.len());
    for &mode in modes {
        let result = match mode {
            CompressionMode::Original => CompressionResult {
                mode,
                resulting_bytes: original_bytes,
                ratio: 1.0,
                compressed_chunks: 0,
                uncompressed_chunks: workload.total_chunks() as u64,
            },
            CompressionMode::NoTable => no_table(workload, config, original_bytes),
            CompressionMode::StaticTable => static_table(workload, config, original_bytes)?,
            CompressionMode::DynamicLearning => dynamic_learning(workload, config, original_bytes)?,
            CompressionMode::Gzip => gzip(workload, config, original_bytes),
        };
        results.push(result);
    }
    Ok(results)
}

fn no_table(
    workload: &dyn ChunkWorkload,
    config: &CompressionExperimentConfig,
    original_bytes: u64,
) -> CompressionResult {
    // Every chunk leaves as a type 2 packet of fixed size; bytes outside the
    // chunk (prefix/suffix) are carried verbatim.
    let per_chunk_overhead =
        (workload.chunk_len() - config.chunk_offset - config.gd.chunk_bytes) as u64;
    let type2 = config.gd.uncompressed_payload_bytes() as u64 + config.chunk_offset as u64;
    let total = (type2 + per_chunk_overhead) * workload.total_chunks() as u64;
    CompressionResult {
        mode: CompressionMode::NoTable,
        resulting_bytes: total,
        ratio: total as f64 / original_bytes as f64,
        compressed_chunks: 0,
        uncompressed_chunks: workload.total_chunks() as u64,
    }
}

fn static_table(
    workload: &dyn ChunkWorkload,
    config: &CompressionExperimentConfig,
    original_bytes: u64,
) -> Result<CompressionResult> {
    let codec = ChunkCodec::new(&config.gd)?;
    let mut dictionary = BasisDictionary::new(config.gd.dictionary_capacity());
    // Pass 1: pre-compute the basis of each payload and fill the table
    // (first-come order, as a one-shot provisioning pass would).
    for chunk in workload.chunks() {
        let body = &chunk[config.chunk_offset..config.chunk_offset + config.gd.chunk_bytes];
        let encoded = codec.encode_chunk(body)?;
        if dictionary.peek_basis(&encoded.basis).is_none() && !dictionary.is_full() {
            dictionary.insert(encoded.basis, 0)?;
        }
    }
    // Pass 2: account each chunk by the packet type it would produce.
    let per_chunk_extra =
        (workload.chunk_len() - config.chunk_offset - config.gd.chunk_bytes) as u64;
    let type2 = config.gd.uncompressed_payload_bytes() as u64
        + config.chunk_offset as u64
        + per_chunk_extra;
    let type3 =
        config.gd.compressed_payload_bytes() as u64 + config.chunk_offset as u64 + per_chunk_extra;
    let mut total = 0u64;
    let mut compressed = 0u64;
    let mut uncompressed = 0u64;
    for chunk in workload.chunks() {
        let body = &chunk[config.chunk_offset..config.chunk_offset + config.gd.chunk_bytes];
        let encoded = codec.encode_chunk(body)?;
        if dictionary.peek_basis(&encoded.basis).is_some() {
            total += type3;
            compressed += 1;
        } else {
            total += type2;
            uncompressed += 1;
        }
    }
    Ok(CompressionResult {
        mode: CompressionMode::StaticTable,
        resulting_bytes: total,
        ratio: total as f64 / original_bytes as f64,
        compressed_chunks: compressed,
        uncompressed_chunks: uncompressed,
    })
}

fn dynamic_learning(
    workload: &dyn ChunkWorkload,
    config: &CompressionExperimentConfig,
    original_bytes: u64,
) -> Result<CompressionResult> {
    let mut deployment_config = config.deployment.clone();
    deployment_config.gd = config.gd;
    deployment_config.chunk_offset = config.chunk_offset;
    deployment_config.record_received_payloads = false;
    let mut deployment = ZipLineDeployment::new(deployment_config)?;
    let frames: Vec<EthernetFrame> = workload
        .chunks()
        .map(|chunk| {
            EthernetFrame::new(
                MacAddress::local(2),
                MacAddress::local(1),
                zipline_net::ethernet::ETHERTYPE_IPV4,
                chunk,
            )
        })
        .collect();
    let outcome = deployment.run_frames(frames)?;
    Ok(CompressionResult {
        mode: CompressionMode::DynamicLearning,
        resulting_bytes: outcome.payload_bytes_between_switches,
        ratio: outcome.payload_bytes_between_switches as f64 / original_bytes as f64,
        compressed_chunks: outcome.encoder_stats.emitted_compressed,
        uncompressed_chunks: outcome.encoder_stats.emitted_uncompressed
            + outcome.encoder_stats.emitted_raw,
    })
}

fn gzip(
    workload: &dyn ChunkWorkload,
    config: &CompressionExperimentConfig,
    original_bytes: u64,
) -> CompressionResult {
    // "We extract all payloads in a regular file that we compress with the
    // gzip compression tool."
    let mut file = Vec::with_capacity(original_bytes as usize);
    for chunk in workload.chunks() {
        file.extend_from_slice(&chunk);
    }
    let compressed = zipline_deflate::gzip_compress(&file, config.gzip_level);
    CompressionResult {
        mode: CompressionMode::Gzip,
        resulting_bytes: compressed.len() as u64,
        ratio: compressed.len() as f64 / original_bytes as f64,
        compressed_chunks: 0,
        uncompressed_chunks: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};

    fn small_workload() -> SensorWorkload {
        SensorWorkload::new(SensorWorkloadConfig {
            chunks: 4_000,
            sensors: 16,
            readings_per_sensor: 8,
            ..SensorWorkloadConfig::small()
        })
    }

    #[test]
    fn figure3_shape_on_a_small_sensor_workload() {
        let workload = small_workload();
        let config = CompressionExperimentConfig::fast_test();
        let results =
            run_compression_experiment(&workload, &CompressionMode::all(), &config).unwrap();
        let ratio = |mode: CompressionMode| results.iter().find(|r| r.mode == mode).unwrap().ratio;

        // Original is exactly 1.
        assert_eq!(ratio(CompressionMode::Original), 1.0);
        // No table: the 33/32 = 1.03 padding overhead of the hardware format.
        assert!((ratio(CompressionMode::NoTable) - 33.0 / 32.0).abs() < 1e-9);
        // Static table: every basis fits, so every chunk becomes 3 bytes.
        assert!((ratio(CompressionMode::StaticTable) - 3.0 / 32.0).abs() < 0.001);
        // Dynamic learning sits between static table and no table, much
        // closer to static (the paper's 0.11 vs 0.09).
        let dynamic = ratio(CompressionMode::DynamicLearning);
        assert!(dynamic > ratio(CompressionMode::StaticTable));
        assert!(dynamic < 0.5 * ratio(CompressionMode::NoTable));
        // Gzip compresses this highly redundant data well too.
        assert!(ratio(CompressionMode::Gzip) < 0.2);
    }

    #[test]
    fn static_table_reports_chunk_classification() {
        let workload = small_workload();
        let config = CompressionExperimentConfig::fast_test();
        let results =
            run_compression_experiment(&workload, &[CompressionMode::StaticTable], &config)
                .unwrap();
        let r = &results[0];
        assert_eq!(r.compressed_chunks + r.uncompressed_chunks, 4_000);
        assert_eq!(r.uncompressed_chunks, 0, "all bases fit the table");
    }

    #[test]
    fn mode_labels_match_figure3() {
        assert_eq!(CompressionMode::Original.label(), "Original data");
        assert_eq!(CompressionMode::NoTable.label(), "No table");
        assert_eq!(CompressionMode::StaticTable.label(), "Static table");
        assert_eq!(CompressionMode::DynamicLearning.label(), "Dynamic learning");
        assert_eq!(CompressionMode::Gzip.label(), "Gzip");
        assert_eq!(CompressionMode::all().len(), 5);
    }
}
