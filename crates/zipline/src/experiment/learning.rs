//! The dynamic-learning delay experiment (section 7, "Dynamic learning").
//!
//! "We measure the time between the arrival of an unknown basis in the
//! switch and the moment after which the basis is registered in the
//! compression table, and compressed packets start to be produced. To do so,
//! we repeatedly send the same data packet as fast as possible from one
//! server to another. We capture packets on the destination server and
//! measure the amount of time it takes between the arrival of the first
//! packet of type 2 and the arrival of the first packet of type 3."
//!
//! The paper reports (1.77 ± 0.08) ms. In this reproduction the delay is the
//! sum of the three control-plane traversals of the two-phase install
//! protocol (digest service at the encoder, install at the decoder,
//! acknowledgement handling at the encoder) plus the control-link time, so
//! it is directly controlled by the configured control-plane latency.

use crate::controller::ControlPlaneStats;
use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
use crate::encoder::{EncoderConfig, ZipLineEncodeProgram};
use crate::error::Result;
use zipline_gd::config::GdConfig;
use zipline_gd::packet::{ETHERTYPE_ZIPLINE_COMPRESSED, ETHERTYPE_ZIPLINE_UNCOMPRESSED};
use zipline_net::ethernet::EthernetFrame;
use zipline_net::host::{CaptureSink, GeneratorConfig, TrafficGenerator};
use zipline_net::link::LinkParams;
use zipline_net::mac::MacAddress;
use zipline_net::sim::Network;
use zipline_net::time::{DataRate, SimDuration, SimTime};
use zipline_switch::node::{SwitchConfig, SwitchNode};

/// Configuration of the learning-delay experiment.
#[derive(Debug, Clone)]
pub struct LearningExperimentConfig {
    /// GD parameters.
    pub gd: GdConfig,
    /// Per-switch control-plane latency.
    pub control_plane_latency: SimDuration,
    /// Switch pipeline latency.
    pub pipeline_latency: SimDuration,
    /// Link parameters for the data path and the control channel.
    pub link: LinkParams,
    /// Rate at which the sender repeats the probe packet ("as fast as
    /// possible" — bounded by the ~7 Mpkt/s generator in the paper).
    pub packets_per_second: f64,
    /// Number of repetitions; each uses a fresh, previously unknown payload.
    pub repetitions: usize,
    /// How many packets to send per repetition (enough to span the learning
    /// delay at the configured rate).
    pub packets_per_repetition: u64,
}

impl LearningExperimentConfig {
    /// Defaults calibrated so the learning delay lands near the paper's
    /// 1.77 ms: three control-plane traversals of 590 µs each.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            control_plane_latency: SimDuration::from_micros(590),
            pipeline_latency: SimDuration::from_nanos(600),
            link: LinkParams::line_rate_100g(),
            packets_per_second: 7_000_000.0,
            repetitions: 10,
            packets_per_repetition: 20_000,
        }
    }

    /// Fast test configuration (microsecond-scale control plane).
    pub fn fast_test() -> Self {
        Self {
            control_plane_latency: SimDuration::from_micros(20),
            packets_per_second: 1_000_000.0,
            repetitions: 3,
            packets_per_repetition: 500,
            ..Self::paper_default()
        }
    }
}

/// Result of the learning-delay experiment.
#[derive(Debug, Clone)]
pub struct LearningResult {
    /// Learning delay of each repetition: first type 3 arrival minus first
    /// type 2 arrival at the destination capture.
    pub delays: Vec<SimDuration>,
    /// Mean learning delay.
    pub mean_delay: SimDuration,
    /// Sample standard deviation of the delay.
    pub stddev: SimDuration,
    /// Packets that travelled uncompressed during learning, per repetition.
    pub uncompressed_during_learning: Vec<u64>,
    /// Encoder control-plane statistics of the last repetition.
    pub control_plane_stats: ControlPlaneStats,
}

/// Runs the learning-delay experiment.
pub fn run_learning_experiment(config: &LearningExperimentConfig) -> Result<LearningResult> {
    let mut delays = Vec::with_capacity(config.repetitions);
    let mut uncompressed = Vec::with_capacity(config.repetitions);
    let mut last_stats = ControlPlaneStats::default();
    for repetition in 0..config.repetitions {
        let (delay, uncompressed_count, stats) = run_once(config, repetition as u8)?;
        delays.push(delay);
        uncompressed.push(uncompressed_count);
        last_stats = stats;
    }
    let mean = delays.iter().map(|d| d.as_nanos()).sum::<u64>() / delays.len() as u64;
    let variance = delays
        .iter()
        .map(|d| {
            let diff = d.as_nanos() as f64 - mean as f64;
            diff * diff
        })
        .sum::<f64>()
        / delays.len().max(1) as f64;
    Ok(LearningResult {
        mean_delay: SimDuration::from_nanos(mean),
        stddev: SimDuration::from_nanos(variance.sqrt() as u64),
        delays,
        uncompressed_during_learning: uncompressed,
        control_plane_stats: last_stats,
    })
}

/// One repetition: sender → encoder switch → capture, with the decoder switch
/// attached only through the out-of-band control channel (exactly the
/// paper's setup, where the destination server captures processed packets).
fn run_once(
    config: &LearningExperimentConfig,
    repetition: u8,
) -> Result<(SimDuration, u64, ControlPlaneStats)> {
    let mut net = Network::new();

    // A payload that has never been seen before this repetition.
    let payload: Vec<u8> = (0..config.gd.chunk_bytes)
        .map(|i| {
            (i as u8)
                .wrapping_mul(31)
                .wrapping_add(repetition.wrapping_mul(97))
        })
        .collect();
    let frame = EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        zipline_net::ethernet::ETHERTYPE_IPV4,
        payload,
    );

    let generator = TrafficGenerator::new(GeneratorConfig {
        frames: vec![frame],
        count: config.packets_per_repetition,
        nic_rate: DataRate::LINE_RATE_100G,
        max_packets_per_second: Some(config.packets_per_second),
        port: 0,
        start: SimTime::ZERO,
    });
    let sender = net.add_node(Box::new(generator));

    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: config.pipeline_latency,
        control_plane_latency: config.control_plane_latency,
        cpu_ports: vec![2],
        digest_queue_capacity: 4096,
    };
    let encoder = ZipLineEncodeProgram::new(EncoderConfig {
        gd: config.gd,
        ..EncoderConfig::paper_default()
    })?;
    let encoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config.clone(), encoder)?));
    let decoder = ZipLineDecodeProgram::new(DecoderConfig {
        gd: config.gd,
        ..DecoderConfig::paper_default()
    })?;
    let decoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config, decoder)?));

    let capture = net.add_node(Box::new(CaptureSink::recording_arrivals()));

    net.connect((sender, 0), (encoder_switch, 0), config.link)?;
    net.connect((encoder_switch, 1), (capture, 0), config.link)?;
    // Out-of-band control channel; the decoder's data ports stay unused.
    net.connect((encoder_switch, 2), (decoder_switch, 2), config.link)?;

    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(config.packets_per_repetition.saturating_mul(12).max(10_000));

    let sink = net.node_as::<CaptureSink>(capture).expect("capture node");
    let first_type2 = sink
        .first_arrival_with_ethertype(ETHERTYPE_ZIPLINE_UNCOMPRESSED)
        .ok_or_else(|| {
            crate::error::ZipLineError::InvalidConfig(
                "no type 2 packet observed — trace too short".into(),
            )
        })?;
    let first_type3 = sink
        .first_arrival_with_ethertype(ETHERTYPE_ZIPLINE_COMPRESSED)
        .ok_or_else(|| {
            crate::error::ZipLineError::InvalidConfig(
                "no type 3 packet observed — increase packets_per_repetition".into(),
            )
        })?;
    let delay = first_type3 - first_type2;

    let encoder_node = net
        .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
        .expect("encoder node");
    let uncompressed = encoder_node.program().stats().emitted_uncompressed;
    Ok((
        delay,
        uncompressed,
        encoder_node.program().control_plane().stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_delay_tracks_the_control_plane_latency() {
        // With three control-plane traversals, the delay is roughly three
        // times the per-switch latency (plus wire and pipeline time).
        let config = LearningExperimentConfig::fast_test();
        let result = run_learning_experiment(&config).unwrap();
        assert_eq!(result.delays.len(), config.repetitions);
        let expected = 3.0 * config.control_plane_latency.as_nanos() as f64;
        let mean = result.mean_delay.as_nanos() as f64;
        assert!(
            mean > expected * 0.9 && mean < expected * 1.6,
            "mean {mean} ns vs ~{expected} ns"
        );
        // Uncompressed packets flowed during the learning window.
        assert!(result.uncompressed_during_learning.iter().all(|&c| c > 0));
        assert_eq!(result.control_plane_stats.mappings_activated, 1);
    }

    #[test]
    fn longer_control_plane_latency_means_longer_learning() {
        let fast = LearningExperimentConfig::fast_test();
        let slow = LearningExperimentConfig {
            control_plane_latency: SimDuration::from_micros(100),
            packets_per_repetition: 2_000,
            ..LearningExperimentConfig::fast_test()
        };
        let fast_result = run_learning_experiment(&fast).unwrap();
        let slow_result = run_learning_experiment(&slow).unwrap();
        assert!(slow_result.mean_delay > fast_result.mean_delay);
    }
}
