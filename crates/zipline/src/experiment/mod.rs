//! Experiment drivers reproducing the paper's evaluation (section 7).
//!
//! Each submodule corresponds to one result of the paper:
//!
//! * [`compression`] — Figure 3: resulting payload size for the synthetic
//!   sensor dataset and the campus-DNS dataset, under no table / static
//!   table / dynamic learning / gzip;
//! * [`throughput`] — Figure 4: forwarding throughput in Gbit/s and Mpkt/s
//!   for No-op / Encode / Decode at 64 B, 1500 B and 9000 B frames;
//! * [`latency`] — Figure 5: end-to-end RTT with the switch performing
//!   No-op / Encode / Decode;
//! * [`learning`] — the dynamic-learning measurement: time between the first
//!   type 2 packet and the first type 3 packet for a previously unknown
//!   basis (the paper reports 1.77 ± 0.08 ms).
//!
//! The drivers return plain data structures; pretty-printing lives in the
//! `zipline-bench` harness binaries so the same code paths are exercised by
//! unit tests, examples and benchmarks.

pub mod compression;
pub mod latency;
pub mod learning;
pub mod throughput;

pub use compression::{
    run_compression_experiment, CompressionExperimentConfig, CompressionMode, CompressionResult,
};
pub use latency::{run_latency_experiment, LatencyExperimentConfig, LatencyResult};
pub use learning::{run_learning_experiment, LearningExperimentConfig, LearningResult};
pub use throughput::{
    run_throughput_experiment, SwitchOperation, ThroughputExperimentConfig, ThroughputResult,
};
