//! The raw-performance throughput experiment (Figure 4).
//!
//! "We start by measuring the raw Ethernet throughput between 2 machines
//! through the programmable switch. We transfer Ethernet frames of 3 common
//! sizes for 10 seconds: the minimum frame size of 64 B, the standard 1500 B,
//! as well as jumbo frames of 9 kB. The first scenario ('no op') acts as the
//! baseline, with the switch acting as a regular Ethernet switch. We then
//! repeat the same measurements with the switch performing either the
//! encoding or the decoding phase of ZipLine."
//!
//! Our reproduction keeps the same structure: a traffic generator (optionally
//! capped at the ~7 Mpkt/s the paper's software generator could sustain), a
//! single switch running either a plain forwarding program, the ZipLine
//! encoder or the ZipLine decoder, and a capture host measuring the achieved
//! rate. The switch model forwards at line rate regardless of the program —
//! the paper's central claim — so any difference between operations would
//! indicate a modelling bug; the interesting outputs are the absolute rates,
//! which are bottlenecked by the generator exactly as in the paper.

use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
use crate::encoder::{EncoderConfig, ZipLineEncodeProgram};
use crate::error::Result;
use zipline_gd::config::GdConfig;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::host::{CaptureSink, GeneratorConfig, TrafficGenerator};
use zipline_net::link::LinkParams;
use zipline_net::mac::MacAddress;
use zipline_net::sim::Network;
use zipline_net::time::{DataRate, SimDuration, SimTime};
use zipline_switch::node::{SwitchConfig, SwitchNode};
use zipline_switch::packet_ctx::PacketContext;
use zipline_switch::program::{L2ForwardingProgram, PipelineProgram};

/// The three switch operations of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchOperation {
    /// Plain Ethernet forwarding.
    NoOp,
    /// The ZipLine encoding phase.
    Encode,
    /// The ZipLine decoding phase.
    Decode,
}

impl SwitchOperation {
    /// Label used in the figure.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchOperation::NoOp => "No op",
            SwitchOperation::Encode => "Encode",
            SwitchOperation::Decode => "Decode",
        }
    }

    /// All operations in figure order.
    pub fn all() -> [SwitchOperation; 3] {
        [
            SwitchOperation::NoOp,
            SwitchOperation::Encode,
            SwitchOperation::Decode,
        ]
    }
}

/// Configuration of the throughput experiment.
#[derive(Debug, Clone)]
pub struct ThroughputExperimentConfig {
    /// GD parameters used by the encode/decode programs.
    pub gd: GdConfig,
    /// Wire frame sizes to sweep (the paper uses 64, 1500 and 9000 bytes).
    pub frame_sizes: Vec<usize>,
    /// How many frames to send per measurement.
    pub frames_per_run: u64,
    /// Link parameters (100 Gbit/s in the paper).
    pub link: LinkParams,
    /// Generator NIC rate.
    pub nic_rate: DataRate,
    /// Software generator cap (the paper's servers top out around 7 Mpkt/s).
    pub max_packets_per_second: Option<f64>,
    /// Switch pipeline latency.
    pub pipeline_latency: SimDuration,
}

impl ThroughputExperimentConfig {
    /// The paper's sweep at a size that runs in seconds on a laptop.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            frame_sizes: vec![64, 1500, 9000],
            frames_per_run: 200_000,
            link: LinkParams::line_rate_100g(),
            nic_rate: DataRate::LINE_RATE_100G,
            max_packets_per_second: Some(7_000_000.0),
            pipeline_latency: SimDuration::from_nanos(600),
        }
    }

    /// A quick configuration for tests.
    pub fn fast_test() -> Self {
        Self {
            frames_per_run: 2_000,
            ..Self::paper_default()
        }
    }
}

/// One bar of Figure 4.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Switch operation measured.
    pub operation: SwitchOperation,
    /// Wire frame size of the offered traffic.
    pub frame_size: usize,
    /// Achieved throughput at the receiver, in Gbit/s (of offered wire
    /// bytes, i.e. goodput of the original traffic).
    pub gbps: f64,
    /// Achieved packet rate at the receiver, in Mpkt/s.
    pub mpps: f64,
    /// Frames received.
    pub frames_received: u64,
    /// Frames dropped inside the switch (must be zero).
    pub frames_dropped: u64,
}

/// Runs the full sweep: every operation at every frame size.
pub fn run_throughput_experiment(
    config: &ThroughputExperimentConfig,
) -> Result<Vec<ThroughputResult>> {
    let mut results = Vec::new();
    for &operation in &SwitchOperation::all() {
        for &frame_size in &config.frame_sizes {
            results.push(run_one(config, operation, frame_size)?);
        }
    }
    Ok(results)
}

/// Runs a single (operation, frame size) measurement.
pub fn run_one(
    config: &ThroughputExperimentConfig,
    operation: SwitchOperation,
    frame_size: usize,
) -> Result<ThroughputResult> {
    let src = MacAddress::local(1);
    let dst = MacAddress::local(2);
    let raw_frame = EthernetFrame::test_frame(dst, src, frame_size, 0xA5);

    // The frames offered to the switch and the program it runs.
    let mut net = Network::new();
    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: config.pipeline_latency,
        control_plane_latency: SimDuration::from_micros(590),
        cpu_ports: vec![2],
        digest_queue_capacity: 4096,
    };

    let (offered_frame, switch_id) = match operation {
        SwitchOperation::NoOp => {
            let program = L2ForwardingProgram::two_port_wire();
            let node = SwitchNode::new(switch_config, program)?;
            (raw_frame.clone(), net.add_node(Box::new(node)))
        }
        SwitchOperation::Encode => {
            let program = ZipLineEncodeProgram::new(EncoderConfig {
                gd: config.gd,
                ..EncoderConfig::paper_default()
            })?;
            let node = SwitchNode::new(switch_config, program)?;
            (raw_frame.clone(), net.add_node(Box::new(node)))
        }
        SwitchOperation::Decode => {
            // Offer pre-encoded (type 3) frames so the decoder exercises its
            // full reconstruction path, including the identifier lookup.
            let mut encoder = ZipLineEncodeProgram::new(EncoderConfig {
                gd: config.gd,
                ..EncoderConfig::paper_default()
            })?;
            encoder.preload_static_table(std::iter::once(raw_frame.payload.clone()))?;
            let mut ctx = PacketContext::new(0, raw_frame.clone());
            encoder.ingress(&mut ctx, SimTime::ZERO);
            let encoded_frame = ctx.frame.clone();

            let mut decoder = ZipLineDecodeProgram::new(DecoderConfig {
                gd: config.gd,
                ..DecoderConfig::paper_default()
            })?;
            // Mirror the mapping into the decoder so every packet decodes.
            let installed = encoder.active_mappings();
            debug_assert_eq!(installed, 1);
            for (key, entry) in collect_encoder_mappings(&encoder) {
                decoder.install_mapping(entry, key, SimTime::ZERO)?;
            }
            let node = SwitchNode::new(switch_config, decoder)?;
            (encoded_frame, net.add_node(Box::new(node)))
        }
    };

    let generator = TrafficGenerator::new(GeneratorConfig {
        frames: vec![offered_frame],
        count: config.frames_per_run,
        nic_rate: config.nic_rate,
        max_packets_per_second: config.max_packets_per_second,
        port: 0,
        start: SimTime::ZERO,
    });
    let sender = net.add_node(Box::new(generator));
    let receiver = net.add_node(Box::new(CaptureSink::counting()));

    net.connect((sender, 0), (switch_id, 0), config.link)?;
    net.connect((switch_id, 1), (receiver, 0), config.link)?;
    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(config.frames_per_run.saturating_mul(12).max(10_000));

    let sink = net
        .node_as::<CaptureSink>(receiver)
        .expect("receiver is a capture sink");
    let stats = sink.stats();
    let elapsed = match (stats.first_arrival, stats.last_arrival) {
        (Some(first), Some(last)) if last > first => last - first,
        _ => SimDuration::from_nanos(1),
    };
    // Report the *offered* traffic volume (raw frame size), so encode runs
    // are comparable with the paper's figure, which measures the raw
    // Ethernet transfer rate achieved end to end.
    let offered_bytes = stats.frames_received * frame_size as u64;
    let gbps = DataRate::from_transfer(offered_bytes, elapsed).as_gbps();
    let mpps = DataRate::packets_per_second(stats.frames_received, elapsed) / 1e6;

    // Dropped frames would invalidate the line-rate claim.
    let frames_dropped = frames_dropped_in_switch(&net, switch_id, operation);

    Ok(ThroughputResult {
        operation,
        frame_size,
        gbps,
        mpps,
        frames_received: stats.frames_received,
        frames_dropped,
    })
}

fn collect_encoder_mappings(encoder: &ZipLineEncodeProgram) -> Vec<(Vec<u8>, u64)> {
    encoder
        .control_plane()
        .dictionary()
        .iter()
        .map(|(id, basis)| (basis.to_bytes(), id))
        .collect()
}

fn frames_dropped_in_switch(net: &Network, switch_id: usize, operation: SwitchOperation) -> u64 {
    match operation {
        SwitchOperation::NoOp => net
            .node_as::<SwitchNode<L2ForwardingProgram>>(switch_id)
            .map(|n| n.stats().frames_dropped)
            .unwrap_or(0),
        SwitchOperation::Encode => net
            .node_as::<SwitchNode<ZipLineEncodeProgram>>(switch_id)
            .map(|n| n.stats().frames_dropped)
            .unwrap_or(0),
        SwitchOperation::Decode => net
            .node_as::<SwitchNode<ZipLineDecodeProgram>>(switch_id)
            .map(|n| n.stats().frames_dropped)
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_operations_forward_without_loss_at_every_size() {
        let config = ThroughputExperimentConfig {
            frames_per_run: 500,
            ..ThroughputExperimentConfig::fast_test()
        };
        let results = run_throughput_experiment(&config).unwrap();
        assert_eq!(results.len(), 9);
        for r in &results {
            assert_eq!(
                r.frames_received, 500,
                "{:?} at {}",
                r.operation, r.frame_size
            );
            assert_eq!(r.frames_dropped, 0);
            assert!(r.gbps > 0.0);
            assert!(r.mpps > 0.0);
        }
    }

    #[test]
    fn figure4_shape_generator_limits_small_frames_line_rate_limits_jumbo() {
        let config = ThroughputExperimentConfig {
            frames_per_run: 5_000,
            ..ThroughputExperimentConfig::fast_test()
        };
        let results = run_throughput_experiment(&config).unwrap();
        let find = |op: SwitchOperation, size: usize| {
            results
                .iter()
                .find(|r| r.operation == op && r.frame_size == size)
                .unwrap()
        };
        // 64 B frames: capped by the 7 Mpkt/s generator -> roughly 3.6 Gbit/s.
        let small = find(SwitchOperation::NoOp, 64);
        assert!(
            small.mpps > 6.0 && small.mpps < 7.5,
            "mpps = {}",
            small.mpps
        );
        assert!(small.gbps < 5.0);
        // 9000 B frames: line-rate bound, close to 100 Gbit/s.
        let jumbo = find(SwitchOperation::NoOp, 9000);
        assert!(jumbo.gbps > 90.0, "gbps = {}", jumbo.gbps);
        // Encode and decode do not reduce throughput relative to no-op.
        for size in [64usize, 1500, 9000] {
            let base = find(SwitchOperation::NoOp, size).gbps;
            for op in [SwitchOperation::Encode, SwitchOperation::Decode] {
                let measured = find(op, size).gbps;
                assert!(
                    (measured - base).abs() / base < 0.02,
                    "{op:?} at {size}: {measured} vs {base}"
                );
            }
        }
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(SwitchOperation::NoOp.label(), "No op");
        assert_eq!(SwitchOperation::Encode.label(), "Encode");
        assert_eq!(SwitchOperation::Decode.label(), "Decode");
        assert_eq!(SwitchOperation::all().len(), 3);
    }
}
