//! The ZipLine *decode* switch program (Figure 2).
//!
//! Data-plane steps:
//!
//! 1. a compressed packet arrives carrying `identifier + syndrome` (➊); the
//!    identifier is looked up in the known-IDs table to recover the basis
//!    (➋). Uncompressed (type 2) packets skip this step — they carry the
//!    basis themselves (➌);
//! 2. the basis is zero-padded and fed through the same CRC extern as the
//!    encoder, regenerating the parity bits the encoder truncated (➍);
//! 3. the syndrome selects the single-bit mask from the same constant-entries
//!    table as the encoder (➎) and the mask is XORed over the reassembled
//!    codeword (➏), restoring the original chunk `B` bit-exactly (➐).
//!
//! The control-plane half answers install requests from the encoder's control
//! plane: it writes the `identifier → basis` mapping into the data-plane
//! table *first* and only then acknowledges, which is what lets the encoder
//! guarantee that every compressed packet is decompressible.

use crate::control::{ControlMessage, ETHERTYPE_ZIPLINE_CONTROL};
use crate::error::Result;
use crate::mask_table::SyndromeMaskTable;
use std::collections::HashMap;
use zipline_gd::bits::BitVec;
use zipline_gd::config::GdConfig;
use zipline_gd::hamming::HammingCode;
use zipline_gd::packet::{PacketType, ZipLinePayload};
use zipline_gd::stats::CompressionStats;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_net::sim::PortId;
use zipline_net::time::SimTime;
use zipline_switch::crc_extern::CrcExtern;
use zipline_switch::packet_ctx::PacketContext;
use zipline_switch::program::PipelineProgram;
use zipline_switch::table::ExactMatchTable;

/// What the decoder does with a compressed packet whose identifier is not in
/// its table (cannot happen under the two-phase install protocol, but the
/// program must behave sensibly under fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownIdPolicy {
    /// Forward the packet unchanged (still compressed) and count the failure.
    #[default]
    Forward,
    /// Drop the packet and count the failure.
    Drop,
}

/// Configuration of the decode program.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    /// GD parameters; must match the encoder's.
    pub gd: GdConfig,
    /// Number of payload bytes preceding the chunk that are carried verbatim.
    pub chunk_offset: usize,
    /// Port on which restored data packets leave towards the receiver.
    pub data_egress_port: PortId,
    /// Port of the out-of-band control channel towards the encoder's control
    /// plane.
    pub control_port: PortId,
    /// Source MAC used on control frames (acks).
    pub control_src: MacAddress,
    /// Destination MAC used on control frames.
    pub control_dst: MacAddress,
    /// EtherType written onto restored packets.
    pub restored_ethertype: u16,
    /// Behaviour on unknown identifiers.
    pub unknown_id_policy: UnknownIdPolicy,
    /// When false, the program forwards every packet untouched (the "No op"
    /// baseline of Figure 4).
    pub decompression_enabled: bool,
}

impl DecoderConfig {
    /// A two-port decoder with the paper's GD parameters: data ingress on
    /// port 0, data egress on port 1, control channel on port 2.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            data_egress_port: 1,
            control_port: 2,
            control_src: MacAddress::local(0xD0),
            control_dst: MacAddress::local(0xE0),
            restored_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            unknown_id_policy: UnknownIdPolicy::default(),
            decompression_enabled: true,
        }
    }
}

/// The ZipLine decode program.
pub struct ZipLineDecodeProgram {
    config: DecoderConfig,
    code: HammingCode,
    crc: CrcExtern,
    mask_table: SyndromeMaskTable,
    /// Known-IDs table: identifier → serialized basis.
    id_table: ExactMatchTable<u64, Vec<u8>>,
    /// Install sequence number of the live mapping per identifier, recorded
    /// from [`ControlMessage::InstallMapping`]. A remove only takes effect
    /// when it echoes this nonce, so a delayed remove for a recycled
    /// identifier cannot retire the newer install (mappings installed
    /// directly — snapshot or static preload — carry no nonce and accept any
    /// remove).
    install_nonces: HashMap<u64, u32>,
    counters: zipline_switch::counter::CounterArray,
    stats: CompressionStats,
    /// Recycled restored-payload buffer: each rewritten packet hands its new
    /// payload to the frame and takes the old frame's allocation back as the
    /// next scratch, so the output side of restoration allocates nothing in
    /// steady state. (The parse and codeword-reconstruction steps still
    /// build small owned `BitVec`s per packet.)
    payload_scratch: Vec<u8>,
    /// Reused bit buffer for reassembling `extra + body`.
    bits_scratch: BitVec,
}

/// Per-packet-type counter indices for the decoder.
pub mod counter_index {
    /// Packets forwarded unprocessed.
    pub const RAW: usize = 0;
    /// Type 2 packets restored to raw form.
    pub const RESTORED_FROM_UNCOMPRESSED: usize = 1;
    /// Type 3 packets restored to raw form.
    pub const RESTORED_FROM_COMPRESSED: usize = 2;
    /// Compressed packets whose identifier was unknown.
    pub const UNKNOWN_ID: usize = 3;
    /// In-band control frames consumed by the data-plane ingress.
    pub const CONTROL: usize = 4;
}

impl ZipLineDecodeProgram {
    /// Builds the program.
    pub fn new(config: DecoderConfig) -> Result<Self> {
        config.gd.validate()?;
        let code = HammingCode::new(config.gd.m)?;
        let crc_param = code.crc().spec().poly_low;
        let crc = CrcExtern::new("parity", config.gd.m, crc_param)?;
        let mask_table = SyndromeMaskTable::precompute(&code)?;
        let id_table = ExactMatchTable::new("id-to-basis", config.gd.dictionary_capacity())?;
        let counters = zipline_switch::counter::CounterArray::new("packet-types", 5)?;
        Ok(Self {
            config,
            code,
            crc,
            mask_table,
            id_table,
            install_nonces: HashMap::new(),
            counters,
            stats: CompressionStats::new(),
            payload_scratch: Vec::new(),
            bits_scratch: BitVec::new(),
        })
    }

    /// The program configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Per-packet-type counters (see [`counter_index`]).
    pub fn counters(&self) -> &zipline_switch::counter::CounterArray {
        &self.counters
    }

    /// Number of identifier → basis mappings currently installed.
    pub fn installed_mappings(&self) -> usize {
        self.id_table.len()
    }

    /// Installs an `identifier → basis` mapping directly (used for the
    /// static-table scenario and by tests; the dynamic path goes through the
    /// control channel).
    pub fn install_mapping(&mut self, id: u64, basis_bytes: Vec<u8>, now: SimTime) -> Result<()> {
        if self.id_table.peek(&id).is_some() {
            self.id_table.modify(&id, basis_bytes)?;
        } else {
            self.id_table.insert(id, basis_bytes, now)?;
        }
        // Direct installs are un-nonced; drop any stale sequence record.
        self.install_nonces.remove(&id);
        Ok(())
    }

    /// Applies one control message to the data-plane state, returning the
    /// acknowledgement to send back (if any). Shared by the out-of-band CPU
    /// port ([`Self::handle_control_packet`]) and the in-band path
    /// ([`Self::ingress`] on [`ETHERTYPE_ZIPLINE_CONTROL`] frames).
    fn apply_control(&mut self, message: ControlMessage, now: SimTime) -> Option<ControlMessage> {
        match message {
            ControlMessage::InstallMapping { id, nonce, basis } => {
                // Install first, acknowledge second: the encoder only starts
                // using the identifier once the ack arrives (out-of-band
                // two-phase), or — in-band — only emits the install ahead of
                // the frames that use it, so compressed packets always find
                // their mapping here.
                self.install_mapping(id, basis, now).ok()?;
                self.install_nonces.insert(id, nonce);
                Some(ControlMessage::MappingInstalled { id, nonce })
            }
            ControlMessage::RemoveMapping { id, nonce } => {
                // Install-sequence guard: a remove that does not echo the
                // live install's nonce is a delayed remove for an older
                // install of a since-recycled identifier — dropping it is
                // what keeps the newer mapping alive.
                let live = self.install_nonces.get(&id).copied();
                if live.is_none_or(|n| n == nonce) {
                    let _ = self.id_table.remove(&id);
                    self.install_nonces.remove(&id);
                }
                None
            }
            ControlMessage::MappingInstalled { .. } => None,
        }
    }

    /// Installs every mapping of an engine dictionary snapshot — the
    /// deviation-table sync a controller performs so that streams compressed
    /// host-side by `zipline_engine::CompressionEngine` decode in-network.
    /// Identifiers already use the engine's global layout, so the shard
    /// count is transparent here.
    pub fn install_snapshot(
        &mut self,
        snapshot: &zipline_engine::DictionarySnapshot,
        now: SimTime,
    ) -> Result<()> {
        for (id, basis) in &snapshot.entries {
            self.install_mapping(*id, basis.to_bytes(), now)?;
        }
        Ok(())
    }

    /// Rebuilds the original chunk from a basis and deviation using the
    /// data-plane primitives (CRC extern + constant mask table).
    ///
    /// Word-parallel: the parity regeneration hashes the basis words
    /// directly and appends the `m` zero bits algebraically (no padded copy
    /// of the basis), and the ➎/➏ mask XOR collapses to a single-word bit
    /// flip via the table's position form.
    fn reconstruct(&mut self, basis: &BitVec, deviation: u64) -> Result<BitVec> {
        // ➍ regenerate the parity bits of the zero-padded basis.
        let reg = self.crc.hash_words(basis.words(), basis.len());
        let parity = self
            .crc
            .engine()
            .checksum_append_zeros(reg, self.code.m() as usize);
        // ➏ reassemble the codeword.
        let mut codeword = BitVec::with_capacity(self.code.n());
        codeword.push_bits(parity, self.code.m() as usize);
        codeword.extend_from_bitvec(basis);
        // ➎/➏ flip the bit selected by the deviation.
        let flip = self
            .mask_table
            .lookup_flip(deviation)
            .ok_or(zipline_gd::GdError::Malformed(format!(
                "deviation {deviation} out of range"
            )))?;
        if let Some(position) = flip {
            codeword.flip(position);
        }
        Ok(codeword)
    }

    /// Assembles the restored raw payload from its pieces into `out`,
    /// reusing the program's bit scratch — the decode-side sibling of
    /// [`zipline_gd::ZipLinePayload::encode_into`]. `out` is cleared first.
    fn restored_payload_into(
        &mut self,
        extra: &BitVec,
        body: &BitVec,
        zl_bytes: usize,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let bits = &mut self.bits_scratch;
        bits.clear();
        bits.extend_from_bitvec(extra);
        bits.extend_from_bitvec(body);
        let rest = &payload[zl_bytes..];
        let prefix = &rest[..self.config.chunk_offset.min(rest.len())];
        let suffix = &rest[self.config.chunk_offset.min(rest.len())..];
        out.clear();
        out.reserve(prefix.len() + bits.len().div_ceil(8) + suffix.len());
        out.extend_from_slice(prefix);
        bits.append_bytes_to(out);
        out.extend_from_slice(suffix);
    }

    fn forward_raw(&mut self, ctx: &mut PacketContext) {
        self.counters
            .count(counter_index::RAW, ctx.frame.payload.len())
            .expect("counter index in range");
        self.stats.emitted_raw += 1;
        self.stats.bytes_in += ctx.frame.payload.len() as u64;
        self.stats.bytes_out += ctx.frame.payload.len() as u64;
        ctx.forward_to(self.config.data_egress_port);
    }
}

impl PipelineProgram for ZipLineDecodeProgram {
    fn name(&self) -> String {
        "zipline-decode".to_string()
    }

    fn ingress(&mut self, ctx: &mut PacketContext, now: SimTime) {
        // In-band control frames (the engine host path's live sync travels on
        // the data channel so installs stay ordered with the frames that need
        // them): apply, then turn the frame into its ack towards the control
        // port, or consume it. Handled even with decompression disabled — the
        // control plane is not part of the "No op" data-plane baseline.
        if ctx.frame.ethertype == ETHERTYPE_ZIPLINE_CONTROL {
            self.counters
                .count(counter_index::CONTROL, ctx.frame.payload.len())
                .expect("counter index in range");
            let Ok(message) = ControlMessage::from_frame(&ctx.frame) else {
                ctx.drop_packet();
                return;
            };
            match self.apply_control(message, now) {
                Some(ack) => {
                    ctx.frame = ack.to_frame(self.config.control_src, self.config.control_dst);
                    ctx.forward_to(self.config.control_port);
                }
                None => ctx.drop_packet(),
            }
            return;
        }
        if !self.config.decompression_enabled {
            self.forward_raw(ctx);
            return;
        }
        let packet_type = PacketType::from_ethertype(ctx.frame.ethertype);
        match packet_type {
            PacketType::Raw => {
                self.forward_raw(ctx);
            }
            PacketType::Uncompressed => {
                // No payload clone: the parse borrows the frame's payload and
                // produces owned fields, so the frame is only replaced after
                // all borrows end.
                let zl_bytes = self.config.gd.uncompressed_payload_bytes();
                let parsed =
                    ZipLinePayload::decode(&self.config.gd, packet_type, &ctx.frame.payload);
                let Ok(ZipLinePayload::Uncompressed {
                    deviation,
                    extra,
                    basis,
                }) = parsed
                else {
                    self.stats.decode_failures += 1;
                    self.forward_raw(ctx);
                    return;
                };
                self.stats.bytes_in += ctx.frame.payload.len() as u64;
                let Ok(body) = self.reconstruct(&basis, deviation) else {
                    self.stats.decode_failures += 1;
                    self.forward_raw(ctx);
                    return;
                };
                let mut restored = std::mem::take(&mut self.payload_scratch);
                self.restored_payload_into(
                    &extra,
                    &body,
                    zl_bytes,
                    &ctx.frame.payload,
                    &mut restored,
                );
                self.counters
                    .count(counter_index::RESTORED_FROM_UNCOMPRESSED, restored.len())
                    .expect("counter index in range");
                self.stats.chunks_decoded += 1;
                self.stats.emitted_raw += 1;
                self.stats.bytes_out += restored.len() as u64;
                // Recycle the replaced frame's payload as the next scratch.
                let new_frame = ctx
                    .frame
                    .with_payload(self.config.restored_ethertype, restored);
                self.payload_scratch = std::mem::replace(&mut ctx.frame, new_frame).payload;
                ctx.forward_to(self.config.data_egress_port);
            }
            PacketType::Compressed => {
                let zl_bytes = self.config.gd.compressed_payload_bytes();
                let parsed =
                    ZipLinePayload::decode(&self.config.gd, packet_type, &ctx.frame.payload);
                let Ok(ZipLinePayload::Compressed {
                    deviation,
                    extra,
                    id,
                }) = parsed
                else {
                    self.stats.decode_failures += 1;
                    self.forward_raw(ctx);
                    return;
                };
                self.stats.bytes_in += ctx.frame.payload.len() as u64;
                // ➋ identifier → basis lookup.
                let Some(basis_bytes) = self.id_table.lookup(&id, now) else {
                    self.stats.decode_failures += 1;
                    self.counters
                        .count(counter_index::UNKNOWN_ID, ctx.frame.payload.len())
                        .expect("counter index in range");
                    match self.config.unknown_id_policy {
                        UnknownIdPolicy::Forward => {
                            self.stats.bytes_out += ctx.frame.payload.len() as u64;
                            ctx.forward_to(self.config.data_egress_port);
                        }
                        UnknownIdPolicy::Drop => ctx.drop_packet(),
                    }
                    return;
                };
                let mut basis = BitVec::from_bytes(&basis_bytes);
                basis.truncate(self.config.gd.k());
                let Ok(body) = self.reconstruct(&basis, deviation) else {
                    self.stats.decode_failures += 1;
                    self.forward_raw(ctx);
                    return;
                };
                let mut restored = std::mem::take(&mut self.payload_scratch);
                self.restored_payload_into(
                    &extra,
                    &body,
                    zl_bytes,
                    &ctx.frame.payload,
                    &mut restored,
                );
                self.counters
                    .count(counter_index::RESTORED_FROM_COMPRESSED, restored.len())
                    .expect("counter index in range");
                self.stats.chunks_decoded += 1;
                self.stats.emitted_raw += 1;
                self.stats.bytes_out += restored.len() as u64;
                let new_frame = ctx
                    .frame
                    .with_payload(self.config.restored_ethertype, restored);
                self.payload_scratch = std::mem::replace(&mut ctx.frame, new_frame).payload;
                ctx.forward_to(self.config.data_egress_port);
            }
        }
    }

    fn handle_control_packet(
        &mut self,
        frame: EthernetFrame,
        now: SimTime,
    ) -> Vec<(PortId, EthernetFrame)> {
        let Ok(message) = ControlMessage::from_frame(&frame) else {
            return Vec::new();
        };
        match self.apply_control(message, now) {
            Some(ack) => vec![(
                self.config.control_port,
                ack.to_frame(self.config.control_src, self.config.control_dst),
            )],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, ZipLineEncodeProgram};
    use zipline_gd::packet::{ETHERTYPE_ZIPLINE_COMPRESSED, ETHERTYPE_ZIPLINE_UNCOMPRESSED};
    use zipline_net::ethernet::ETHERTYPE_IPV4;

    fn frame_with(ethertype: u16, payload: Vec<u8>) -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(2),
            MacAddress::local(1),
            ethertype,
            payload,
        )
    }

    /// Runs a payload through the encoder program and returns the resulting
    /// frame (and any digest it emitted).
    fn encode_one(
        encoder: &mut ZipLineEncodeProgram,
        payload: Vec<u8>,
        now: SimTime,
    ) -> (EthernetFrame, Vec<zipline_switch::packet_ctx::Digest>) {
        let mut ctx = PacketContext::new(0, frame_with(ETHERTYPE_IPV4, payload));
        encoder.ingress(&mut ctx, now);
        (ctx.frame.clone(), ctx.digests)
    }

    #[test]
    fn type2_packets_are_restored_byte_exactly() {
        let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        for seed in 0..20u8 {
            let payload: Vec<u8> = (0..32u8)
                .map(|i| i.wrapping_mul(7).wrapping_add(seed))
                .collect();
            let (encoded, _) = encode_one(&mut encoder, payload.clone(), SimTime::ZERO);
            assert_eq!(encoded.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);
            let mut ctx = PacketContext::new(0, encoded);
            decoder.ingress(&mut ctx, SimTime::ZERO);
            assert_eq!(ctx.frame.ethertype, ETHERTYPE_IPV4);
            assert_eq!(ctx.frame.payload, payload, "seed {seed}");
            assert_eq!(ctx.egress_port, Some(1));
        }
        assert_eq!(decoder.stats().chunks_decoded, 20);
        assert_eq!(decoder.stats().decode_failures, 0);
    }

    #[test]
    fn type3_packets_are_restored_after_mapping_install() {
        let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let payload = vec![0x3Cu8; 32];

        // Learn the basis through the full control-channel exchange.
        let (_, digests) = encode_one(&mut encoder, payload.clone(), SimTime::ZERO);
        let installs = encoder.handle_digest(digests[0].clone(), SimTime::from_micros(900));
        let (_, install_frame) = &installs[0];
        let acks = decoder.handle_control_packet(install_frame.clone(), SimTime::from_micros(1800));
        assert_eq!(acks.len(), 1);
        assert_eq!(decoder.installed_mappings(), 1);
        encoder.handle_control_packet(acks[0].1.clone(), SimTime::from_micros(2700));

        // Now the encoder compresses and the decoder restores byte-exactly.
        let (encoded, _) = encode_one(&mut encoder, payload.clone(), SimTime::from_millis(3));
        assert_eq!(encoded.ethertype, ETHERTYPE_ZIPLINE_COMPRESSED);
        assert_eq!(encoded.payload.len(), 3);
        let mut ctx = PacketContext::new(0, encoded);
        decoder.ingress(&mut ctx, SimTime::from_millis(3));
        assert_eq!(ctx.frame.payload, payload);
        assert_eq!(
            decoder
                .counters()
                .read(counter_index::RESTORED_FROM_COMPRESSED)
                .unwrap()
                .packets,
            1
        );
    }

    #[test]
    fn unknown_identifier_follows_the_configured_policy() {
        // Forward policy (default).
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let bogus = frame_with(ETHERTYPE_ZIPLINE_COMPRESSED, vec![0x00, 0x00, 0x07]);
        let mut ctx = PacketContext::new(0, bogus.clone());
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(
            ctx.frame.ethertype, ETHERTYPE_ZIPLINE_COMPRESSED,
            "forwarded unchanged"
        );
        assert_eq!(decoder.stats().decode_failures, 1);

        // Drop policy.
        let config = DecoderConfig {
            unknown_id_policy: UnknownIdPolicy::Drop,
            ..DecoderConfig::paper_default()
        };
        let mut decoder = ZipLineDecodeProgram::new(config).unwrap();
        let mut ctx = PacketContext::new(0, bogus);
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
        assert_eq!(
            decoder
                .counters()
                .read(counter_index::UNKNOWN_ID)
                .unwrap()
                .packets,
            1
        );
    }

    #[test]
    fn malformed_processed_packets_fail_gracefully() {
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        // A type 2 frame far too short to carry a basis.
        let frame = frame_with(ETHERTYPE_ZIPLINE_UNCOMPRESSED, vec![1, 2, 3]);
        let mut ctx = PacketContext::new(0, frame);
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(decoder.stats().decode_failures, 1);
        assert!(ctx.has_verdict());
    }

    #[test]
    fn raw_packets_pass_through() {
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let frame = frame_with(ETHERTYPE_IPV4, vec![9; 64]);
        let mut ctx = PacketContext::new(0, frame.clone());
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame, frame);
        assert_eq!(
            decoder.counters().read(counter_index::RAW).unwrap().packets,
            1
        );
    }

    #[test]
    fn disabled_decompression_forwards_everything() {
        let config = DecoderConfig {
            decompression_enabled: false,
            ..DecoderConfig::paper_default()
        };
        let mut decoder = ZipLineDecodeProgram::new(config).unwrap();
        let frame = frame_with(ETHERTYPE_ZIPLINE_UNCOMPRESSED, vec![0; 33]);
        let mut ctx = PacketContext::new(0, frame.clone());
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame, frame);
    }

    #[test]
    fn chunk_offset_round_trips_prefix_and_suffix() {
        let enc_config = EncoderConfig {
            chunk_offset: 2,
            ..EncoderConfig::paper_default()
        };
        let dec_config = DecoderConfig {
            chunk_offset: 2,
            ..DecoderConfig::paper_default()
        };
        let mut encoder = ZipLineEncodeProgram::new(enc_config).unwrap();
        let mut decoder = ZipLineDecodeProgram::new(dec_config).unwrap();

        let mut payload = vec![0xAA, 0xBB];
        payload.extend_from_slice(&[0x77; 32]);
        payload.extend_from_slice(&[1, 2, 3, 4]);

        let (encoded, _) = encode_one(&mut encoder, payload.clone(), SimTime::ZERO);
        let mut ctx = PacketContext::new(0, encoded);
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.payload, payload);
    }

    #[test]
    fn remove_mapping_control_message_uninstalls() {
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        decoder
            .install_mapping(5, vec![0xAB; 31], SimTime::ZERO)
            .unwrap();
        assert_eq!(decoder.installed_mappings(), 1);
        // Direct installs carry no nonce, so any remove retires them.
        let remove = ControlMessage::RemoveMapping { id: 5, nonce: 9 }
            .to_frame(MacAddress::local(1), MacAddress::local(2));
        decoder.handle_control_packet(remove, SimTime::ZERO);
        assert_eq!(decoder.installed_mappings(), 0);
        // Installing twice overwrites rather than erroring.
        decoder
            .install_mapping(6, vec![1; 31], SimTime::ZERO)
            .unwrap();
        decoder
            .install_mapping(6, vec![2; 31], SimTime::ZERO)
            .unwrap();
        assert_eq!(decoder.installed_mappings(), 1);
    }

    #[test]
    fn delayed_remove_cannot_retire_a_recycled_identifier() {
        // The stale-remove race: install(id, n0) … remove(id, n0) delayed …
        // install(id, n1) recycles the identifier; the late remove must not
        // take down the newer mapping.
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let src = MacAddress::local(1);
        let dst = MacAddress::local(2);
        let install = |nonce: u32, fill: u8| {
            ControlMessage::InstallMapping {
                id: 5,
                nonce,
                basis: vec![fill; 31],
            }
            .to_frame(src, dst)
        };
        decoder.handle_control_packet(install(0, 0xAA), SimTime::ZERO);
        decoder.handle_control_packet(install(1, 0xBB), SimTime::ZERO);
        // The remove for the first install arrives reordered, after the
        // recycling install — ignored.
        let stale = ControlMessage::RemoveMapping { id: 5, nonce: 0 }.to_frame(src, dst);
        decoder.handle_control_packet(stale, SimTime::ZERO);
        assert_eq!(decoder.installed_mappings(), 1, "newer install survives");
        // The remove echoing the live nonce does retire it.
        let live = ControlMessage::RemoveMapping { id: 5, nonce: 1 }.to_frame(src, dst);
        decoder.handle_control_packet(live, SimTime::ZERO);
        assert_eq!(decoder.installed_mappings(), 0);
    }

    #[test]
    fn in_band_control_frames_install_and_ack_through_ingress() {
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let install = ControlMessage::InstallMapping {
            id: 11,
            nonce: 4,
            basis: vec![0x5A; 31],
        }
        .to_frame(MacAddress::local(1), MacAddress::local(2));
        let mut ctx = PacketContext::new(0, install);
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(decoder.installed_mappings(), 1);
        // The frame was turned into the ack and sent towards the control
        // port, not the data egress.
        assert_eq!(ctx.egress_port, Some(decoder.config().control_port));
        assert_eq!(
            ControlMessage::from_frame(&ctx.frame).unwrap(),
            ControlMessage::MappingInstalled { id: 11, nonce: 4 }
        );
        // An in-band remove is consumed without output.
        let remove = ControlMessage::RemoveMapping { id: 11, nonce: 4 }
            .to_frame(MacAddress::local(1), MacAddress::local(2));
        let mut ctx = PacketContext::new(0, remove);
        decoder.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
        assert_eq!(decoder.installed_mappings(), 0);
        assert_eq!(
            decoder
                .counters()
                .read(counter_index::CONTROL)
                .unwrap()
                .packets,
            2
        );
    }

    #[test]
    fn non_control_frames_on_control_path_are_ignored() {
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let frame = frame_with(ETHERTYPE_IPV4, vec![1, 2, 3]);
        assert!(decoder
            .handle_control_packet(frame, SimTime::ZERO)
            .is_empty());
    }
}
