//! Out-of-band control-channel messages between ZipLine instances.
//!
//! Section 5: recording a new basis-ID mapping is done in two phases — "the
//! control plane first sets the reverse mapping (ID-basis) in the destination
//! switch to make sure that compressed packets can always be uncompressed.
//! The control plane can finally add a corresponding entry in the source
//! switch." Section 6 adds that updates regarding ID-basis pairs are sent "to
//! other ZipLine instances out-of-band".
//!
//! This module defines the wire format of those out-of-band messages: Ethernet
//! frames with a dedicated EtherType whose payload carries an install /
//! remove request for an `identifier → basis` mapping, or the matching
//! acknowledgement that lets the encoder-side control plane activate its own
//! `basis → identifier` entry.

use crate::error::{Result, ZipLineError};
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;

/// EtherType of ZipLine control-channel frames (IEEE local experimental
/// space, next to the two data EtherTypes).
pub const ETHERTYPE_ZIPLINE_CONTROL: u16 = 0x88B7;

/// A control-channel message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// Install `id → basis` in the decoder before the encoder starts using
    /// `id` (phase one of the two-phase update).
    InstallMapping {
        /// Identifier being (re)assigned.
        id: u64,
        /// Monotonic install sequence number; echoed back in the
        /// acknowledgement so the encoder can discard stale acks when an
        /// identifier is recycled while an install is still in flight.
        nonce: u32,
        /// Serialized basis bytes (`ceil(k / 8)` bytes).
        basis: Vec<u8>,
    },
    /// Acknowledgement from the decoder: the mapping for `id` is active and
    /// the encoder may now emit compressed packets using it (phase two).
    MappingInstalled {
        /// Identifier whose reverse mapping is now in place.
        id: u64,
        /// Echo of the install sequence number.
        nonce: u32,
    },
    /// Remove the mapping for `id` (sent when the encoder recycles an
    /// identifier whose old basis should no longer be decodable).
    RemoveMapping {
        /// Identifier being retired.
        id: u64,
        /// Install sequence number of the mapping being retired. The decoder
        /// only removes when this matches the nonce of its currently
        /// installed mapping, so a delayed remove that arrives after the
        /// identifier was re-installed (recycled) cannot retire the newer
        /// mapping.
        nonce: u32,
    },
}

const OPCODE_INSTALL: u8 = 1;
const OPCODE_INSTALLED: u8 = 2;
const OPCODE_REMOVE: u8 = 3;

impl ControlMessage {
    /// Serializes the message payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            ControlMessage::InstallMapping { id, nonce, basis } => {
                let mut out = Vec::with_capacity(1 + 4 + 4 + 2 + basis.len());
                out.push(OPCODE_INSTALL);
                out.extend_from_slice(&(*id as u32).to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
                out.extend_from_slice(&(basis.len() as u16).to_be_bytes());
                out.extend_from_slice(basis);
                out
            }
            ControlMessage::MappingInstalled { id, nonce } => {
                let mut out = Vec::with_capacity(9);
                out.push(OPCODE_INSTALLED);
                out.extend_from_slice(&(*id as u32).to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
                out
            }
            ControlMessage::RemoveMapping { id, nonce } => {
                let mut out = Vec::with_capacity(9);
                out.push(OPCODE_REMOVE);
                out.extend_from_slice(&(*id as u32).to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
                out
            }
        }
    }

    /// Parses a message payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.is_empty() {
            return Err(ZipLineError::MalformedControlMessage(
                "empty payload".into(),
            ));
        }
        let opcode = bytes[0];
        let read_id = |bytes: &[u8]| -> Result<u64> {
            if bytes.len() < 5 {
                return Err(ZipLineError::MalformedControlMessage("truncated id".into()));
            }
            Ok(u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as u64)
        };
        let read_nonce = |bytes: &[u8]| -> Result<u32> {
            if bytes.len() < 9 {
                return Err(ZipLineError::MalformedControlMessage(
                    "truncated nonce".into(),
                ));
            }
            Ok(u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]))
        };
        match opcode {
            OPCODE_INSTALL => {
                let id = read_id(bytes)?;
                let nonce = read_nonce(bytes)?;
                if bytes.len() < 11 {
                    return Err(ZipLineError::MalformedControlMessage(
                        "truncated basis length".into(),
                    ));
                }
                let len = u16::from_be_bytes([bytes[9], bytes[10]]) as usize;
                if bytes.len() < 11 + len {
                    return Err(ZipLineError::MalformedControlMessage(format!(
                        "basis truncated: want {len} bytes, have {}",
                        bytes.len() - 11
                    )));
                }
                Ok(ControlMessage::InstallMapping {
                    id,
                    nonce,
                    basis: bytes[11..11 + len].to_vec(),
                })
            }
            OPCODE_INSTALLED => Ok(ControlMessage::MappingInstalled {
                id: read_id(bytes)?,
                nonce: read_nonce(bytes)?,
            }),
            OPCODE_REMOVE => Ok(ControlMessage::RemoveMapping {
                id: read_id(bytes)?,
                nonce: read_nonce(bytes)?,
            }),
            other => Err(ZipLineError::MalformedControlMessage(format!(
                "unknown opcode {other}"
            ))),
        }
    }

    /// Wraps the message into an Ethernet frame for the out-of-band channel.
    pub fn to_frame(&self, src: MacAddress, dst: MacAddress) -> EthernetFrame {
        EthernetFrame::new(dst, src, ETHERTYPE_ZIPLINE_CONTROL, self.to_bytes())
    }

    /// Extracts a control message from a frame, if it is a control frame.
    pub fn from_frame(frame: &EthernetFrame) -> Result<Self> {
        if frame.ethertype != ETHERTYPE_ZIPLINE_CONTROL {
            return Err(ZipLineError::MalformedControlMessage(format!(
                "not a control frame (EtherType {:#06x})",
                frame.ethertype
            )));
        }
        Self::from_bytes(&frame.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_roundtrip() {
        let msg = ControlMessage::InstallMapping {
            id: 12345,
            nonce: 77,
            basis: vec![0xAB; 31],
        };
        let bytes = msg.to_bytes();
        assert_eq!(ControlMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn installed_and_remove_roundtrip() {
        for msg in [
            ControlMessage::MappingInstalled { id: 0, nonce: 0 },
            ControlMessage::MappingInstalled {
                id: 32767,
                nonce: u32::MAX,
            },
            ControlMessage::RemoveMapping { id: 7, nonce: 3 },
            ControlMessage::RemoveMapping {
                id: 90,
                nonce: u32::MAX,
            },
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(ControlMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn frame_roundtrip() {
        let msg = ControlMessage::InstallMapping {
            id: 42,
            nonce: 1,
            basis: vec![1, 2, 3],
        };
        let frame = msg.to_frame(MacAddress::local(10), MacAddress::local(11));
        assert_eq!(frame.ethertype, ETHERTYPE_ZIPLINE_CONTROL);
        assert_eq!(ControlMessage::from_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn non_control_frames_are_rejected() {
        let frame = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            0x0800,
            vec![1, 2, 3],
        );
        assert!(ControlMessage::from_frame(&frame).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(ControlMessage::from_bytes(&[]).is_err());
        assert!(ControlMessage::from_bytes(&[OPCODE_INSTALL]).is_err());
        assert!(ControlMessage::from_bytes(&[OPCODE_INSTALL, 0, 0, 0, 1]).is_err());
        assert!(ControlMessage::from_bytes(&[OPCODE_INSTALL, 0, 0, 0, 1, 0, 0, 0, 2]).is_err());
        assert!(
            ControlMessage::from_bytes(&[OPCODE_INSTALL, 0, 0, 0, 1, 0, 0, 0, 2, 0, 10, 1, 2])
                .is_err()
        );
        assert!(ControlMessage::from_bytes(&[OPCODE_INSTALLED, 0]).is_err());
        assert!(ControlMessage::from_bytes(&[OPCODE_INSTALLED, 0, 0, 0, 1]).is_err());
        // A remove without its install-sequence nonce is no longer valid.
        assert!(ControlMessage::from_bytes(&[OPCODE_REMOVE, 0, 0, 0, 1]).is_err());
        assert!(ControlMessage::from_bytes(&[99, 0, 0, 0, 0]).is_err());
    }
}
