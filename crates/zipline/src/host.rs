//! The engine-backed host-side path.
//!
//! The paper's deployment compresses *in the encoder switch*; this module is
//! the complementary arrangement the `zipline-engine` crate enables: end
//! hosts run the sharded [`CompressionEngine`] themselves and put wire-ready
//! ZipLine frames (types 2 and 3) straight onto the network, so the encoder
//! switch only forwards and the decoder switch restores. The controller's
//! role collapses to a deviation-table sync — shipping the engine's merged
//! [`DictionarySnapshot`] to the decoder
//! ([`ZipLineDecodeProgram::install_snapshot`] /
//! [`ZipLineDeployment::preload_decoder_snapshot`]).
//!
//! Take the snapshot *after* compressing: it then contains every identifier
//! the emitted stream references. (If the engine's dictionary churned past
//! its capacity, recycled identifiers would alias earlier frames — live
//! installs over the control channel are the follow-up for that regime.)
//!
//! [`CompressionEngine`]: zipline_engine::CompressionEngine
//! [`DictionarySnapshot`]: zipline_engine::DictionarySnapshot
//! [`ZipLineDecodeProgram::install_snapshot`]: crate::decoder::ZipLineDecodeProgram::install_snapshot
//! [`ZipLineDeployment::preload_decoder_snapshot`]: crate::deployment::ZipLineDeployment::preload_decoder_snapshot

use crate::error::Result;
use zipline_engine::{
    CompressionEngine, DictionarySnapshot, EngineConfig, EngineStream, StreamSummary,
};
use zipline_gd::packet::PacketType;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_traces::ChunkWorkload;

/// Boxed payload sink used by the shared stream harness.
type FrameSink<'a> = Box<dyn FnMut(PacketType, &[u8]) + 'a>;

/// Configuration of an [`EngineHostPath`].
#[derive(Debug, Clone)]
pub struct HostPathConfig {
    /// Engine parameters (GD config, shard and worker counts).
    pub engine: EngineConfig,
    /// Chunks per engine batch fed by the stream front-end.
    pub batch_chunks: usize,
    /// Source MAC stamped on emitted frames.
    pub src: MacAddress,
    /// Destination MAC stamped on emitted frames.
    pub dst: MacAddress,
    /// EtherType for raw (type 1) frames; processed frames carry the
    /// ZipLine EtherTypes.
    pub raw_ethertype: u16,
}

impl HostPathConfig {
    /// Paper GD parameters, 8 shards, 4 workers, 256-chunk batches.
    pub fn paper_default() -> Self {
        Self {
            engine: EngineConfig::paper_default(),
            batch_chunks: 256,
            src: MacAddress::local(2),
            dst: MacAddress::local(1),
            raw_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
        }
    }
}

/// A host NIC-side compression pipeline: data in, ZipLine frames out.
pub struct EngineHostPath {
    engine: CompressionEngine,
    config: HostPathConfig,
}

impl EngineHostPath {
    /// Builds the host path.
    pub fn new(config: HostPathConfig) -> Result<Self> {
        Ok(Self {
            engine: CompressionEngine::new(config.engine)?,
            config,
        })
    }

    /// The underlying engine (statistics, snapshot, dictionary).
    pub fn engine(&self) -> &CompressionEngine {
        &self.engine
    }

    /// Merged dictionary snapshot for the decoder sync.
    pub fn snapshot(&self) -> DictionarySnapshot {
        self.engine.snapshot()
    }

    /// Compresses a buffer into wire-ready Ethernet frames (one frame per
    /// stream record) plus the stream totals.
    pub fn compress_to_frames(
        &mut self,
        data: &[u8],
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.push_record(data))
    }

    /// Compresses every chunk of a workload generator into frames, feeding
    /// the engine through the streaming API.
    pub fn compress_workload_to_frames(
        &mut self,
        workload: &dyn ChunkWorkload,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.consume_workload(workload))
    }

    /// Shared frame-building stream harness: sets up the engine stream with
    /// a sink that wraps every payload in an Ethernet frame, runs `feed`,
    /// and collects the summary.
    fn compress_via(
        &mut self,
        feed: impl FnOnce(&mut EngineStream<'_, FrameSink<'_>>) -> zipline_gd::error::Result<()>,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        let mut frames = Vec::new();
        let (src, dst, raw_ethertype) =
            (self.config.src, self.config.dst, self.config.raw_ethertype);
        let sink: FrameSink<'_> = Box::new(|pt, bytes| {
            let ethertype = pt.ethertype().unwrap_or(raw_ethertype);
            frames.push(EthernetFrame::new(dst, src, ethertype, bytes.to_vec()));
        });
        let mut stream = EngineStream::new(&mut self.engine, self.config.batch_chunks, sink);
        feed(&mut stream)?;
        let summary = stream.finish()?;
        Ok((frames, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
    use crate::deployment::{DeploymentConfig, ZipLineDeployment};
    use zipline_net::time::SimTime;
    use zipline_switch::packet_ctx::PacketContext;
    use zipline_switch::program::PipelineProgram;

    fn sensor_style_data(chunks: u32) -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = (i % 5) as u8;
            chunk[31] = 0xEE;
            data.extend_from_slice(&chunk);
        }
        data
    }

    #[test]
    fn host_compressed_frames_restore_through_decoder_program() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let mut data = sensor_style_data(120);
        data.extend_from_slice(b"raw-tail");
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        assert_eq!(summary.payloads_emitted as usize, frames.len());
        assert!(summary.compressed_payloads > 100, "most chunks deduplicate");
        assert!(
            (summary.wire_bytes as usize) < data.len() / 2,
            "wire bytes shrink"
        );

        // Decoder switch program, synced via the snapshot.
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        decoder
            .install_snapshot(&host.snapshot(), SimTime::ZERO)
            .unwrap();
        let mut restored = Vec::new();
        for frame in frames {
            let mut ctx = PacketContext::new(0, frame);
            decoder.ingress(&mut ctx, SimTime::ZERO);
            restored.extend_from_slice(&ctx.frame.payload);
        }
        assert_eq!(restored, data);
        assert_eq!(decoder.stats().decode_failures, 0);
    }

    #[test]
    fn host_path_through_full_deployment_roundtrips() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let data = sensor_style_data(80);
        let (frames, _) = host.compress_to_frames(&data).unwrap();

        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        deployment.preload_decoder_snapshot(host.snapshot());
        let outcome = deployment.run_frames(frames).unwrap();
        let received: Vec<u8> = outcome.received_payloads.concat();
        assert_eq!(received, data, "in-network restoration is lossless");
    }
}
