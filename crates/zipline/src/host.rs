//! The engine-backed host-side path, generic over the compression backend.
//!
//! The paper's deployment compresses *in the encoder switch*; this module is
//! the complementary arrangement the `zipline-engine` crate enables: end
//! hosts run the sharded [`CompressionEngine`] themselves and put wire-ready
//! ZipLine frames (types 2 and 3) straight onto the network, so the encoder
//! switch only forwards and the decoder switch restores.
//!
//! [`EngineHostPath<B>`] drives any
//! [`CompressionBackend`] through the
//! same framing and the same switch programs: the GD default emits
//! ZipLine-EtherType frames plus live-sync control traffic, while
//! `EngineHostPath<DeflateBackend>` (the paper's gzip baseline, one member
//! per batch) and `EngineHostPath<PassthroughBackend>` (the ratio floor)
//! emit raw frames that the deployment forwards and restores losslessly —
//! their streams are self-contained, so no control traffic exists to sync.
//! The mirrored [`EngineHostPath::decompressor`] restores whatever backend
//! the path was built with.
//!
//! The decoder's `identifier → basis` table is kept in sync by **streaming
//! incremental installs**: the engine journals every dictionary mutation
//! (install, evict) into a per-batch
//! [`DictionaryDelta`](zipline_engine::DictionaryDelta), and the
//! [`EngineControlPlane`] turns each update into the out-of-band
//! [`ControlMessage`](crate::control::ControlMessage) format —
//! `InstallMapping` frames carrying a monotonic nonce, `RemoveMapping`
//! frames echoing the nonce of the install they retire. The control frames
//! are emitted *in-band*, interleaved into the output frame sequence
//! immediately before the data frame at whose position the mutation
//! happened, so on an in-order channel every compressed frame is preceded by
//! the control traffic that makes it decodable. This is the paper's
//! two-phase install guarantee (section 5) in streaming form, and it holds
//! even when the dictionary churns past capacity and recycles identifiers —
//! the regime where the older one-shot [`DictionarySnapshot`] sync silently
//! aliased earlier frames to later bases (see the regression tests below).
//!
//! The snapshot path ([`EngineHostPath::snapshot`] /
//! [`ZipLineDecodeProgram::install_snapshot`] /
//! [`ZipLineDeployment::preload_decoder_snapshot`]) remains available for
//! *cold-starting* a decoder mid-stream and for workloads provably below
//! capacity; [`HostPathConfig::live_sync`] turns the live protocol off for
//! those cases.
//!
//! # Synchronous vs pipelined ingest
//!
//! The path offers two push disciplines over the same engine:
//!
//! * **Synchronous** ([`EngineHostPath::compress_to_frames`] /
//!   [`EngineHostPath::compress_workload_to_frames`]): every batch
//!   compresses on the calling thread. Zero setup cost, no extra thread,
//!   and the right default for request/response-shaped callers,
//!   single-core hosts, and whenever the producer is the bottleneck anyway.
//! * **Pipelined** ([`EngineHostPath::compress_to_frames_pipelined`] /
//!   [`EngineHostPath::compress_workload_to_frames_pipelined`], available
//!   once [`HostPathConfig::pipeline_depth`] is set): record accumulation
//!   overlaps with batch compression through [`PipelinedStream`] — a bounded,
//!   backpressured channel feeding a dedicated engine worker thread, with
//!   double-buffered, recycled batch buffers. Choose it when ingest is
//!   continuous (a NIC queue, a trace replay) and the host has cores to
//!   spare; the emitted frame sequence is **bit-identical** to the
//!   synchronous path, so the choice is purely a latency/throughput one.
//!   On a single-core host under [`SpawnPolicy`](zipline_engine::SpawnPolicy)
//!   `::Auto` the pipelined path degrades to inline execution — same
//!   bytes, no thread — so it is always safe to enable.
//!
//! # Durability and warm restarts
//!
//! By default the engine's dictionary lives only in memory: a host crash
//! loses it, and the only way back in sync with a decoder that kept its
//! state is a full cold start (fresh dictionary on both sides, or a
//! snapshot preload — which under churn aliases recycled identifiers, see
//! above). Setting [`HostPathConfig::durable`] to a directory makes the
//! engine crash-safe instead: every committed batch appends its dictionary
//! delta to an event log (with periodic full-state checkpoints) and its
//! wire frames to a journaled frame log, both sealed by a batch-boundary
//! commit marker, and sinks only ever observe **committed** batches.
//! Rebuilding the path over the same directory is then a *warm restart*:
//!
//! * the dictionary rehydrates to exactly the last committed batch
//!   boundary (torn, truncated or bit-flipped log tails are detected by
//!   per-record CRCs and cut at the last valid commit — or rejected
//!   loudly when committed records are missing);
//! * [`EngineHostPath::warm_start`] reports the recovered boundary
//!   (`batches`, `bytes_in`, `frames`) plus the committed frames, so the
//!   caller knows where to resume feeding input and what a transport that
//!   lost the crash-window tail may need re-sent;
//! * [`EngineHostPath::take_restart_sync_frames`] carries in-band
//!   re-installs for every live mapping under fresh nonces — the decision
//!   note: a **surviving decoder** needs them so its nonce table matches
//!   the restarted control plane (otherwise later evictions are discarded
//!   as stale and recycled identifiers alias), and a **restarted decoder**
//!   is cold-started by the very same frames, so the caller never touches
//!   the snapshot path.
//!
//! Durability is process-crash-grade (writes reach the OS in commit
//! order); checkpoint cadence is [`HostPathConfig::checkpoint_cadence`].
//!
//! [`CompressionEngine`]: zipline_engine::CompressionEngine
//! [`DictionarySnapshot`]: zipline_engine::DictionarySnapshot
//! [`ZipLineDecodeProgram::install_snapshot`]: crate::decoder::ZipLineDecodeProgram::install_snapshot
//! [`ZipLineDeployment::preload_decoder_snapshot`]: crate::deployment::ZipLineDeployment::preload_decoder_snapshot

use std::cell::RefCell;
use std::path::PathBuf;

use crate::engine_control::{EngineControlPlane, EngineControlStats};
use crate::error::Result;
use zipline_engine::{
    CompressionBackend, CompressionEngine, DictionarySnapshot, DictionaryUpdate, EngineBuilder,
    EngineConfig, EngineDecompressor, EngineStream, GdBackend, PipelinedStream, StreamSummary,
    SyncPolicy, WarmStart,
};
use zipline_gd::packet::PacketType;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_traces::ChunkWorkload;

/// Boxed payload sink used by the shared stream harness.
type FrameSink<'a> = Box<dyn FnMut(PacketType, &[u8]) + 'a>;

/// Boxed control sink used by the shared stream harness (live sync).
type ControlSink<'a> = Box<dyn FnMut(&DictionaryUpdate) + 'a>;

/// Configuration of an [`EngineHostPath`].
#[derive(Debug, Clone)]
pub struct HostPathConfig {
    /// Engine parameters (GD config, shard and worker counts).
    pub engine: EngineConfig,
    /// Chunks per engine batch fed by the stream front-end.
    pub batch_chunks: usize,
    /// Source MAC stamped on emitted frames.
    pub src: MacAddress,
    /// Destination MAC stamped on emitted frames.
    pub dst: MacAddress,
    /// EtherType for raw (type 1) frames; processed frames carry the
    /// ZipLine EtherTypes.
    pub raw_ethertype: u16,
    /// Stream incremental install/remove control frames in-band with the
    /// data (the default). When false, the caller must sync the decoder via
    /// [`EngineHostPath::snapshot`] — only sound while the dictionary never
    /// exceeds capacity.
    pub live_sync: bool,
    /// Opt-in pipelined ingest: when `Some(depth)`, the engine is built
    /// with [`EngineBuilder::pipelined`] and the `*_pipelined` push methods
    /// become available (depth = batches in flight before `push` blocks;
    /// see the module docs for the decision note). `None` keeps the path
    /// synchronous-only.
    pub pipeline_depth: Option<usize>,
    /// Opt-in durability: when `Some(dir)`, the engine opens (or creates)
    /// a crash-safe store there — an append-only dictionary event log with
    /// periodic checkpoints plus a journaled frame log with batch-boundary
    /// commit markers ([`EngineBuilder::durable`]). Rebuilding the path
    /// over the same directory is a **warm restart**: the dictionary
    /// rehydrates from disk and the control plane re-announces the live
    /// mappings in-band, so no cold-start snapshot resync is needed (see
    /// the module docs' durability note). `None` keeps the engine
    /// in-memory only.
    pub durable: Option<PathBuf>,
    /// Full-state checkpoint cadence of the durable store, in committed
    /// batches (1 = checkpoint every batch, the exact-restore default;
    /// larger values trade checkpoint volume for a delta-fold on
    /// recovery). Ignored without [`Self::durable`].
    pub checkpoint_cadence: u64,
    /// Durability barrier of the store's commits ([`SyncPolicy::Flush`]
    /// survives process crash, [`SyncPolicy::Data`] adds `fdatasync` and
    /// survives power loss). Ignored without [`Self::durable`].
    pub sync: SyncPolicy,
}

impl HostPathConfig {
    /// Paper GD parameters, 8 shards, 4 workers, 256-chunk batches, live
    /// decoder sync, synchronous ingest.
    pub fn paper_default() -> Self {
        Self {
            engine: EngineConfig::paper_default(),
            batch_chunks: 256,
            src: MacAddress::local(2),
            dst: MacAddress::local(1),
            raw_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            live_sync: true,
            pipeline_depth: None,
            durable: None,
            checkpoint_cadence: 1,
            sync: SyncPolicy::Flush,
        }
    }

    /// `paper_default` with pipelined ingest at `depth` batches in flight.
    pub fn pipelined(depth: usize) -> Self {
        Self {
            pipeline_depth: Some(depth),
            ..Self::paper_default()
        }
    }

    /// `paper_default` with a durable store at `dir` (see
    /// [`Self::durable`]).
    pub fn durable(dir: impl Into<PathBuf>) -> Self {
        Self {
            durable: Some(dir.into()),
            ..Self::paper_default()
        }
    }

    /// The engine builder this configuration describes. Public so other
    /// front-ends over the same configuration — the network server, most
    /// prominently — construct byte-identical engines to the in-process
    /// host path.
    pub fn engine_builder(&self) -> EngineBuilder {
        let mut builder = EngineBuilder::new().config(self.engine);
        if let Some(depth) = self.pipeline_depth {
            builder = builder.pipelined(depth);
        }
        if let Some(dir) = &self.durable {
            builder = builder
                .durable(dir.clone())
                .checkpoint_cadence(self.checkpoint_cadence)
                .sync_policy(self.sync);
        }
        builder
    }
}

/// A host NIC-side compression pipeline: data in, wire-ready frames out
/// (for the GD default, interleaved with the control frames that keep a
/// decoder live-synced). Generic over the engine's
/// [`CompressionBackend`]; see the module docs.
pub struct EngineHostPath<B: CompressionBackend = GdBackend> {
    /// `None` only transiently, while a pipelined stream owns the engine
    /// (and permanently if such a stream fails — see
    /// [`Self::pipelined_via`]).
    engine: Option<CompressionEngine<B>>,
    control: EngineControlPlane,
    config: HostPathConfig,
    /// Recovery summary of a warm restart (durable path only; `None` on a
    /// cold start).
    warm: Option<WarmStart>,
    /// Control frames re-announcing the recovered dictionary after a warm
    /// restart; the caller puts them on the wire before any new data
    /// ([`Self::take_restart_sync_frames`]).
    restart_sync: Vec<EthernetFrame>,
}

impl EngineHostPath<GdBackend> {
    /// Builds the GD-backed host path. With [`HostPathConfig::durable`]
    /// set and an existing store at that directory, this is a **warm
    /// restart**: the dictionary rehydrates from disk,
    /// [`Self::warm_start`] reports the recovered batch boundary, and
    /// [`Self::take_restart_sync_frames`] carries the in-band
    /// re-announcement that replaces a cold-start snapshot resync.
    pub fn new(config: HostPathConfig) -> Result<Self> {
        let mut engine = config.engine_builder().build()?;
        let mut control = EngineControlPlane::new();
        let warm = engine.take_warm_start();
        let mut restart_sync = Vec::new();
        if let Some(warm) = &warm {
            if config.live_sync {
                // Re-announce every live mapping with fresh nonces: heals a
                // decoder that missed the crash-window tail and re-syncs
                // the nonce table a surviving decoder echoes into removes.
                let live = engine
                    .snapshot()
                    .entries
                    .into_iter()
                    .map(|(id, basis)| (id, basis.to_bytes()));
                let floor = warm.dictionary.delta_seq.min(u32::MAX as u64) as u32;
                restart_sync = control
                    .reseed(live, floor)
                    .into_iter()
                    .map(|message| message.to_frame(config.src, config.dst))
                    .collect();
            }
        }
        Ok(Self {
            engine: Some(engine),
            control,
            config,
            warm,
            restart_sync,
        })
    }

    /// Merged dictionary snapshot, for *cold* decoder sync. With
    /// [`HostPathConfig::live_sync`] enabled the emitted frame stream is
    /// self-sufficient; under churn a post-hoc snapshot alone aliases
    /// recycled identifiers.
    pub fn snapshot(&self) -> DictionarySnapshot {
        self.engine().snapshot()
    }
}

impl<B: CompressionBackend> EngineHostPath<B> {
    /// Builds a host path over an explicit backend instance — e.g.
    /// `EngineHostPath::with_backend(config, DeflateBackend::default())`
    /// for the gzip-backed path. The engine configuration is validated once;
    /// for byte-stream backends (`unit_bytes == 1`)
    /// [`HostPathConfig::batch_chunks`] counts bytes per emitted payload, so
    /// size it in kilobytes for deflate to give each gzip member a window
    /// worth compressing.
    pub fn with_backend(config: HostPathConfig, backend: B) -> Result<Self> {
        let mut engine = config.engine_builder().backend(backend).build()?;
        let warm = engine.take_warm_start();
        Ok(Self {
            engine: Some(engine),
            control: EngineControlPlane::new(),
            config,
            warm,
            // Non-GD backends are delta-less and self-contained: nothing to
            // re-announce.
            restart_sync: Vec::new(),
        })
    }

    /// Recovery summary of a warm restart: the committed batch boundary the
    /// engine resumed from (`batches`, `bytes_in`, `frames` tell the caller
    /// where to resume feeding input), the frames committed before the
    /// crash, and whether the restore was bit-exact. `None` on a cold
    /// start or without [`HostPathConfig::durable`].
    pub fn warm_start(&self) -> Option<&WarmStart> {
        self.warm.as_ref()
    }

    /// Takes the in-band re-announcement frames of a warm restart (empty
    /// on a cold start, without live sync, or once taken). Put these on
    /// the wire **before** any newly compressed frames: they re-install
    /// every recovered mapping under fresh nonces, so a decoder that kept
    /// its state keeps retiring future evictions correctly and a decoder
    /// that missed the crash-window control tail is healed — the
    /// warm-restart replacement for a cold-start snapshot preload.
    pub fn take_restart_sync_frames(&mut self) -> Vec<EthernetFrame> {
        std::mem::take(&mut self.restart_sync)
    }

    /// The underlying engine (statistics, snapshot, dictionary).
    pub fn engine(&self) -> &CompressionEngine<B> {
        self.engine
            .as_ref()
            .expect("engine lost to a failed pipelined stream")
    }

    /// The mirrored decompressor for the frames this path emits (feed it
    /// the received payloads in order).
    pub fn decompressor(&self) -> Result<EngineDecompressor<B>> {
        Ok(self.engine().decompressor()?)
    }

    /// Control-plane counters of the live sync protocol.
    pub fn control_stats(&self) -> EngineControlStats {
        self.control.stats()
    }

    /// Processes a decoder acknowledgement (`MappingInstalled`), discarding
    /// stale nonces; returns whether it matched a pending install.
    pub fn handle_ack(&mut self, id: u64, nonce: u32) -> bool {
        self.control.handle_ack(id, nonce)
    }

    /// Compresses a buffer into wire-ready Ethernet frames (one frame per
    /// stream record, plus interleaved control frames under live sync) and
    /// the stream totals.
    pub fn compress_to_frames(
        &mut self,
        data: &[u8],
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.push_record(data))
    }

    /// Compresses every chunk of a workload generator into frames, feeding
    /// the engine through the streaming API.
    pub fn compress_workload_to_frames(
        &mut self,
        workload: &dyn ChunkWorkload,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.consume_workload(workload))
    }

    /// Shared frame-building stream harness: sets up the engine stream with
    /// a sink that wraps every payload in an Ethernet frame (and, under live
    /// sync, a control sink that interleaves install/remove frames at their
    /// journal positions), runs `feed`, and collects the summary.
    fn compress_via(
        &mut self,
        feed: impl FnOnce(
            &mut EngineStream<'_, FrameSink<'_>, ControlSink<'_>, B>,
        ) -> std::result::Result<(), zipline_engine::EngineError>,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        // Both sinks push into one ordered frame sequence; the RefCell lets
        // the payload and control closures share it.
        let frames: RefCell<Vec<EthernetFrame>> = RefCell::new(Vec::new());
        let (src, dst, raw_ethertype) =
            (self.config.src, self.config.dst, self.config.raw_ethertype);
        let Self {
            engine,
            control,
            config,
            ..
        } = self;
        let engine = engine
            .as_mut()
            .expect("engine lost to a failed pipelined stream");
        let sink: FrameSink<'_> = Box::new(|pt, bytes| {
            let ethertype = pt.ethertype().unwrap_or(raw_ethertype);
            frames
                .borrow_mut()
                .push(EthernetFrame::new(dst, src, ethertype, bytes.to_vec()));
        });
        let control_sink: Option<ControlSink<'_>> = config.live_sync.then(|| {
            Box::new(|update: &DictionaryUpdate| {
                control.push_frames_for(update, src, dst, &mut frames.borrow_mut());
            }) as ControlSink<'_>
        });
        let mut stream =
            EngineStream::with_control_sink(engine, config.batch_chunks, sink, control_sink);
        feed(&mut stream)?;
        let summary = stream.finish()?;
        Ok((frames.into_inner(), summary))
    }
}

impl<B: CompressionBackend + Send + 'static> EngineHostPath<B> {
    /// [`Self::compress_to_frames`] over the pipelined ingest path: record
    /// accumulation overlaps with compression on a dedicated engine worker
    /// (see the module docs' decision note). Emits the **bit-identical**
    /// frame sequence. Requires [`HostPathConfig::pipeline_depth`].
    pub fn compress_to_frames_pipelined(
        &mut self,
        data: &[u8],
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.pipelined_via(|stream| stream.push_record(data))
    }

    /// [`Self::compress_workload_to_frames`] over the pipelined ingest
    /// path; the workload iterator runs on the calling thread while batches
    /// compress on the engine worker — the producer-consumer overlap the
    /// pipeline exists for.
    pub fn compress_workload_to_frames_pipelined(
        &mut self,
        workload: &dyn ChunkWorkload,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.pipelined_via(|stream| stream.consume_workload(workload))
    }

    /// Pipelined sibling of [`Self::compress_via`]: identical sinks and
    /// frame assembly, but the engine moves into a
    /// [`PipelinedStream`](zipline_engine::PipelinedStream) for the call
    /// (both sinks still run on the calling thread) and is restored when
    /// the stream finishes. If the stream fails *mid-stream*, the engine is
    /// lost with it — acceptable because such a failure leaves the
    /// compressor/decoder pair out of sync anyway. A configuration error
    /// (the path was built without [`HostPathConfig::pipeline_depth`]) is
    /// caught *before* the engine moves, so it never costs the engine.
    fn pipelined_via(
        &mut self,
        feed: impl FnOnce(
            &mut PipelinedStream<FrameSink<'_>, ControlSink<'_>, B>,
        ) -> std::result::Result<(), zipline_engine::EngineError>,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        if self.config.pipeline_depth.is_none() {
            return Err(zipline_gd::error::GdError::InvalidConfig(
                "host path was not configured for pipelined ingest; \
                 set HostPathConfig::pipeline_depth"
                    .into(),
            )
            .into());
        }
        let frames: RefCell<Vec<EthernetFrame>> = RefCell::new(Vec::new());
        let (src, dst, raw_ethertype) =
            (self.config.src, self.config.dst, self.config.raw_ethertype);
        let Self {
            engine,
            control,
            config,
            ..
        } = self;
        let owned_engine = engine
            .take()
            .expect("engine lost to a failed pipelined stream");
        let sink: FrameSink<'_> = Box::new(|pt, bytes| {
            let ethertype = pt.ethertype().unwrap_or(raw_ethertype);
            frames
                .borrow_mut()
                .push(EthernetFrame::new(dst, src, ethertype, bytes.to_vec()));
        });
        let control_sink: Option<ControlSink<'_>> = config.live_sync.then(|| {
            Box::new(|update: &DictionaryUpdate| {
                control.push_frames_for(update, src, dst, &mut frames.borrow_mut());
            }) as ControlSink<'_>
        });
        let mut stream = PipelinedStream::with_control_sink(
            owned_engine,
            config.batch_chunks,
            sink,
            control_sink,
        )?;
        feed(&mut stream)?;
        let (restored_engine, summary) = stream.finish()?;
        *engine = Some(restored_engine);
        Ok((frames.into_inner(), summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
    use crate::deployment::{DeploymentConfig, ZipLineDeployment};
    use zipline_engine::SpawnPolicy;
    use zipline_gd::config::GdConfig;
    use zipline_net::time::SimTime;
    use zipline_switch::packet_ctx::PacketContext;
    use zipline_switch::program::PipelineProgram;
    use zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

    fn sensor_style_data(chunks: u32) -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = (i % 5) as u8;
            chunk[31] = 0xEE;
            data.extend_from_slice(&chunk);
        }
        data
    }

    /// Feeds every frame through the decoder program, returning the
    /// concatenated restored payloads (frames forwarded to the data egress
    /// port only — acks towards the control port and consumed control frames
    /// are not data).
    fn decode_frames(decoder: &mut ZipLineDecodeProgram, frames: Vec<EthernetFrame>) -> Vec<u8> {
        let data_port = decoder.config().data_egress_port;
        let mut restored = Vec::new();
        for frame in frames {
            let mut ctx = PacketContext::new(0, frame);
            decoder.ingress(&mut ctx, SimTime::ZERO);
            if ctx.egress_port == Some(data_port) {
                restored.extend_from_slice(&ctx.frame.payload);
            }
        }
        restored
    }

    #[test]
    fn host_compressed_frames_restore_through_decoder_program() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let mut data = sensor_style_data(120);
        data.extend_from_slice(b"raw-tail");
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        let control_frames = frames
            .iter()
            .filter(|f| f.ethertype == crate::control::ETHERTYPE_ZIPLINE_CONTROL)
            .count();
        assert_eq!(
            summary.payloads_emitted as usize + control_frames,
            frames.len()
        );
        assert_eq!(summary.control_updates as usize, control_frames);
        assert!(summary.compressed_payloads > 100, "most chunks deduplicate");
        assert!(
            (summary.wire_bytes as usize) < data.len() / 2,
            "wire bytes shrink"
        );

        // Decoder switch program, synced purely by the in-band control
        // frames — no snapshot needed.
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let restored = decode_frames(&mut decoder, frames);
        assert_eq!(restored, data);
        assert_eq!(decoder.stats().decode_failures, 0);
    }

    #[test]
    fn host_path_through_full_deployment_roundtrips() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let data = sensor_style_data(80);
        let (frames, _) = host.compress_to_frames(&data).unwrap();

        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        let received: Vec<u8> = outcome.received_payloads.concat();
        assert_eq!(received, data, "in-network restoration is lossless");
    }

    #[test]
    fn snapshot_only_sync_still_works_below_capacity() {
        let config = HostPathConfig {
            live_sync: false,
            ..HostPathConfig::paper_default()
        };
        let mut host = EngineHostPath::new(config).unwrap();
        let data = sensor_style_data(80);
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        assert_eq!(summary.control_updates, 0);
        assert_eq!(summary.payloads_emitted as usize, frames.len());

        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        deployment.preload_decoder_snapshot(host.snapshot());
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.received_payloads.concat(), data);
    }

    // ---- dictionary-churn regression (the PR-3 aliasing bug) -------------

    /// Small identifier space so churn is cheap to provoke: 64 identifiers,
    /// 32-byte chunks (m = 8).
    fn churny_config(live_sync: bool) -> HostPathConfig {
        HostPathConfig {
            engine: EngineConfig {
                gd: GdConfig::for_parameters(8, 6).unwrap(),
                shards: 4,
                workers: 2,
                spawn: SpawnPolicy::Inline,
            },
            batch_chunks: 64,
            src: MacAddress::local(2),
            dst: MacAddress::local(1),
            raw_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            live_sync,
            pipeline_depth: None,
            durable: None,
            checkpoint_cadence: 1,
            sync: SyncPolicy::Flush,
        }
    }

    /// 4× more distinct bases than the dictionary holds, each appearing
    /// twice in a row — the repeats compress to `Ref` records whose
    /// identifiers are later recycled (see `zipline_traces::churn`).
    fn churn_workload(config: &HostPathConfig) -> ChurnWorkload {
        ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(
            config.engine.gd.dictionary_capacity(),
            4,
            config.engine.gd.chunk_bytes,
        ))
    }

    fn churny_decoder(config: &HostPathConfig) -> ZipLineDecodeProgram {
        ZipLineDecodeProgram::new(DecoderConfig {
            gd: config.engine.gd,
            ..DecoderConfig::paper_default()
        })
        .unwrap()
    }

    /// Pins the bug this PR fixes: once the dictionary recycles identifiers,
    /// a post-hoc snapshot maps recycled ids to their *latest* bases, so
    /// `Ref` frames emitted before an eviction silently alias to the wrong
    /// basis and the stream misrestores.
    #[test]
    fn snapshot_only_sync_aliases_recycled_identifiers_under_churn() {
        let config = churny_config(false);
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        // 4x more distinct bases than identifiers.
        let data = churn_workload(&config).bytes();
        let (frames, _) = host.compress_to_frames(&data).unwrap();
        assert!(
            host.engine().stats().evictions > 0,
            "the workload must churn the dictionary"
        );

        let mut decoder = churny_decoder(&config);
        decoder
            .install_snapshot(&host.snapshot(), SimTime::ZERO)
            .unwrap();
        let restored = decode_frames(&mut decoder, frames);
        assert_ne!(
            restored, data,
            "snapshot-only sync must misrestore under churn — if this now \
             roundtrips, the regression pin has lost its bite"
        );
    }

    /// The fix: with live incremental sync the same churn-heavy stream
    /// roundtrips losslessly — every `Ref` is preceded on the wire by the
    /// install that makes it decodable, and recycled identifiers are retired
    /// before re-installation.
    #[test]
    fn live_sync_roundtrips_churn_losslessly() {
        let config = churny_config(true);
        let capacity = config.engine.gd.dictionary_capacity() as u64;
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let workload = churn_workload(&config);
        let data = workload.bytes();
        // Feed through the workload-iterator front-end (the streaming API).
        let (frames, summary) = host.compress_workload_to_frames(&workload).unwrap();
        assert!(host.engine().stats().evictions > 0, "workload churns");
        assert!(
            summary.control_updates > capacity,
            "churn generates more installs than the dictionary holds"
        );

        let mut decoder = churny_decoder(&config);
        let restored = decode_frames(&mut decoder, frames);
        assert_eq!(restored, data, "live sync restores losslessly");
        assert_eq!(decoder.stats().decode_failures, 0);
        let stats = host.control_stats();
        assert!(stats.removes_sent > 0, "evictions stream removes");
        assert_eq!(
            stats.installs_sent,
            host.engine().stats().bases_learned,
            "one install per learned basis"
        );
    }

    /// End-to-end: the same churn-heavy stream through the full simulated
    /// deployment (control frames travel in-band through the encoder switch
    /// and are consumed by the decoder switch, whose acks flow back over the
    /// out-of-band channel).
    #[test]
    fn live_sync_churn_roundtrips_through_full_deployment() {
        let config = churny_config(true);
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let data = churn_workload(&config).bytes();
        let (frames, _) = host.compress_to_frames(&data).unwrap();

        let mut deployment = ZipLineDeployment::new(DeploymentConfig {
            gd: config.engine.gd,
            ..DeploymentConfig::fast_test()
        })
        .unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.received_payloads.concat(), data);
        assert_eq!(outcome.decoder_stats.decode_failures, 0);
    }

    // ---- pipelined ingest through the host path (ISSUE 5) ----------------

    /// The pipelined push path emits the bit-identical frame sequence —
    /// payload frames *and* interleaved control frames — on the churn-heavy
    /// live-sync workload, for every spawn policy and several depths.
    #[test]
    fn pipelined_frames_are_bit_identical_to_synchronous() {
        let sync_config = churny_config(true);
        let mut sync_host = EngineHostPath::new(sync_config.clone()).unwrap();
        let workload = churn_workload(&sync_config);
        let (sync_frames, sync_summary) = sync_host.compress_workload_to_frames(&workload).unwrap();
        assert!(sync_summary.control_updates > 0, "workload churns");

        for spawn in [SpawnPolicy::Inline, SpawnPolicy::Threads, SpawnPolicy::Auto] {
            for depth in [1usize, 2, 4] {
                let config = HostPathConfig {
                    engine: EngineConfig {
                        spawn,
                        ..sync_config.engine
                    },
                    pipeline_depth: Some(depth),
                    ..sync_config.clone()
                };
                let mut host = EngineHostPath::new(config).unwrap();
                let (frames, summary) = host
                    .compress_workload_to_frames_pipelined(&workload)
                    .unwrap();
                assert_eq!(
                    frames, sync_frames,
                    "spawn = {spawn:?}, depth = {depth}: frame sequences diverge"
                );
                assert_eq!(summary, sync_summary, "spawn = {spawn:?}, depth = {depth}");
            }
        }
    }

    /// Pipelined churn stream through the full simulated deployment: the
    /// asynchronous ingest layer preserves the in-band control ordering the
    /// decoder depends on.
    #[test]
    fn pipelined_churn_roundtrips_through_full_deployment() {
        let config = HostPathConfig {
            pipeline_depth: Some(2),
            ..churny_config(true)
        };
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let data = churn_workload(&config).bytes();
        let (frames, _) = host.compress_to_frames_pipelined(&data).unwrap();
        assert!(host.engine().stats().evictions > 0, "workload churns");

        let mut deployment = ZipLineDeployment::new(DeploymentConfig {
            gd: config.engine.gd,
            ..DeploymentConfig::fast_test()
        })
        .unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.received_payloads.concat(), data);
        assert_eq!(outcome.decoder_stats.decode_failures, 0);
    }

    // ---- durable warm restart (ISSUE 6) ----------------------------------

    /// The tentpole host-level property: a durable host path killed between
    /// streams warm-restarts over the same directory and resumes the
    /// churn-heavy workload against a decoder that **kept its state** — no
    /// snapshot preload, no decode failures, lossless end to end. The
    /// restart re-announces every live mapping in-band
    /// ([`EngineHostPath::take_restart_sync_frames`]) so the surviving
    /// decoder's nonce table heals before the first resumed `Ref` frame.
    #[test]
    fn warm_restart_resumes_churn_against_a_surviving_decoder() {
        let dir = std::env::temp_dir().join(format!("zipline-host-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = HostPathConfig {
            durable: Some(dir.clone()),
            ..churny_config(true)
        };
        let workload = zipline_traces::CrashWorkload::exceeding_capacity(
            config.engine.gd.dictionary_capacity(),
            4,
            config.engine.gd.chunk_bytes,
        );
        let mut decoder = churny_decoder(&config);
        let mut restored = Vec::new();

        // Incarnation 1: compresses the pre-crash phase, then dies.
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        assert!(host.warm_start().is_none(), "fresh store starts cold");
        let (frames, _) = host
            .compress_workload_to_frames(&workload.pre_crash())
            .unwrap();
        restored.extend_from_slice(&decode_frames(&mut decoder, frames));
        drop(host);

        // Incarnation 2 over the same directory: warm restart — the
        // recovered cursor matches the crash point, and the re-announcement
        // frames replace the cold-start snapshot resync.
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let warm = host.warm_start().expect("store is warm");
        assert!(warm.batches > 0);
        assert_eq!(warm.bytes_in, workload.crash_offset_bytes() as u64);
        let sync = host.take_restart_sync_frames();
        assert!(!sync.is_empty(), "restart re-announces live mappings");
        // Install frames carry no data; feeding them heals the decoder's
        // nonce table without touching the restored payload stream.
        restored.extend_from_slice(&decode_frames(&mut decoder, sync));
        let (frames, _) = host
            .compress_workload_to_frames(&workload.post_crash())
            .unwrap();
        restored.extend_from_slice(&decode_frames(&mut decoder, frames));
        drop(host);

        assert_eq!(
            restored,
            workload.full().bytes(),
            "crash-spanning roundtrip is lossless"
        );
        assert_eq!(decoder.stats().decode_failures, 0);

        // A third incarnation sees the full stream committed.
        let host = EngineHostPath::new(config).unwrap();
        let warm = host.warm_start().expect("still warm");
        assert_eq!(warm.bytes_in, workload.full().bytes().len() as u64);
        drop(host);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The host path survives alternating pipelined and synchronous pushes:
    /// the engine (dictionary state included) is handed back after every
    /// pipelined stream, so the combined frame sequence still decodes.
    #[test]
    fn pipelined_and_synchronous_pushes_interleave_on_one_engine() {
        let config = HostPathConfig {
            pipeline_depth: Some(1),
            ..HostPathConfig::paper_default()
        };
        let mut host = EngineHostPath::new(config).unwrap();
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let mut all_data = Vec::new();
        let mut restored = Vec::new();
        for round in 0..4u8 {
            let data = sensor_style_data(40 + round as u32);
            let (frames, _) = if round % 2 == 0 {
                host.compress_to_frames_pipelined(&data).unwrap()
            } else {
                host.compress_to_frames(&data).unwrap()
            };
            restored.extend_from_slice(&decode_frames(&mut decoder, frames));
            all_data.extend_from_slice(&data);
        }
        assert_eq!(restored, all_data);
        assert_eq!(decoder.stats().decode_failures, 0);
    }

    /// Calling a `*_pipelined` method on a host built without
    /// `pipeline_depth` errors cleanly — and must NOT poison the engine:
    /// the synchronous path keeps working afterwards.
    #[test]
    fn unpipelined_host_rejects_pipelined_push_without_losing_the_engine() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let data = sensor_style_data(20);
        assert!(host.compress_to_frames_pipelined(&data).is_err());
        // The engine survived: the synchronous path still compresses.
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        assert!(!frames.is_empty());
        assert_eq!(summary.bytes_in, data.len() as u64);
    }

    // ---- non-GD backends through the same host path (ISSUE 4) ------------

    use zipline_engine::{CompressionBackend, DeflateBackend, PassthroughBackend};
    use zipline_traces::{
        ChunkWorkload, DnsWorkload, DnsWorkloadConfig, SensorWorkload, SensorWorkloadConfig,
    };

    /// A deflate-friendly host config: byte-stream backends interpret
    /// `batch_chunks` as bytes per payload, so give each gzip member 4 KiB.
    fn deflate_host_config() -> HostPathConfig {
        HostPathConfig {
            batch_chunks: 4096,
            ..HostPathConfig::paper_default()
        }
    }

    /// Runs a backend-emitted frame sequence through the full simulated
    /// deployment and restores the received payloads with the mirrored
    /// backend decompressor.
    fn roundtrip_through_deployment<B: CompressionBackend>(
        host: &mut EngineHostPath<B>,
        frames: Vec<EthernetFrame>,
    ) -> Vec<u8> {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(
            outcome.decoder_stats.decode_failures, 0,
            "the switches restore every frame they processed"
        );
        let mut dec = host.decompressor().unwrap();
        let mut restored = Vec::new();
        for payload in &outcome.received_payloads {
            dec.restore_payload_into(zipline_gd::packet::PacketType::Raw, payload, &mut restored)
                .unwrap();
        }
        restored
    }

    /// The acceptance workloads: `DeflateBackend` roundtrips the sensor,
    /// DNS and churn workloads losslessly through the full deployment — the
    /// gzip members travel as raw frames, get GD-processed and restored by
    /// the switches, and decompress byte-exactly at the receiver.
    #[test]
    fn deflate_host_path_roundtrips_workloads_through_full_deployment() {
        let sensor = SensorWorkload::new(SensorWorkloadConfig::small());
        let dns = DnsWorkload::new(DnsWorkloadConfig::small());
        let churn = ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(64, 4, 32));
        let workloads: [(&str, &dyn ChunkWorkload); 3] =
            [("sensor", &sensor), ("dns", &dns), ("churn", &churn)];
        for (name, workload) in workloads {
            let mut host =
                EngineHostPath::with_backend(deflate_host_config(), DeflateBackend::default())
                    .unwrap();
            let (frames, summary) = host.compress_workload_to_frames(workload).unwrap();
            let data: Vec<u8> = workload.chunks().flatten().collect();
            assert_eq!(summary.bytes_in, data.len() as u64, "workload {name}");
            assert_eq!(
                summary.control_updates, 0,
                "deflate is delta-less; workload {name}"
            );
            assert!(
                summary.wire_bytes < data.len() as u64,
                "gzip compresses the {name} workload"
            );
            let restored = roundtrip_through_deployment(&mut host, frames);
            assert_eq!(restored, data, "workload {name} roundtrips losslessly");
        }
    }

    /// The pipelined ingest layer is backend-generic: the gzip-backed path
    /// compresses a workload through the worker thread and still roundtrips
    /// losslessly through the full deployment.
    #[test]
    fn deflate_pipelined_host_path_roundtrips_through_deployment() {
        let config = HostPathConfig {
            pipeline_depth: Some(2),
            engine: EngineConfig {
                spawn: SpawnPolicy::Threads,
                ..HostPathConfig::paper_default().engine
            },
            ..deflate_host_config()
        };
        let mut host = EngineHostPath::with_backend(config, DeflateBackend::default()).unwrap();
        let workload = SensorWorkload::new(SensorWorkloadConfig::small());
        let (frames, summary) = host
            .compress_workload_to_frames_pipelined(&workload)
            .unwrap();
        let data: Vec<u8> = workload.chunks().flatten().collect();
        assert_eq!(summary.bytes_in, data.len() as u64);
        assert!(summary.wire_bytes < data.len() as u64, "gzip compresses");
        let restored = roundtrip_through_deployment(&mut host, frames);
        assert_eq!(restored, data);
    }

    /// The passthrough backend is the wire floor: ratio exactly 1.0, and the
    /// frames still travel (and restore) through the same deployment.
    #[test]
    fn passthrough_host_path_is_the_ratio_floor_through_the_deployment() {
        let mut host =
            EngineHostPath::with_backend(deflate_host_config(), PassthroughBackend::new()).unwrap();
        let data = sensor_style_data(100);
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        assert_eq!(summary.wire_bytes, data.len() as u64, "floor ratio is 1.0");
        let restored = roundtrip_through_deployment(&mut host, frames);
        assert_eq!(restored, data);
        assert!(host.engine().stats().is_consistent());
        assert!(host.engine().backend().snapshot().is_none());
    }

    /// Backend-generic statistics surface: the deflate engine reports a
    /// ratio below the passthrough floor on a redundant workload, through
    /// the same `CompressionEngine` accessors.
    #[test]
    fn backend_stats_compare_against_the_floor() {
        let data = sensor_style_data(200);
        let mut gzip =
            EngineHostPath::with_backend(deflate_host_config(), DeflateBackend::default()).unwrap();
        let mut floor =
            EngineHostPath::with_backend(deflate_host_config(), PassthroughBackend::new()).unwrap();
        gzip.compress_to_frames(&data).unwrap();
        floor.compress_to_frames(&data).unwrap();
        let gzip_ratio = gzip.engine().stats().compression_ratio().unwrap();
        let floor_ratio = floor.engine().stats().compression_ratio().unwrap();
        assert_eq!(floor_ratio, 1.0);
        assert!(
            gzip_ratio < floor_ratio,
            "gzip ({gzip_ratio:.3}) beats the floor"
        );
        assert!(
            gzip.engine().shard_stats().is_empty(),
            "no shards to report"
        );
    }
}
