//! The engine-backed host-side path.
//!
//! The paper's deployment compresses *in the encoder switch*; this module is
//! the complementary arrangement the `zipline-engine` crate enables: end
//! hosts run the sharded [`CompressionEngine`] themselves and put wire-ready
//! ZipLine frames (types 2 and 3) straight onto the network, so the encoder
//! switch only forwards and the decoder switch restores.
//!
//! The decoder's `identifier → basis` table is kept in sync by **streaming
//! incremental installs**: the engine journals every dictionary mutation
//! (install, evict) into a per-batch
//! [`DictionaryDelta`](zipline_engine::DictionaryDelta), and the
//! [`EngineControlPlane`] turns each update into the out-of-band
//! [`ControlMessage`](crate::control::ControlMessage) format —
//! `InstallMapping` frames carrying a monotonic nonce, `RemoveMapping`
//! frames echoing the nonce of the install they retire. The control frames
//! are emitted *in-band*, interleaved into the output frame sequence
//! immediately before the data frame at whose position the mutation
//! happened, so on an in-order channel every compressed frame is preceded by
//! the control traffic that makes it decodable. This is the paper's
//! two-phase install guarantee (section 5) in streaming form, and it holds
//! even when the dictionary churns past capacity and recycles identifiers —
//! the regime where the older one-shot [`DictionarySnapshot`] sync silently
//! aliased earlier frames to later bases (see the regression tests below).
//!
//! The snapshot path ([`EngineHostPath::snapshot`] /
//! [`ZipLineDecodeProgram::install_snapshot`] /
//! [`ZipLineDeployment::preload_decoder_snapshot`]) remains available for
//! *cold-starting* a decoder mid-stream and for workloads provably below
//! capacity; [`HostPathConfig::live_sync`] turns the live protocol off for
//! those cases.
//!
//! [`CompressionEngine`]: zipline_engine::CompressionEngine
//! [`DictionarySnapshot`]: zipline_engine::DictionarySnapshot
//! [`ZipLineDecodeProgram::install_snapshot`]: crate::decoder::ZipLineDecodeProgram::install_snapshot
//! [`ZipLineDeployment::preload_decoder_snapshot`]: crate::deployment::ZipLineDeployment::preload_decoder_snapshot

use std::cell::RefCell;

use crate::engine_control::{EngineControlPlane, EngineControlStats};
use crate::error::Result;
use zipline_engine::{
    CompressionEngine, DictionarySnapshot, DictionaryUpdate, EngineConfig, EngineStream,
    StreamSummary,
};
use zipline_gd::packet::PacketType;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_traces::ChunkWorkload;

/// Boxed payload sink used by the shared stream harness.
type FrameSink<'a> = Box<dyn FnMut(PacketType, &[u8]) + 'a>;

/// Boxed control sink used by the shared stream harness (live sync).
type ControlSink<'a> = Box<dyn FnMut(&DictionaryUpdate) + 'a>;

/// Configuration of an [`EngineHostPath`].
#[derive(Debug, Clone)]
pub struct HostPathConfig {
    /// Engine parameters (GD config, shard and worker counts).
    pub engine: EngineConfig,
    /// Chunks per engine batch fed by the stream front-end.
    pub batch_chunks: usize,
    /// Source MAC stamped on emitted frames.
    pub src: MacAddress,
    /// Destination MAC stamped on emitted frames.
    pub dst: MacAddress,
    /// EtherType for raw (type 1) frames; processed frames carry the
    /// ZipLine EtherTypes.
    pub raw_ethertype: u16,
    /// Stream incremental install/remove control frames in-band with the
    /// data (the default). When false, the caller must sync the decoder via
    /// [`EngineHostPath::snapshot`] — only sound while the dictionary never
    /// exceeds capacity.
    pub live_sync: bool,
}

impl HostPathConfig {
    /// Paper GD parameters, 8 shards, 4 workers, 256-chunk batches, live
    /// decoder sync.
    pub fn paper_default() -> Self {
        Self {
            engine: EngineConfig::paper_default(),
            batch_chunks: 256,
            src: MacAddress::local(2),
            dst: MacAddress::local(1),
            raw_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            live_sync: true,
        }
    }
}

/// A host NIC-side compression pipeline: data in, ZipLine frames out
/// (interleaved with the control frames that keep a decoder live-synced).
pub struct EngineHostPath {
    engine: CompressionEngine,
    control: EngineControlPlane,
    config: HostPathConfig,
}

impl EngineHostPath {
    /// Builds the host path.
    pub fn new(config: HostPathConfig) -> Result<Self> {
        Ok(Self {
            engine: CompressionEngine::new(config.engine)?,
            control: EngineControlPlane::new(),
            config,
        })
    }

    /// The underlying engine (statistics, snapshot, dictionary).
    pub fn engine(&self) -> &CompressionEngine {
        &self.engine
    }

    /// Control-plane counters of the live sync protocol.
    pub fn control_stats(&self) -> EngineControlStats {
        self.control.stats()
    }

    /// Processes a decoder acknowledgement (`MappingInstalled`), discarding
    /// stale nonces; returns whether it matched a pending install.
    pub fn handle_ack(&mut self, id: u64, nonce: u32) -> bool {
        self.control.handle_ack(id, nonce)
    }

    /// Merged dictionary snapshot, for *cold* decoder sync. With
    /// [`HostPathConfig::live_sync`] enabled the emitted frame stream is
    /// self-sufficient; under churn a post-hoc snapshot alone aliases
    /// recycled identifiers.
    pub fn snapshot(&self) -> DictionarySnapshot {
        self.engine.snapshot()
    }

    /// Compresses a buffer into wire-ready Ethernet frames (one frame per
    /// stream record, plus interleaved control frames under live sync) and
    /// the stream totals.
    pub fn compress_to_frames(
        &mut self,
        data: &[u8],
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.push_record(data))
    }

    /// Compresses every chunk of a workload generator into frames, feeding
    /// the engine through the streaming API.
    pub fn compress_workload_to_frames(
        &mut self,
        workload: &dyn ChunkWorkload,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        self.compress_via(|stream| stream.consume_workload(workload))
    }

    /// Shared frame-building stream harness: sets up the engine stream with
    /// a sink that wraps every payload in an Ethernet frame (and, under live
    /// sync, a control sink that interleaves install/remove frames at their
    /// journal positions), runs `feed`, and collects the summary.
    fn compress_via(
        &mut self,
        feed: impl FnOnce(
            &mut EngineStream<'_, FrameSink<'_>, ControlSink<'_>>,
        ) -> zipline_gd::error::Result<()>,
    ) -> Result<(Vec<EthernetFrame>, StreamSummary)> {
        // Both sinks push into one ordered frame sequence; the RefCell lets
        // the payload and control closures share it.
        let frames: RefCell<Vec<EthernetFrame>> = RefCell::new(Vec::new());
        let (src, dst, raw_ethertype) =
            (self.config.src, self.config.dst, self.config.raw_ethertype);
        let Self {
            engine,
            control,
            config,
        } = self;
        let sink: FrameSink<'_> = Box::new(|pt, bytes| {
            let ethertype = pt.ethertype().unwrap_or(raw_ethertype);
            frames
                .borrow_mut()
                .push(EthernetFrame::new(dst, src, ethertype, bytes.to_vec()));
        });
        let control_sink: Option<ControlSink<'_>> = config.live_sync.then(|| {
            Box::new(|update: &DictionaryUpdate| {
                control.push_frames_for(update, src, dst, &mut frames.borrow_mut());
            }) as ControlSink<'_>
        });
        let mut stream =
            EngineStream::with_control_sink(engine, config.batch_chunks, sink, control_sink);
        feed(&mut stream)?;
        let summary = stream.finish()?;
        Ok((frames.into_inner(), summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
    use crate::deployment::{DeploymentConfig, ZipLineDeployment};
    use zipline_engine::SpawnPolicy;
    use zipline_gd::config::GdConfig;
    use zipline_net::time::SimTime;
    use zipline_switch::packet_ctx::PacketContext;
    use zipline_switch::program::PipelineProgram;
    use zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

    fn sensor_style_data(chunks: u32) -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..chunks {
            let mut chunk = [0u8; 32];
            chunk[0] = (i % 5) as u8;
            chunk[31] = 0xEE;
            data.extend_from_slice(&chunk);
        }
        data
    }

    /// Feeds every frame through the decoder program, returning the
    /// concatenated restored payloads (frames forwarded to the data egress
    /// port only — acks towards the control port and consumed control frames
    /// are not data).
    fn decode_frames(decoder: &mut ZipLineDecodeProgram, frames: Vec<EthernetFrame>) -> Vec<u8> {
        let data_port = decoder.config().data_egress_port;
        let mut restored = Vec::new();
        for frame in frames {
            let mut ctx = PacketContext::new(0, frame);
            decoder.ingress(&mut ctx, SimTime::ZERO);
            if ctx.egress_port == Some(data_port) {
                restored.extend_from_slice(&ctx.frame.payload);
            }
        }
        restored
    }

    #[test]
    fn host_compressed_frames_restore_through_decoder_program() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let mut data = sensor_style_data(120);
        data.extend_from_slice(b"raw-tail");
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        let control_frames = frames
            .iter()
            .filter(|f| f.ethertype == crate::control::ETHERTYPE_ZIPLINE_CONTROL)
            .count();
        assert_eq!(
            summary.payloads_emitted as usize + control_frames,
            frames.len()
        );
        assert_eq!(summary.control_updates as usize, control_frames);
        assert!(summary.compressed_payloads > 100, "most chunks deduplicate");
        assert!(
            (summary.wire_bytes as usize) < data.len() / 2,
            "wire bytes shrink"
        );

        // Decoder switch program, synced purely by the in-band control
        // frames — no snapshot needed.
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        let restored = decode_frames(&mut decoder, frames);
        assert_eq!(restored, data);
        assert_eq!(decoder.stats().decode_failures, 0);
    }

    #[test]
    fn host_path_through_full_deployment_roundtrips() {
        let mut host = EngineHostPath::new(HostPathConfig::paper_default()).unwrap();
        let data = sensor_style_data(80);
        let (frames, _) = host.compress_to_frames(&data).unwrap();

        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        let received: Vec<u8> = outcome.received_payloads.concat();
        assert_eq!(received, data, "in-network restoration is lossless");
    }

    #[test]
    fn snapshot_only_sync_still_works_below_capacity() {
        let config = HostPathConfig {
            live_sync: false,
            ..HostPathConfig::paper_default()
        };
        let mut host = EngineHostPath::new(config).unwrap();
        let data = sensor_style_data(80);
        let (frames, summary) = host.compress_to_frames(&data).unwrap();
        assert_eq!(summary.control_updates, 0);
        assert_eq!(summary.payloads_emitted as usize, frames.len());

        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        deployment.preload_decoder_snapshot(host.snapshot());
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.received_payloads.concat(), data);
    }

    // ---- dictionary-churn regression (the PR-3 aliasing bug) -------------

    /// Small identifier space so churn is cheap to provoke: 64 identifiers,
    /// 32-byte chunks (m = 8).
    fn churny_config(live_sync: bool) -> HostPathConfig {
        HostPathConfig {
            engine: EngineConfig {
                gd: GdConfig::for_parameters(8, 6).unwrap(),
                shards: 4,
                workers: 2,
                spawn: SpawnPolicy::Inline,
            },
            batch_chunks: 64,
            src: MacAddress::local(2),
            dst: MacAddress::local(1),
            raw_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            live_sync,
        }
    }

    /// 4× more distinct bases than the dictionary holds, each appearing
    /// twice in a row — the repeats compress to `Ref` records whose
    /// identifiers are later recycled (see `zipline_traces::churn`).
    fn churn_workload(config: &HostPathConfig) -> ChurnWorkload {
        ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(
            config.engine.gd.dictionary_capacity(),
            4,
            config.engine.gd.chunk_bytes,
        ))
    }

    fn churny_decoder(config: &HostPathConfig) -> ZipLineDecodeProgram {
        ZipLineDecodeProgram::new(DecoderConfig {
            gd: config.engine.gd,
            ..DecoderConfig::paper_default()
        })
        .unwrap()
    }

    /// Pins the bug this PR fixes: once the dictionary recycles identifiers,
    /// a post-hoc snapshot maps recycled ids to their *latest* bases, so
    /// `Ref` frames emitted before an eviction silently alias to the wrong
    /// basis and the stream misrestores.
    #[test]
    fn snapshot_only_sync_aliases_recycled_identifiers_under_churn() {
        let config = churny_config(false);
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        // 4x more distinct bases than identifiers.
        let data = churn_workload(&config).bytes();
        let (frames, _) = host.compress_to_frames(&data).unwrap();
        assert!(
            host.engine().stats().evictions > 0,
            "the workload must churn the dictionary"
        );

        let mut decoder = churny_decoder(&config);
        decoder
            .install_snapshot(&host.snapshot(), SimTime::ZERO)
            .unwrap();
        let restored = decode_frames(&mut decoder, frames);
        assert_ne!(
            restored, data,
            "snapshot-only sync must misrestore under churn — if this now \
             roundtrips, the regression pin has lost its bite"
        );
    }

    /// The fix: with live incremental sync the same churn-heavy stream
    /// roundtrips losslessly — every `Ref` is preceded on the wire by the
    /// install that makes it decodable, and recycled identifiers are retired
    /// before re-installation.
    #[test]
    fn live_sync_roundtrips_churn_losslessly() {
        let config = churny_config(true);
        let capacity = config.engine.gd.dictionary_capacity() as u64;
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let workload = churn_workload(&config);
        let data = workload.bytes();
        // Feed through the workload-iterator front-end (the streaming API).
        let (frames, summary) = host.compress_workload_to_frames(&workload).unwrap();
        assert!(host.engine().stats().evictions > 0, "workload churns");
        assert!(
            summary.control_updates > capacity,
            "churn generates more installs than the dictionary holds"
        );

        let mut decoder = churny_decoder(&config);
        let restored = decode_frames(&mut decoder, frames);
        assert_eq!(restored, data, "live sync restores losslessly");
        assert_eq!(decoder.stats().decode_failures, 0);
        let stats = host.control_stats();
        assert!(stats.removes_sent > 0, "evictions stream removes");
        assert_eq!(
            stats.installs_sent,
            host.engine().stats().bases_learned,
            "one install per learned basis"
        );
    }

    /// End-to-end: the same churn-heavy stream through the full simulated
    /// deployment (control frames travel in-band through the encoder switch
    /// and are consumed by the decoder switch, whose acks flow back over the
    /// out-of-band channel).
    #[test]
    fn live_sync_churn_roundtrips_through_full_deployment() {
        let config = churny_config(true);
        let mut host = EngineHostPath::new(config.clone()).unwrap();
        let data = churn_workload(&config).bytes();
        let (frames, _) = host.compress_to_frames(&data).unwrap();

        let mut deployment = ZipLineDeployment::new(DeploymentConfig {
            gd: config.engine.gd,
            ..DeploymentConfig::fast_test()
        })
        .unwrap();
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.received_payloads.concat(), data);
        assert_eq!(outcome.decoder_stats.decode_failures, 0);
    }
}
