//! The ZipLine *encode* switch program (Figure 1).
//!
//! Data-plane steps, expressed against the Tofino-like primitives of
//! `zipline-switch`:
//!
//! 1. the payload chunk `B` arrives (➊);
//! 2. the CRC extern computes the syndrome `s` (➋);
//! 3. a constant-entries table maps `s` to the single-bit mask `f` (➌) which
//!    is XORed onto `B` (➍);
//! 4. the result is truncated to its rightmost `k` bits to form the basis
//!    (➎);
//! 5. the basis is looked up in the known-IDs match-action table (➏,➐): a hit
//!    emits a *compressed* (type 3) packet carrying `s` + identifier, a miss
//!    emits a *processed but uncompressed* (type 2) packet carrying `s` +
//!    basis and a digest for the control plane (➑).
//!
//! The control-plane half (digest handling, two-phase install with the
//! decoder) lives in [`crate::controller`]; this module wires it to the
//! switch node's digest/control-packet entry points.

use crate::control::ControlMessage;
use crate::controller::EncoderControlPlane;
use crate::error::Result;
use crate::mask_table::SyndromeMaskTable;
use zipline_gd::bits::BitVec;
use zipline_gd::config::GdConfig;
use zipline_gd::hamming::HammingCode;
use zipline_gd::packet::{
    ZipLinePayload, ETHERTYPE_ZIPLINE_COMPRESSED, ETHERTYPE_ZIPLINE_UNCOMPRESSED,
};
use zipline_gd::stats::CompressionStats;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_net::sim::PortId;
use zipline_net::time::SimTime;
use zipline_switch::crc_extern::CrcExtern;
use zipline_switch::packet_ctx::{Digest, PacketContext};
use zipline_switch::program::PipelineProgram;
use zipline_switch::table::ExactMatchTable;

/// Digest kind used for unknown bases.
pub const DIGEST_UNKNOWN_BASIS: u16 = 1;

/// Configuration of the encode program.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// GD parameters (Hamming `m`, identifier width, chunk size).
    pub gd: GdConfig,
    /// Number of payload bytes preceding the chunk that are carried verbatim
    /// (e.g. 2 to skip a DNS transaction identifier).
    pub chunk_offset: usize,
    /// Port on which processed data packets leave towards the decoder.
    pub data_egress_port: PortId,
    /// Port of the out-of-band control channel towards the decoder's control
    /// plane.
    pub control_port: PortId,
    /// Source MAC used on control frames.
    pub control_src: MacAddress,
    /// Destination MAC used on control frames.
    pub control_dst: MacAddress,
    /// When false, the program forwards every packet untouched (the "No op"
    /// baseline of Figure 4) while still counting it.
    pub compression_enabled: bool,
}

impl EncoderConfig {
    /// A two-port encoder with the paper's GD parameters: data ingress on
    /// port 0, data egress on port 1, control channel on port 2.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            data_egress_port: 1,
            control_port: 2,
            control_src: MacAddress::local(0xE0),
            control_dst: MacAddress::local(0xD0),
            compression_enabled: true,
        }
    }
}

/// Per-packet-type counter indices (paper's "packets are classified according
/// to how they are transformed").
pub mod counter_index {
    /// Packets forwarded unprocessed.
    pub const RAW: usize = 0;
    /// Packets emitted as type 2 (syndrome + basis).
    pub const UNCOMPRESSED: usize = 1;
    /// Packets emitted as type 3 (syndrome + identifier).
    pub const COMPRESSED: usize = 2;
    /// In-band control frames forwarded towards the decoder (engine host
    /// path live sync); excluded from the compression statistics.
    pub const CONTROL: usize = 3;
}

/// The ZipLine encode program.
pub struct ZipLineEncodeProgram {
    config: EncoderConfig,
    code: HammingCode,
    crc: CrcExtern,
    mask_table: SyndromeMaskTable,
    /// Known-IDs table: serialized basis → identifier.
    basis_table: ExactMatchTable<Vec<u8>, u64>,
    control_plane: EncoderControlPlane,
    counters: zipline_switch::counter::CounterArray,
    stats: CompressionStats,
    /// Reused packed-word buffer for the chunk being deconstructed.
    chunk_scratch: BitVec,
    /// Recycled wire-payload buffer: each rewritten packet hands its new
    /// payload to the frame and takes the old frame's allocation back as the
    /// next scratch (see [`ZipLinePayload::encode_into`]), so steady-state
    /// rewriting allocates nothing.
    payload_scratch: Vec<u8>,
}

impl ZipLineEncodeProgram {
    /// Builds the program (the equivalent of compiling and loading the P4
    /// program plus its constant table entries).
    pub fn new(config: EncoderConfig) -> Result<Self> {
        config.gd.validate()?;
        let code = HammingCode::new(config.gd.m)?;
        let crc_param = code.crc().spec().poly_low;
        let crc = CrcExtern::new("syndrome", config.gd.m, crc_param)?;
        let mask_table = SyndromeMaskTable::precompute(&code)?;
        let basis_table = ExactMatchTable::new("known-bases", config.gd.dictionary_capacity())?;
        let control_plane = EncoderControlPlane::new(config.gd.id_bits);
        let counters = zipline_switch::counter::CounterArray::new("packet-types", 4)?;
        Ok(Self {
            config,
            code,
            crc,
            mask_table,
            basis_table,
            control_plane,
            counters,
            stats: CompressionStats::new(),
            chunk_scratch: BitVec::new(),
            payload_scratch: Vec::new(),
        })
    }

    /// The program configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Compression statistics accumulated so far.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Per-packet-type counters (see [`counter_index`]).
    pub fn counters(&self) -> &zipline_switch::counter::CounterArray {
        &self.counters
    }

    /// The control-plane agent (for statistics and tests).
    pub fn control_plane(&self) -> &EncoderControlPlane {
        &self.control_plane
    }

    /// Number of activated basis → identifier mappings in the data plane.
    pub fn active_mappings(&self) -> usize {
        self.basis_table.len()
    }

    /// Pre-loads the basis table (and the decoder-agnostic control-plane
    /// dictionary) with the bases of the given chunks — the "static table"
    /// scenario of Figure 3. Returns the identifiers assigned, in the same
    /// order as the distinct bases encountered.
    pub fn preload_static_table(
        &mut self,
        chunks: impl Iterator<Item = Vec<u8>>,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut installed = Vec::new();
        for chunk in chunks {
            if chunk.len() < self.config.chunk_offset + self.config.gd.chunk_bytes {
                continue;
            }
            let (_, _, basis) = self.deconstruct(&chunk)?;
            let key = basis.to_bytes();
            if self.basis_table.peek(&key).is_some() {
                continue;
            }
            if let Some(action) = self.control_plane.handle_unknown_basis(basis, 0) {
                if let Some(evicted) = &action.evicted_basis_bytes {
                    let _ = self.basis_table.remove(evicted);
                }
                // Static preload bypasses the two-phase handshake.
                let _ = self.control_plane.handle_ack(action.id, action.nonce, 0);
                self.basis_table
                    .insert(key.clone(), action.id, SimTime::ZERO)?;
                installed.push((action.id, action.basis_bytes));
            }
        }
        Ok(installed)
    }

    /// Runs the data-plane GD deconstruction on one payload, returning
    /// `(carried bits, syndrome, basis)`.
    ///
    /// Word-parallel: the chunk is packed into `u64` words once (reusing the
    /// program's scratch buffer), the CRC extern hashes the Hamming block as
    /// a bit range of that buffer, and the constant-entries table yields a
    /// flip *position* so the ➌/➍ mask-XOR collapses to a single-word bit
    /// flip applied inside the extracted basis.
    fn deconstruct(&mut self, payload: &[u8]) -> Result<(BitVec, u64, BitVec)> {
        let offset = self.config.chunk_offset;
        let chunk = &payload[offset..offset + self.config.gd.chunk_bytes];
        let extra_bits = self.config.gd.extra_bits();
        let m = self.code.m() as usize;
        let n = self.code.n();
        self.chunk_scratch.load_bytes(chunk);
        // ➋ syndrome via the CRC extern
        let syndrome = self
            .crc
            .hash_bit_range(&self.chunk_scratch, extra_bits, extra_bits + n);
        // ➌/➍ constant-entries flip lookup, ➎ rightmost k bits
        let flip = self
            .mask_table
            .lookup_flip(syndrome)
            .ok_or(zipline_gd::GdError::Malformed(format!(
                "syndrome {syndrome} out of range"
            )))?;
        let mut basis = self.chunk_scratch.slice(extra_bits + m..extra_bits + n);
        self.code.fold_position_into_basis(&mut basis, flip);
        let extra = self.chunk_scratch.slice(0..extra_bits);
        Ok((extra, syndrome, basis))
    }

    fn forward_raw(&mut self, ctx: &mut PacketContext) {
        self.counters
            .count(counter_index::RAW, ctx.frame.payload.len())
            .expect("counter index in range");
        self.stats.chunks_in += 1;
        self.stats.emitted_raw += 1;
        self.stats.bytes_in += ctx.frame.payload.len() as u64;
        self.stats.bytes_out += ctx.frame.payload.len() as u64;
        ctx.forward_to(self.config.data_egress_port);
    }
}

impl PipelineProgram for ZipLineEncodeProgram {
    fn name(&self) -> String {
        "zipline-encode".to_string()
    }

    fn ingress(&mut self, ctx: &mut PacketContext, now: SimTime) {
        let payload_len = ctx.frame.payload.len();
        // In-band control frames (engine host path live sync) pass through
        // towards the decoder untouched and *uncounted* — they are control
        // traffic, not data, and must not distort the compression
        // statistics.
        if ctx.frame.ethertype == crate::control::ETHERTYPE_ZIPLINE_CONTROL {
            self.counters
                .count(counter_index::CONTROL, payload_len)
                .expect("counter index in range");
            ctx.forward_to(self.config.data_egress_port);
            return;
        }
        let processable = self.config.compression_enabled
            && ctx.frame.ethertype != ETHERTYPE_ZIPLINE_COMPRESSED
            && ctx.frame.ethertype != ETHERTYPE_ZIPLINE_UNCOMPRESSED
            && payload_len >= self.config.chunk_offset + self.config.gd.chunk_bytes;
        if !processable {
            self.forward_raw(ctx);
            return;
        }

        // No payload clone: deconstruct borrows the frame's payload in place
        // (the scratch buffer holds the packed chunk) and the rewritten
        // payload is fully assembled before the frame is replaced.
        let (extra, syndrome, basis) = match self.deconstruct(&ctx.frame.payload) {
            Ok(parts) => parts,
            Err(_) => {
                self.forward_raw(ctx);
                return;
            }
        };
        let basis_key = basis.to_bytes();

        self.stats.chunks_in += 1;
        self.stats.bytes_in += payload_len as u64;

        let prefix_end = self.config.chunk_offset;
        let suffix_start = self.config.chunk_offset + self.config.gd.chunk_bytes;
        match self.basis_table.lookup(&basis_key, now) {
            Some(id) => {
                // ➏ hit: emit a compressed (type 3) packet.
                self.control_plane.touch(&basis, now.as_nanos());
                let zl = ZipLinePayload::Compressed {
                    deviation: syndrome,
                    extra,
                    id,
                };
                let mut new_payload = std::mem::take(&mut self.payload_scratch);
                zl.encode_into(&self.config.gd, &mut new_payload)
                    .expect("well-formed payload");
                new_payload.extend_from_slice(&ctx.frame.payload[..prefix_end]);
                new_payload.extend_from_slice(&ctx.frame.payload[suffix_start..]);
                self.counters
                    .count(counter_index::COMPRESSED, new_payload.len())
                    .expect("counter index in range");
                self.stats.emitted_compressed += 1;
                self.stats.bytes_out += new_payload.len() as u64;
                // Recycle the replaced frame's payload as the next scratch.
                let new_frame = ctx
                    .frame
                    .with_payload(ETHERTYPE_ZIPLINE_COMPRESSED, new_payload);
                self.payload_scratch = std::mem::replace(&mut ctx.frame, new_frame).payload;
            }
            None => {
                // ➐ miss: emit a processed-but-uncompressed (type 2) packet
                // and notify the control plane via a digest (➑).
                let zl = ZipLinePayload::Uncompressed {
                    deviation: syndrome,
                    extra,
                    basis: basis.clone(),
                };
                let mut new_payload = std::mem::take(&mut self.payload_scratch);
                zl.encode_into(&self.config.gd, &mut new_payload)
                    .expect("well-formed payload");
                new_payload.extend_from_slice(&ctx.frame.payload[..prefix_end]);
                new_payload.extend_from_slice(&ctx.frame.payload[suffix_start..]);
                self.counters
                    .count(counter_index::UNCOMPRESSED, new_payload.len())
                    .expect("counter index in range");
                self.stats.emitted_uncompressed += 1;
                self.stats.digests_sent += 1;
                self.stats.bytes_out += new_payload.len() as u64;
                let new_frame = ctx
                    .frame
                    .with_payload(ETHERTYPE_ZIPLINE_UNCOMPRESSED, new_payload);
                self.payload_scratch = std::mem::replace(&mut ctx.frame, new_frame).payload;
                ctx.emit_digest(Digest::new(DIGEST_UNKNOWN_BASIS, basis_key));
            }
        }
        ctx.forward_to(self.config.data_egress_port);
    }

    fn handle_digest(&mut self, digest: Digest, now: SimTime) -> Vec<(PortId, EthernetFrame)> {
        if digest.kind != DIGEST_UNKNOWN_BASIS {
            return Vec::new();
        }
        let mut basis = BitVec::from_bytes(&digest.data);
        basis.truncate(self.config.gd.k());
        match self
            .control_plane
            .handle_unknown_basis(basis, now.as_nanos())
        {
            Some(action) => {
                // An identifier being recycled must stop matching its old
                // basis in the data plane immediately.
                if let Some(evicted) = &action.evicted_basis_bytes {
                    let _ = self.basis_table.remove(evicted);
                }
                self.stats.bases_learned += 1;
                if action.evicted_basis_bytes.is_some() {
                    self.stats.evictions += 1;
                }
                let msg = ControlMessage::InstallMapping {
                    id: action.id,
                    nonce: action.nonce,
                    basis: action.basis_bytes,
                };
                vec![(
                    self.config.control_port,
                    msg.to_frame(self.config.control_src, self.config.control_dst),
                )]
            }
            None => Vec::new(),
        }
    }

    fn handle_control_packet(
        &mut self,
        frame: EthernetFrame,
        now: SimTime,
    ) -> Vec<(PortId, EthernetFrame)> {
        let Ok(message) = ControlMessage::from_frame(&frame) else {
            return Vec::new();
        };
        if let ControlMessage::MappingInstalled { id, nonce } = message {
            if let Some((basis_key, id)) = self.control_plane.handle_ack(id, nonce, now.as_nanos())
            {
                // Activate the forward mapping only now that the decoder is
                // guaranteed to hold the reverse mapping.
                if self.basis_table.peek(&basis_key).is_none() && !self.basis_table.is_full() {
                    let _ = self.basis_table.insert(basis_key, id, now);
                }
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipline_gd::codec::ChunkCodec;
    use zipline_net::ethernet::ETHERTYPE_IPV4;

    fn frame_with_payload(payload: Vec<u8>) -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(2),
            MacAddress::local(1),
            ETHERTYPE_IPV4,
            payload,
        )
    }

    fn small_config() -> EncoderConfig {
        EncoderConfig {
            gd: GdConfig::for_parameters(3, 4).unwrap(),
            ..EncoderConfig::paper_default()
        }
    }

    #[test]
    fn control_frames_pass_through_uncounted() {
        let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let frame = ControlMessage::InstallMapping {
            id: 3,
            nonce: 0,
            basis: vec![0xAB; 31],
        }
        .to_frame(MacAddress::local(2), MacAddress::local(1));
        let mut ctx = PacketContext::new(0, frame.clone());
        encoder.ingress(&mut ctx, SimTime::ZERO);
        // Forwarded unmodified on the data path, not compressed.
        assert_eq!(ctx.frame, frame);
        assert_eq!(ctx.egress_port, Some(encoder.config().data_egress_port));
        // Counted as control traffic, invisible to the compression stats.
        assert_eq!(
            encoder
                .counters()
                .read(counter_index::CONTROL)
                .unwrap()
                .packets,
            1
        );
        assert_eq!(encoder.stats().chunks_in, 0);
        assert_eq!(encoder.stats().emitted_raw, 0);
        assert_eq!(encoder.stats().bytes_in, 0);
    }

    #[test]
    fn data_plane_deconstruction_matches_the_reference_codec() {
        // The switch-primitive implementation (CRC extern + constant mask
        // table + bit slicing) must agree with the host-side ChunkCodec.
        let mut program = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let codec = ChunkCodec::new(&GdConfig::paper_default()).unwrap();
        for seed in 0..50u8 {
            let chunk: Vec<u8> = (0..32u8)
                .map(|i| i.wrapping_mul(seed).wrapping_add(seed))
                .collect();
            let (extra, syndrome, basis) = program.deconstruct(&chunk).unwrap();
            let reference = codec.encode_chunk(&chunk).unwrap();
            assert_eq!(extra, reference.extra, "seed {seed}");
            assert_eq!(syndrome, reference.deviation, "seed {seed}");
            assert_eq!(basis, reference.basis, "seed {seed}");
        }
    }

    #[test]
    fn unknown_basis_emits_type2_and_a_digest() {
        let mut program = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let mut ctx = PacketContext::new(0, frame_with_payload(vec![0x42; 32]));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);
        assert_eq!(ctx.frame.payload.len(), 33, "type 2 payload incl. padding");
        assert_eq!(ctx.egress_port, Some(1));
        assert_eq!(ctx.digests.len(), 1);
        assert_eq!(program.stats().emitted_uncompressed, 1);
        assert_eq!(
            program
                .counters()
                .read(counter_index::UNCOMPRESSED)
                .unwrap()
                .packets,
            1
        );
    }

    #[test]
    fn learning_flow_activates_mapping_and_compresses_subsequent_packets() {
        let mut program = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let payload = vec![0x42u8; 32];

        // First packet: miss + digest.
        let mut ctx = PacketContext::new(0, frame_with_payload(payload.clone()));
        program.ingress(&mut ctx, SimTime::ZERO);
        let digest = ctx.digests.pop().unwrap();

        // Control plane handles the digest and produces an install request.
        let out = program.handle_digest(digest, SimTime::from_micros(900));
        assert_eq!(out.len(), 1);
        let (port, frame) = &out[0];
        assert_eq!(*port, 2);
        let msg = ControlMessage::from_frame(frame).unwrap();
        let (id, nonce) = match msg {
            ControlMessage::InstallMapping { id, nonce, .. } => (id, nonce),
            other => panic!("unexpected message {other:?}"),
        };

        // Before the ack, packets still go out uncompressed.
        let mut ctx = PacketContext::new(0, frame_with_payload(payload.clone()));
        program.ingress(&mut ctx, SimTime::from_micros(950));
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);

        // The decoder's acknowledgement activates the mapping.
        let ack = ControlMessage::MappingInstalled { id, nonce }
            .to_frame(MacAddress::local(0xD0), MacAddress::local(0xE0));
        program.handle_control_packet(ack, SimTime::from_millis(2));
        assert_eq!(program.active_mappings(), 1);

        // Subsequent packets are compressed to 3 bytes.
        let mut ctx = PacketContext::new(0, frame_with_payload(payload));
        program.ingress(&mut ctx, SimTime::from_millis(3));
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_COMPRESSED);
        assert_eq!(ctx.frame.payload.len(), 3);
        assert_eq!(program.stats().emitted_compressed, 1);
    }

    #[test]
    fn short_payloads_and_control_frames_pass_through_untouched() {
        let mut program = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        // Too short for a chunk.
        let mut ctx = PacketContext::new(0, frame_with_payload(vec![1, 2, 3]));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_IPV4);
        assert_eq!(ctx.frame.payload, vec![1, 2, 3]);
        assert_eq!(program.stats().emitted_raw, 1);

        // Already-processed packets are not re-processed.
        let mut frame = frame_with_payload(vec![0; 33]);
        frame.ethertype = ETHERTYPE_ZIPLINE_UNCOMPRESSED;
        let mut ctx = PacketContext::new(0, frame);
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);
        assert_eq!(program.stats().emitted_raw, 2);
    }

    #[test]
    fn disabled_compression_acts_as_a_wire() {
        let config = EncoderConfig {
            compression_enabled: false,
            ..EncoderConfig::paper_default()
        };
        let mut program = ZipLineEncodeProgram::new(config).unwrap();
        let mut ctx = PacketContext::new(0, frame_with_payload(vec![0x55; 32]));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_IPV4);
        assert_eq!(ctx.frame.payload.len(), 32);
        assert!(ctx.digests.is_empty());
    }

    #[test]
    fn chunk_offset_carries_prefix_bytes_verbatim() {
        let config = EncoderConfig {
            chunk_offset: 2,
            ..EncoderConfig::paper_default()
        };
        let mut program = ZipLineEncodeProgram::new(config).unwrap();
        // 2 bytes of "transaction id" + 32-byte chunk + 3 bytes of suffix.
        let mut payload = vec![0xAA, 0xBB];
        payload.extend_from_slice(&[0x11; 32]);
        payload.extend_from_slice(&[0xC0, 0xC1, 0xC2]);
        let mut ctx = PacketContext::new(0, frame_with_payload(payload));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);
        // 33 bytes of type-2 header + 2 prefix + 3 suffix.
        assert_eq!(ctx.frame.payload.len(), 33 + 2 + 3);
        assert_eq!(&ctx.frame.payload[33..35], &[0xAA, 0xBB]);
        assert_eq!(&ctx.frame.payload[35..], &[0xC0, 0xC1, 0xC2]);
    }

    #[test]
    fn static_preload_compresses_from_the_first_packet() {
        let mut program = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        let chunk = vec![0x99u8; 32];
        let installed = program
            .preload_static_table(std::iter::once(chunk.clone()))
            .unwrap();
        assert_eq!(installed.len(), 1);
        assert_eq!(program.active_mappings(), 1);

        let mut ctx = PacketContext::new(0, frame_with_payload(chunk));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_COMPRESSED);
        assert!(ctx.digests.is_empty());
    }

    #[test]
    fn duplicate_digests_produce_a_single_install() {
        let mut program = ZipLineEncodeProgram::new(small_config()).unwrap();
        let payload = vec![0b1010_1010u8];
        let mut digests = Vec::new();
        for _ in 0..3 {
            let mut ctx = PacketContext::new(0, frame_with_payload(payload.clone()));
            program.ingress(&mut ctx, SimTime::ZERO);
            digests.extend(ctx.digests);
        }
        assert_eq!(digests.len(), 3);
        let mut installs = 0;
        for digest in digests {
            installs += program
                .handle_digest(digest, SimTime::from_micros(10))
                .len();
        }
        assert_eq!(
            installs, 1,
            "duplicate digests must not produce extra installs"
        );
    }

    #[test]
    fn small_parameter_roundtrip_through_encoder() {
        let mut program = ZipLineEncodeProgram::new(small_config()).unwrap();
        let mut ctx = PacketContext::new(0, frame_with_payload(vec![0xF0]));
        program.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.frame.ethertype, ETHERTYPE_ZIPLINE_UNCOMPRESSED);
        // m=3 / id 4 bits: type 2 = 3 + 1 + 4 bits = 1 byte (no padding).
        assert_eq!(ctx.frame.payload.len(), 1);
    }
}
