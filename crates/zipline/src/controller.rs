//! The encoder-side control plane.
//!
//! The paper implements this part in Python on top of Barefoot Runtime: it
//! receives digests for unknown bases, manages the pool of identifiers
//! ("when there are unused identifiers, the control plane selects the least
//! recently used one; should all identifiers be in use, an LRU policy is
//! applied to evict and recycle an identifier"), and performs the two-phase
//! install — reverse mapping in the destination switch first, then the
//! forward mapping in the source switch (section 5).
//!
//! [`EncoderControlPlane`] is that agent. It owns the authoritative
//! basis ↔ identifier state (a [`BasisDictionary`]); the data-plane
//! match-action table in the encoder program only ever contains *activated*
//! mappings (those whose reverse mapping has been acknowledged by the
//! decoder), so a compressed packet can always be decompressed.

use std::collections::HashMap;
use zipline_gd::bits::BitVec;
use zipline_gd::dictionary::{BasisDictionary, EvictionPolicy};

/// What the control plane wants done after processing a digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnAction {
    /// Identifier assigned to the new basis.
    pub id: u64,
    /// Install sequence number to carry in the install request; the decoder
    /// echoes it so stale acknowledgements can be discarded.
    pub nonce: u32,
    /// The basis (serialized) to install at the decoder.
    pub basis_bytes: Vec<u8>,
    /// Basis whose data-plane entry must be removed from the *encoder* table
    /// right away, because its identifier is being recycled.
    pub evicted_basis_bytes: Option<Vec<u8>>,
}

/// Counters exposed by the control plane.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Digests processed (including duplicates).
    pub digests_processed: u64,
    /// Digests ignored because the basis was already known or pending.
    pub duplicate_digests: u64,
    /// Install requests sent to the decoder.
    pub installs_sent: u64,
    /// Acknowledgements received from the decoder.
    pub acks_received: u64,
    /// Mappings activated in the encoder data plane.
    pub mappings_activated: u64,
    /// Identifiers recycled by the LRU policy.
    pub evictions: u64,
}

/// The encoder-side control plane agent.
#[derive(Debug, Clone)]
pub struct EncoderControlPlane {
    dictionary: BasisDictionary,
    /// Mappings assigned but not yet acknowledged by the decoder:
    /// `id → (install nonce, basis)` awaiting activation in the encoder
    /// table.
    pending: HashMap<u64, (u32, BitVec)>,
    /// Monotonic install counter.
    next_nonce: u32,
    stats: ControlPlaneStats,
}

impl EncoderControlPlane {
    /// Creates a control plane managing `2^id_bits` identifiers with LRU
    /// recycling and no TTL (the deployment drives ageing through table
    /// idle timeouts if desired).
    pub fn new(id_bits: u32) -> Self {
        Self {
            dictionary: BasisDictionary::with_policy(1usize << id_bits, EvictionPolicy::Lru, None),
            pending: HashMap::new(),
            next_nonce: 0,
            stats: ControlPlaneStats::default(),
        }
    }

    /// Creates a control plane with an explicit eviction policy (used by the
    /// eviction-policy ablation).
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        Self {
            dictionary: BasisDictionary::with_policy(capacity, policy, None),
            pending: HashMap::new(),
            next_nonce: 0,
            stats: ControlPlaneStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> ControlPlaneStats {
        self.stats
    }

    /// Authoritative dictionary (read-only).
    pub fn dictionary(&self) -> &BasisDictionary {
        &self.dictionary
    }

    /// Number of mappings awaiting decoder acknowledgement.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Processes a digest carrying an unknown basis. Returns the install
    /// action to perform, or `None` when the digest is a duplicate.
    pub fn handle_unknown_basis(&mut self, basis: BitVec, now: u64) -> Option<LearnAction> {
        self.stats.digests_processed += 1;
        if self.dictionary.peek_basis(&basis).is_some() {
            // Already assigned (either active or pending) — duplicate digest
            // caused by packets that raced the control plane.
            self.stats.duplicate_digests += 1;
            return None;
        }
        let outcome = self
            .dictionary
            .insert(basis.clone(), now)
            .expect("dictionary insert cannot fail below capacity with eviction enabled");
        let evicted_basis_bytes = outcome.evicted.as_ref().map(|(_, b)| b.to_bytes());
        if outcome.evicted.is_some() {
            self.stats.evictions += 1;
        }
        // If the recycled identifier still had a pending (un-acked) install,
        // the new install supersedes it (and its stale ack will be rejected
        // by the nonce check).
        let nonce = self.next_nonce;
        self.next_nonce = self.next_nonce.wrapping_add(1);
        self.pending.insert(outcome.id, (nonce, basis.clone()));
        self.stats.installs_sent += 1;
        Some(LearnAction {
            id: outcome.id,
            nonce,
            basis_bytes: basis.to_bytes(),
            evicted_basis_bytes,
        })
    }

    /// Processes a decoder acknowledgement. Returns the `(basis bytes, id)`
    /// pair to activate in the encoder data-plane table, or `None` when the
    /// acknowledgement is stale (the identifier has since been recycled and
    /// re-installed with a newer nonce).
    pub fn handle_ack(&mut self, id: u64, nonce: u32, _now: u64) -> Option<(Vec<u8>, u64)> {
        self.stats.acks_received += 1;
        let (pending_nonce, basis) = self.pending.get(&id)?.clone();
        if pending_nonce != nonce {
            return None;
        }
        self.pending.remove(&id);
        // The identifier may have been recycled to a different basis while
        // the acknowledgement was in flight; only activate if it still maps
        // to the same basis.
        if self.dictionary.peek_id(id) != Some(&basis) {
            return None;
        }
        self.stats.mappings_activated += 1;
        Some((basis.to_bytes(), id))
    }

    /// Marks a basis as recently used (called when the data plane reports a
    /// hit, so the LRU order tracks data-plane activity).
    pub fn touch(&mut self, basis: &BitVec, now: u64) {
        self.dictionary.lookup_basis(basis, now, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(v: u64) -> BitVec {
        BitVec::from_u64(v, 32)
    }

    #[test]
    fn learning_a_new_basis_assigns_an_id_and_waits_for_ack() {
        let mut cp = EncoderControlPlane::new(4);
        let action = cp.handle_unknown_basis(basis(1), 0).expect("new basis");
        assert_eq!(action.evicted_basis_bytes, None);
        assert_eq!(cp.pending(), 1);
        assert_eq!(cp.stats().installs_sent, 1);

        let activated = cp
            .handle_ack(action.id, action.nonce, 1)
            .expect("ack activates");
        assert_eq!(activated.1, action.id);
        assert_eq!(activated.0, basis(1).to_bytes());
        assert_eq!(cp.pending(), 0);
        assert_eq!(cp.stats().mappings_activated, 1);
    }

    #[test]
    fn duplicate_digests_are_ignored() {
        let mut cp = EncoderControlPlane::new(4);
        let first = cp.handle_unknown_basis(basis(7), 0);
        assert!(first.is_some());
        // The same basis arrives again before (and after) the ack.
        assert!(cp.handle_unknown_basis(basis(7), 1).is_none());
        let first = first.unwrap();
        cp.handle_ack(first.id, first.nonce, 2);
        assert!(cp.handle_unknown_basis(basis(7), 3).is_none());
        assert_eq!(cp.stats().duplicate_digests, 2);
        assert_eq!(cp.stats().installs_sent, 1);
    }

    #[test]
    fn ack_for_unknown_or_stale_id_is_ignored() {
        let mut cp = EncoderControlPlane::new(2);
        assert!(cp.handle_ack(3, 0, 0).is_none());
        assert_eq!(cp.stats().acks_received, 1);
        assert_eq!(cp.stats().mappings_activated, 0);
    }

    #[test]
    fn eviction_recycles_identifiers_and_reports_the_victim() {
        let mut cp = EncoderControlPlane::new(1); // capacity 2
        let a = cp.handle_unknown_basis(basis(0xA), 0).unwrap();
        let b = cp.handle_unknown_basis(basis(0xB), 1).unwrap();
        cp.handle_ack(a.id, a.nonce, 2);
        cp.handle_ack(b.id, b.nonce, 3);
        // Touch A so B becomes the LRU victim.
        cp.touch(&basis(0xA), 4);
        let c = cp.handle_unknown_basis(basis(0xC), 5).unwrap();
        assert_eq!(c.evicted_basis_bytes, Some(basis(0xB).to_bytes()));
        assert_eq!(c.id, b.id, "the victim's identifier is recycled");
        assert_eq!(cp.stats().evictions, 1);
        // The ack for the recycled id activates the new basis.
        let activated = cp.handle_ack(c.id, c.nonce, 6).unwrap();
        assert_eq!(activated.0, basis(0xC).to_bytes());
    }

    #[test]
    fn stale_ack_after_recycling_does_not_activate_old_basis() {
        let mut cp = EncoderControlPlane::new(1); // capacity 2
        let a = cp.handle_unknown_basis(basis(0xA), 0).unwrap();
        let b = cp.handle_unknown_basis(basis(0xB), 1).unwrap();
        // Before either ack arrives, both identifiers get recycled to new
        // bases (A and B were never used by the data plane).
        let c = cp.handle_unknown_basis(basis(0xC), 2).unwrap();
        let d = cp.handle_unknown_basis(basis(0xD), 3).unwrap();
        assert_eq!(cp.stats().evictions, 2);
        assert_eq!(c.id, a.id);
        assert_eq!(d.id, b.id);
        // The late acks carrying the old nonces must not activate anything:
        // those identifiers now belong to C and D.
        assert!(cp.handle_ack(a.id, a.nonce, 4).is_none());
        assert!(cp.handle_ack(b.id, b.nonce, 5).is_none());
        // Acks for the new installs do activate the new bases.
        assert_eq!(
            cp.handle_ack(c.id, c.nonce, 6).unwrap().0,
            basis(0xC).to_bytes()
        );
        assert_eq!(
            cp.handle_ack(d.id, d.nonce, 7).unwrap().0,
            basis(0xD).to_bytes()
        );
    }

    #[test]
    fn with_policy_constructor_respects_capacity() {
        let mut cp = EncoderControlPlane::with_policy(2, EvictionPolicy::Fifo);
        cp.handle_unknown_basis(basis(1), 0);
        cp.handle_unknown_basis(basis(2), 1);
        let action = cp.handle_unknown_basis(basis(3), 2).unwrap();
        assert!(action.evicted_basis_bytes.is_some());
    }
}
