//! Ready-made simulated ZipLine deployments.
//!
//! The canonical topology mirrors the paper's testbed plus the decompression
//! side it implies: a sender, an encoder switch, a decoder switch and a
//! receiver, all connected by 100 Gbit/s links, with a separate out-of-band
//! control channel between the two switches' control planes:
//!
//! ```text
//!  sender ──► encoder switch ──► decoder switch ──► receiver
//!                   │  control channel  │
//!                   └──────────────────┘
//! ```
//!
//! [`ZipLineDeployment`] builds this topology in the discrete-event network,
//! replays traffic through it and reports end-to-end statistics. The
//! experiment drivers (`crate::experiment`) build on top of it.
//!
//! The same switch programs carry every engine backend
//! (`crate::host::EngineHostPath<B>`): GD frames travel pre-processed
//! (types 2/3) with their in-band control traffic, while deflate/gzip and
//! passthrough streams travel as raw frames that the encoder may process
//! and the decoder restores byte-exactly — the receiving host then feeds
//! the restored payloads to the mirrored backend decompressor (see the
//! backend tests in `crate::host`).

use crate::controller::ControlPlaneStats;
use crate::decoder::{DecoderConfig, ZipLineDecodeProgram};
use crate::encoder::{EncoderConfig, ZipLineEncodeProgram};
use crate::error::{Result, ZipLineError};
use zipline_gd::config::GdConfig;
use zipline_gd::stats::CompressionStats;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::host::{CaptureSink, GeneratorConfig, TrafficGenerator};
use zipline_net::link::LinkParams;
use zipline_net::mac::MacAddress;
use zipline_net::sim::Network;
use zipline_net::time::{DataRate, SimDuration, SimTime};
use zipline_switch::node::{SwitchConfig, SwitchNode, SwitchStats};

/// Configuration of a two-switch deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// GD parameters shared by both switches.
    pub gd: GdConfig,
    /// Payload bytes preceding the chunk, carried verbatim.
    pub chunk_offset: usize,
    /// Parameters of the three data links (sender–encoder, encoder–decoder,
    /// decoder–receiver).
    pub data_link: LinkParams,
    /// Parameters of the out-of-band control link between the switches.
    pub control_link: LinkParams,
    /// Fixed pipeline latency of each switch.
    pub pipeline_latency: SimDuration,
    /// Control-plane latency of each switch (digest service time and control
    /// packet handling). Three control-plane hops make up the learning
    /// delay, so a third of the paper's 1.77 ms is a natural default.
    pub control_plane_latency: SimDuration,
    /// NIC line rate of the sender.
    pub nic_rate: DataRate,
    /// Optional software packet-rate cap of the sender (the paper's
    /// generator tops out around 7 Mpkt/s).
    pub max_packets_per_second: Option<f64>,
    /// Whether the switches actually compress/decompress (`false` gives the
    /// "No op" baseline).
    pub compression_enabled: bool,
    /// Record every payload arriving at the receiver (disable for very large
    /// runs where only counters are needed).
    pub record_received_payloads: bool,
}

impl DeploymentConfig {
    /// Testbed-like defaults: 100 Gbit/s links, sub-microsecond pipeline,
    /// control-plane latency calibrated so a full learning round trip takes
    /// about 1.77 ms.
    pub fn paper_default() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            data_link: LinkParams::line_rate_100g(),
            control_link: LinkParams::line_rate_100g(),
            pipeline_latency: SimDuration::from_nanos(600),
            control_plane_latency: SimDuration::from_micros(590),
            nic_rate: DataRate::LINE_RATE_100G,
            max_packets_per_second: Some(7_000_000.0),
            compression_enabled: true,
            record_received_payloads: true,
        }
    }

    /// Ideal links and tiny latencies: useful for unit tests where wall-clock
    /// time per simulated packet matters more than realism. The sender is
    /// paced at 100 kpkt/s so that the (20 µs-scale) learning round trip
    /// completes within a few packets.
    pub fn fast_test() -> Self {
        Self {
            gd: GdConfig::paper_default(),
            chunk_offset: 0,
            data_link: LinkParams::ideal(),
            control_link: LinkParams::ideal(),
            pipeline_latency: SimDuration::from_nanos(100),
            control_plane_latency: SimDuration::from_micros(10),
            nic_rate: DataRate::from_gbps(100.0),
            max_packets_per_second: Some(100_000.0),
            compression_enabled: true,
            record_received_payloads: true,
        }
    }
}

/// Outcome of one deployment run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Payloads received in order (empty when recording is disabled).
    pub received_payloads: Vec<Vec<u8>>,
    /// Number of frames received.
    pub frames_received: u64,
    /// Sum of *payload* bytes entering the encoder switch from the sender.
    pub payload_bytes_in: u64,
    /// Sum of *payload* bytes leaving the encoder towards the decoder —
    /// the quantity Figure 3 reports.
    pub payload_bytes_between_switches: u64,
    /// Encoder program statistics.
    pub encoder_stats: CompressionStats,
    /// Decoder program statistics.
    pub decoder_stats: CompressionStats,
    /// Encoder control-plane statistics.
    pub control_plane_stats: ControlPlaneStats,
    /// Encoder switch node counters.
    pub encoder_switch_stats: SwitchStats,
    /// Decoder switch node counters.
    pub decoder_switch_stats: SwitchStats,
    /// Simulated time at which the last frame reached the receiver.
    pub finished_at: SimTime,
}

impl RunOutcome {
    /// Compression ratio measured between the switches (output payload bytes
    /// over input payload bytes).
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.payload_bytes_in == 0 {
            None
        } else {
            Some(self.payload_bytes_between_switches as f64 / self.payload_bytes_in as f64)
        }
    }
}

/// A sender → encoder → decoder → receiver deployment.
pub struct ZipLineDeployment {
    config: DeploymentConfig,
    /// Bases to pre-install before the run (static-table scenario).
    static_chunks: Vec<Vec<u8>>,
    /// Engine dictionary snapshot to sync into the decoder before the run
    /// (the engine-backed host path: end hosts compress with
    /// `zipline_engine::CompressionEngine`, the decoder switch restores).
    decoder_snapshot: Option<zipline_engine::DictionarySnapshot>,
}

impl ZipLineDeployment {
    /// Creates a deployment description. The simulated network is built
    /// afresh for every run so runs are independent.
    pub fn new(config: DeploymentConfig) -> Result<Self> {
        config.gd.validate()?;
        Ok(Self {
            config,
            static_chunks: Vec::new(),
            decoder_snapshot: None,
        })
    }

    /// Pre-installs the bases of the given chunks in both switches before
    /// the next run (the "static table" scenario of Figure 3).
    pub fn preload_static_table(&mut self, chunks: Vec<Vec<u8>>) {
        self.static_chunks = chunks;
    }

    /// Syncs an engine dictionary snapshot into the decoder switch before
    /// the next run — the *cold-start* half of the engine host path
    /// (`crate::host`). Streams whose dictionary may churn past capacity
    /// must instead (or additionally) carry live in-band control frames:
    /// the encoder switch forwards `ETHERTYPE_ZIPLINE_CONTROL` frames
    /// unmodified along the data path, the decoder switch consumes them in
    /// arrival order (installing/removing mappings before the data frames
    /// that depend on them) and returns its acknowledgements over the
    /// out-of-band control link.
    pub fn preload_decoder_snapshot(&mut self, snapshot: zipline_engine::DictionarySnapshot) {
        self.decoder_snapshot = Some(snapshot);
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Convenience: wraps raw payloads into Ethernet frames and runs them
    /// through the deployment, returning the payloads seen by the receiver.
    pub fn run_payloads(&mut self, payloads: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let frames: Vec<EthernetFrame> = payloads
            .iter()
            .map(|p| {
                EthernetFrame::new(
                    MacAddress::local(2),
                    MacAddress::local(1),
                    zipline_net::ethernet::ETHERTYPE_IPV4,
                    p.clone(),
                )
            })
            .collect();
        Ok(self.run_frames(frames)?.received_payloads)
    }

    /// Replays the given frames through the deployment and collects the
    /// outcome.
    pub fn run_frames(&mut self, frames: Vec<EthernetFrame>) -> Result<RunOutcome> {
        let cfg = &self.config;
        let frame_count = frames.len() as u64;
        let mut net = Network::new();

        // --- nodes -------------------------------------------------------
        let generator_config = GeneratorConfig {
            frames,
            count: frame_count,
            nic_rate: cfg.nic_rate,
            max_packets_per_second: cfg.max_packets_per_second,
            port: 0,
            start: SimTime::ZERO,
        };
        let sender = net.add_node(Box::new(TrafficGenerator::new(generator_config)));

        let encoder_config = EncoderConfig {
            gd: cfg.gd,
            chunk_offset: cfg.chunk_offset,
            data_egress_port: 1,
            control_port: 2,
            control_src: MacAddress::local(0xE0),
            control_dst: MacAddress::local(0xD0),
            compression_enabled: cfg.compression_enabled,
        };
        let mut encoder_program = ZipLineEncodeProgram::new(encoder_config)?;

        let decoder_config = DecoderConfig {
            gd: cfg.gd,
            chunk_offset: cfg.chunk_offset,
            data_egress_port: 1,
            control_port: 2,
            control_src: MacAddress::local(0xD0),
            control_dst: MacAddress::local(0xE0),
            restored_ethertype: zipline_net::ethernet::ETHERTYPE_IPV4,
            unknown_id_policy: crate::decoder::UnknownIdPolicy::Forward,
            decompression_enabled: cfg.compression_enabled,
        };
        let mut decoder_program = ZipLineDecodeProgram::new(decoder_config)?;

        // Static-table preload: compute each distinct basis once, install the
        // forward mapping in the encoder and the reverse mapping in the
        // decoder (what the paper does before starting the static runs).
        if !self.static_chunks.is_empty() {
            let padded: Vec<Vec<u8>> = self.static_chunks.clone();
            let installed = encoder_program.preload_static_table(padded.into_iter())?;
            for (id, basis_bytes) in installed {
                decoder_program.install_mapping(id, basis_bytes, SimTime::ZERO)?;
            }
        }

        // Engine-backed host path: sync the engine's dictionary into the
        // decoder so pre-compressed (type 3) frames resolve their ids.
        if let Some(snapshot) = &self.decoder_snapshot {
            decoder_program.install_snapshot(snapshot, SimTime::ZERO)?;
        }

        let switch_config = SwitchConfig {
            ports: 3,
            pipeline_latency: cfg.pipeline_latency,
            control_plane_latency: cfg.control_plane_latency,
            cpu_ports: vec![2],
            digest_queue_capacity: 4096,
        };
        let encoder_switch = net.add_node(Box::new(SwitchNode::new(
            switch_config.clone(),
            encoder_program,
        )?));
        let decoder_switch =
            net.add_node(Box::new(SwitchNode::new(switch_config, decoder_program)?));

        let receiver = net.add_node(Box::new(if cfg.record_received_payloads {
            CaptureSink::keeping_frames(usize::MAX)
        } else {
            CaptureSink::recording_arrivals()
        }));

        // --- links -------------------------------------------------------
        net.connect((sender, 0), (encoder_switch, 0), cfg.data_link)?;
        net.connect((encoder_switch, 1), (decoder_switch, 0), cfg.data_link)?;
        net.connect((decoder_switch, 1), (receiver, 0), cfg.data_link)?;
        net.connect((encoder_switch, 2), (decoder_switch, 2), cfg.control_link)?;

        // --- run ---------------------------------------------------------
        net.schedule_timer(SimTime::ZERO, sender, 0);
        // Generous cap: a handful of events per frame plus control traffic.
        let max_events = frame_count.saturating_mul(16).max(10_000);
        net.run(max_events);

        // --- collect -----------------------------------------------------
        let receiver_node = net
            .node_as::<CaptureSink>(receiver)
            .ok_or_else(|| ZipLineError::InvalidConfig("receiver node type".into()))?;
        let received_payloads: Vec<Vec<u8>> = receiver_node
            .frames()
            .iter()
            .map(|(_, frame)| frame.payload.clone())
            .collect();
        let frames_received = receiver_node.stats().frames_received;
        let finished_at = receiver_node.stats().last_arrival.unwrap_or(net.now());

        let encoder_node = net
            .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
            .ok_or_else(|| ZipLineError::InvalidConfig("encoder node type".into()))?;
        let decoder_node = net
            .node_as::<SwitchNode<ZipLineDecodeProgram>>(decoder_switch)
            .ok_or_else(|| ZipLineError::InvalidConfig("decoder node type".into()))?;

        let encoder_stats = *encoder_node.program().stats();
        let decoder_stats = *decoder_node.program().stats();
        let control_plane_stats = encoder_node.program().control_plane().stats();

        Ok(RunOutcome {
            received_payloads,
            frames_received,
            payload_bytes_in: encoder_stats.bytes_in,
            payload_bytes_between_switches: encoder_stats.bytes_out,
            encoder_stats,
            decoder_stats,
            control_plane_stats,
            encoder_switch_stats: encoder_node.stats(),
            decoder_switch_stats: decoder_node.stats(),
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_payloads_roundtrip_and_eventually_compress() {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let payload = vec![0xABu8; 32];
        let payloads = vec![payload.clone(); 200];
        let frames: Vec<EthernetFrame> = payloads
            .iter()
            .map(|p| {
                EthernetFrame::new(
                    MacAddress::local(2),
                    MacAddress::local(1),
                    zipline_net::ethernet::ETHERTYPE_IPV4,
                    p.clone(),
                )
            })
            .collect();
        let outcome = deployment.run_frames(frames).unwrap();

        assert_eq!(outcome.frames_received, 200);
        assert_eq!(outcome.received_payloads.len(), 200);
        assert!(outcome.received_payloads.iter().all(|p| p == &payload));
        // Only one basis exists, so almost all packets travel compressed.
        assert_eq!(
            outcome.encoder_stats.emitted_compressed + outcome.encoder_stats.emitted_uncompressed,
            200
        );
        assert!(
            outcome.encoder_stats.emitted_compressed > 150,
            "stats: {:?}",
            outcome.encoder_stats
        );
        assert_eq!(outcome.control_plane_stats.mappings_activated, 1);
        assert!(outcome.compression_ratio().unwrap() < 0.5);
        assert!(outcome.decoder_stats.decode_failures == 0);
    }

    #[test]
    fn mixed_payloads_are_restored_byte_exactly() {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..50u8)
            .map(|i| {
                (0..32u8)
                    .map(|j| i.wrapping_mul(3).wrapping_add(j % 4))
                    .collect()
            })
            .collect();
        let received = deployment.run_payloads(&payloads).unwrap();
        assert_eq!(received, payloads);
    }

    #[test]
    fn short_payloads_pass_through_unmodified() {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let payloads = vec![vec![1u8, 2, 3], vec![9u8; 10]];
        let received = deployment.run_payloads(&payloads).unwrap();
        assert_eq!(received, payloads);
    }

    #[test]
    fn static_table_compresses_from_the_first_packet() {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let payload = vec![0x17u8; 32];
        deployment.preload_static_table(vec![payload.clone()]);
        let frames: Vec<EthernetFrame> = (0..10)
            .map(|_| {
                EthernetFrame::new(
                    MacAddress::local(2),
                    MacAddress::local(1),
                    zipline_net::ethernet::ETHERTYPE_IPV4,
                    payload.clone(),
                )
            })
            .collect();
        let outcome = deployment.run_frames(frames).unwrap();
        assert_eq!(outcome.encoder_stats.emitted_compressed, 10);
        assert_eq!(outcome.encoder_stats.emitted_uncompressed, 0);
        assert!(outcome.received_payloads.iter().all(|p| p == &payload));
        // 10 × 3 B out of 10 × 32 B in.
        assert!((outcome.compression_ratio().unwrap() - 3.0 / 32.0).abs() < 0.01);
    }

    #[test]
    fn disabled_compression_is_a_transparent_wire() {
        let config = DeploymentConfig {
            compression_enabled: false,
            ..DeploymentConfig::fast_test()
        };
        let mut deployment = ZipLineDeployment::new(config).unwrap();
        let payloads = vec![vec![0x55u8; 32]; 20];
        let outcome = deployment
            .run_frames(
                payloads
                    .iter()
                    .map(|p| {
                        EthernetFrame::new(
                            MacAddress::local(2),
                            MacAddress::local(1),
                            zipline_net::ethernet::ETHERTYPE_IPV4,
                            p.clone(),
                        )
                    })
                    .collect(),
            )
            .unwrap();
        assert_eq!(outcome.encoder_stats.emitted_raw, 20);
        assert_eq!(outcome.compression_ratio().unwrap(), 1.0);
        assert_eq!(outcome.received_payloads, payloads);
    }

    #[test]
    fn learning_delay_keeps_early_packets_uncompressed() {
        // With a deliberately long control-plane latency and fast sending,
        // many packets of the same basis go out uncompressed before the
        // mapping becomes active.
        let config = DeploymentConfig {
            control_plane_latency: SimDuration::from_millis(1),
            max_packets_per_second: Some(1_000_000.0),
            ..DeploymentConfig::fast_test()
        };
        let mut deployment = ZipLineDeployment::new(config).unwrap();
        let payload = vec![0x42u8; 32];
        let frames: Vec<EthernetFrame> = (0..5000)
            .map(|_| {
                EthernetFrame::new(
                    MacAddress::local(2),
                    MacAddress::local(1),
                    zipline_net::ethernet::ETHERTYPE_IPV4,
                    payload.clone(),
                )
            })
            .collect();
        let outcome = deployment.run_frames(frames).unwrap();
        // Learning takes ~3 control-plane hops = ~3 ms; at 1 Mpkt/s that is
        // about 3000 uncompressed packets, then compression kicks in.
        assert!(
            outcome.encoder_stats.emitted_uncompressed > 1000,
            "uncompressed: {}",
            outcome.encoder_stats.emitted_uncompressed
        );
        assert!(
            outcome.encoder_stats.emitted_compressed > 500,
            "compressed: {}",
            outcome.encoder_stats.emitted_compressed
        );
        assert_eq!(outcome.decoder_stats.decode_failures, 0);
        assert_eq!(outcome.frames_received, 5000);
    }

    #[test]
    fn invalid_gd_config_is_rejected() {
        let mut config = DeploymentConfig::fast_test();
        config.gd.chunk_bytes = 4;
        assert!(ZipLineDeployment::new(config).is_err());
    }
}
