//! Error type for the ZipLine system crate.

use std::fmt;

/// Errors produced while assembling or driving a ZipLine deployment.
#[derive(Debug)]
#[non_exhaustive]
pub enum ZipLineError {
    /// An error bubbled up from the GD core.
    Gd(zipline_gd::GdError),
    /// An error bubbled up from the compression engine (persistence,
    /// pipelined-worker loss, or a wrapped codec error).
    Engine(zipline_engine::EngineError),
    /// An error bubbled up from the switch substrate.
    Switch(zipline_switch::SwitchError),
    /// An error bubbled up from the network substrate.
    Net(zipline_net::NetError),
    /// A control-channel message could not be parsed.
    MalformedControlMessage(String),
    /// The experiment or deployment configuration is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for ZipLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipLineError::Gd(e) => write!(f, "GD error: {e}"),
            ZipLineError::Engine(e) => write!(f, "engine error: {e}"),
            ZipLineError::Switch(e) => write!(f, "switch error: {e}"),
            ZipLineError::Net(e) => write!(f, "network error: {e}"),
            ZipLineError::MalformedControlMessage(msg) => {
                write!(f, "malformed control message: {msg}")
            }
            ZipLineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ZipLineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZipLineError::Gd(e) => Some(e),
            ZipLineError::Engine(e) => Some(e),
            ZipLineError::Switch(e) => Some(e),
            ZipLineError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<zipline_gd::GdError> for ZipLineError {
    fn from(e: zipline_gd::GdError) -> Self {
        ZipLineError::Gd(e)
    }
}

impl From<zipline_engine::EngineError> for ZipLineError {
    fn from(e: zipline_engine::EngineError) -> Self {
        // A bare codec error inside the engine wrapper is still just a GD
        // error to callers; unwrap it so matching stays uniform.
        match e {
            zipline_engine::EngineError::Gd(e) => ZipLineError::Gd(e),
            other => ZipLineError::Engine(other),
        }
    }
}

impl From<zipline_switch::SwitchError> for ZipLineError {
    fn from(e: zipline_switch::SwitchError) -> Self {
        ZipLineError::Switch(e)
    }
}

impl From<zipline_net::NetError> for ZipLineError {
    fn from(e: zipline_net::NetError) -> Self {
        ZipLineError::Net(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ZipLineError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: ZipLineError = zipline_gd::GdError::UnknownBasis.into();
        assert!(e.to_string().contains("GD error"));
        assert!(e.source().is_some());

        let e: ZipLineError = zipline_engine::EngineError::WorkerLost.into();
        assert!(e.to_string().contains("engine error"));
        assert!(matches!(e, ZipLineError::Engine(_)));

        // An engine-wrapped codec error unwraps to the plain GD variant.
        let e: ZipLineError =
            zipline_engine::EngineError::Gd(zipline_gd::GdError::UnknownBasis).into();
        assert!(matches!(e, ZipLineError::Gd(_)));

        let e: ZipLineError = zipline_switch::SwitchError::EntryNotFound("x".into()).into();
        assert!(e.to_string().contains("switch error"));

        let e: ZipLineError = zipline_net::NetError::Malformed("y".into()).into();
        assert!(e.to_string().contains("network error"));

        let e = ZipLineError::MalformedControlMessage("short".into());
        assert!(e.to_string().contains("short"));
        assert!(e.source().is_none());

        let e = ZipLineError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
