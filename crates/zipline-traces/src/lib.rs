//! Workload generators for the ZipLine evaluation.
//!
//! The paper evaluates compression (Figure 3) on two datasets:
//!
//! * a **synthetic dataset** "engineered to be behaviorally close to typical
//!   readouts from a sensor": 3 124 000 chunks of 256 bit, converted to a
//!   pcap trace of Ethernet packets — reproduced by [`sensor`];
//! * a **real-world dataset**: one day of DNS queries at a 4 000-user
//!   university campus, filtered to 34-byte queries to the main resolver
//!   with the random transaction identifier excluded. We do not have that
//!   trace, so [`dns`] generates a synthetic campus-DNS workload with the
//!   same redundancy structure (a modest pool of distinct query payloads
//!   repeated under a heavy-tailed popularity distribution).
//!
//! [`trace`] converts either workload into Ethernet frames or a pcap file
//! that the switch simulation (or any external tool) can replay, and
//! [`zipf`] provides the popularity distribution used by the DNS generator.

pub mod churn;
pub mod crash;
pub mod dns;
pub mod flows;
pub mod sensor;
pub mod trace;
pub mod zipf;

pub use churn::{ChurnWorkload, ChurnWorkloadConfig};
pub use crash::{CrashPhase, CrashWorkload, CrashWorkloadConfig};
pub use dns::{DnsWorkload, DnsWorkloadConfig};
pub use flows::{FlowChunk, FlowMixConfig, FlowMixWorkload, ManyFlowsConfig, ManyFlowsWorkload};
pub use sensor::{SensorWorkload, SensorWorkloadConfig};
pub use trace::{chunks_to_frames, chunks_to_pcap, TraceConfig};
pub use zipf::Zipf;

/// A workload that yields fixed-size payload chunks.
///
/// Both the sensor and DNS workloads implement this; the experiment harness
/// in the `zipline` crate is written against the trait so ablations can plug
/// in new workloads without touching the experiment code.
pub trait ChunkWorkload {
    /// Size of each chunk in bytes.
    fn chunk_len(&self) -> usize;
    /// Total number of chunks the workload will produce.
    fn total_chunks(&self) -> usize;
    /// Iterator over the chunks.
    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_workloads_implement_the_trait() {
        fn assert_impl<T: ChunkWorkload>() {}
        assert_impl::<SensorWorkload>();
        assert_impl::<DnsWorkload>();
    }
}
