//! Zipf-distributed sampling.
//!
//! Campus DNS traffic (like most name-resolution traffic) is dominated by a
//! small set of very popular names with a long tail — a classic Zipf shape.
//! This sampler draws ranks `0..n` with probability proportional to
//! `1 / (rank + 1)^s` using a precomputed inverse CDF, which keeps sampling
//! `O(log n)` and exactly reproducible from a seed.

use rand::Rng;

/// A Zipf distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` = P(rank <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero elements");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut weights: Vec<f64> = (0..n)
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift on the last entry.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Self { cdf: weights }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of drawing `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let lower = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lower
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-12, "rank {r}");
        }
        assert_eq!(z.probability(100), 0.0);
        assert!(!z.is_empty());
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_frequencies_follow_the_distribution() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 20];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly 1/H(20) ≈ 0.278 of draws.
        let p0 = counts[0] as f64 / draws as f64;
        assert!((p0 - z.probability(0)).abs() < 0.01, "p0 = {p0}");
        // Monotone non-increasing counts (allowing sampling noise at the tail).
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[19]);
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "Zipf over zero elements")]
    fn zero_elements_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
