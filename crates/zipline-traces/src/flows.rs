//! A Zipf-mixed flow workload for the network server's load harness.
//!
//! Models what a compressing host actually sees on the wire: traffic from
//! many concurrent *flows*, where flow popularity is heavy-tailed (a few
//! elephants, a long tail of mice) and each flow's payload **drifts** over
//! its lifetime — periodically changing content so hot flows keep churning
//! the dictionary while cold flows stay compressible against their original
//! basis. Chunks are drawn flow-by-flow from a seeded [`Zipf`] sampler, so
//! the sequence is exactly reproducible and every load-harness connection
//! can run its own deterministic variant by varying the seed.
//!
//! The chunk layout reuses the churn generator's ≥ 3-bit separation trick:
//! flow index and drift generation are each spread over three bytes, so no
//! two distinct (flow, generation) pairs can fold onto one basis under GD's
//! single-bit deviation correction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipf;
use crate::ChunkWorkload;

/// Configuration of a [`FlowMixWorkload`].
#[derive(Debug, Clone)]
pub struct FlowMixConfig {
    /// Distinct flows in the mix (at most 65 536 stay distinct).
    pub flows: usize,
    /// Total chunks to draw.
    pub chunks: usize,
    /// Chunk size in bytes (≥ 32 so the pattern bytes fit).
    pub chunk_len: usize,
    /// Zipf popularity exponent across flows (1.0 ≈ classic web/DNS skew).
    pub zipf_exponent: f64,
    /// A flow's payload changes after this many of its own appearances
    /// (0 disables drift).
    pub drift_every: u32,
    /// RNG seed; same seed, same sequence.
    pub seed: u64,
}

impl FlowMixConfig {
    /// A small mix for smoke runs and tests: 256 flows, 16 384 chunks of
    /// 32 bytes, exponent 1.0, drift every 512 appearances.
    pub fn small() -> Self {
        Self {
            flows: 256,
            chunks: 16_384,
            chunk_len: 32,
            zipf_exponent: 1.0,
            drift_every: 512,
            seed: 0x5A1F_F10E,
        }
    }

    /// The small mix re-seeded (one per load-harness connection).
    pub fn small_with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::small()
        }
    }
}

/// The Zipf flow-mix workload; see the module docs.
#[derive(Debug, Clone)]
pub struct FlowMixWorkload {
    config: FlowMixConfig,
    zipf: Zipf,
}

impl FlowMixWorkload {
    /// Creates the workload.
    pub fn new(config: FlowMixConfig) -> Self {
        assert!(config.flows > 0, "flow mix needs at least one flow");
        assert!(
            config.flows <= 1 << 16,
            "at most 65536 distinct flows ({} requested)",
            config.flows
        );
        assert!(config.chunk_len >= 32, "pattern needs 32 bytes");
        let zipf = Zipf::new(config.flows, config.zipf_exponent);
        Self { config, zipf }
    }

    /// One chunk of `flow` at drift `generation`; both spread over three
    /// bytes for ≥ 3-bit pairwise separation.
    fn pattern(&self, flow: u32, generation: u32) -> Vec<u8> {
        let mut chunk = vec![0u8; self.config.chunk_len];
        chunk[0] = flow as u8;
        chunk[4] = flow as u8;
        chunk[8] = flow as u8;
        chunk[12] = (flow >> 8) as u8;
        chunk[16] = (flow >> 8) as u8;
        chunk[20] = (flow >> 8) as u8;
        chunk[24] = generation as u8;
        chunk[26] = generation as u8;
        chunk[28] = generation as u8;
        chunk
    }
}

impl ChunkWorkload for FlowMixWorkload {
    fn chunk_len(&self) -> usize {
        self.config.chunk_len
    }

    fn total_chunks(&self) -> usize {
        self.config.chunks
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut appearances = vec![0u32; self.config.flows];
        Box::new((0..self.config.chunks).map(move |_| {
            let flow = self.zipf.sample(&mut rng);
            let seen = appearances[flow];
            appearances[flow] = seen.wrapping_add(1);
            let generation = seen.checked_div(self.config.drift_every).unwrap_or(0);
            self.pattern(flow as u32, generation)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let a: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small())
            .chunks()
            .take(512)
            .collect();
        let b: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small())
            .chunks()
            .take(512)
            .collect();
        assert_eq!(a, b);
        let c: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small_with_seed(7))
            .chunks()
            .take(512)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let workload = FlowMixWorkload::new(FlowMixConfig::small());
        let mut counts = vec![0usize; 256];
        for chunk in workload.chunks() {
            let flow = chunk[0] as usize | ((chunk[12] as usize) << 8);
            counts[flow] += 1;
        }
        let top = counts[0];
        let tail: usize = counts[200..].iter().sum();
        assert!(
            top > counts[100] * 5,
            "rank 0 ({top}) should dominate rank 100 ({})",
            counts[100]
        );
        assert!(top > tail / 8, "head should rival the far tail in volume");
    }

    #[test]
    fn drift_changes_a_hot_flows_payload() {
        let workload = FlowMixWorkload::new(FlowMixConfig {
            drift_every: 16,
            chunks: 4096,
            ..FlowMixConfig::small()
        });
        let mut rank0 = Vec::new();
        for chunk in workload.chunks() {
            if chunk[0] == 0 && chunk[12] == 0 {
                rank0.push(chunk);
            }
        }
        assert!(rank0.len() > 32, "rank 0 must appear often");
        let distinct: std::collections::HashSet<&Vec<u8>> = rank0.iter().collect();
        assert!(
            distinct.len() > 1,
            "drift must change the hot flow's payload"
        );
    }
}
