//! A Zipf-mixed flow workload for the network server's load harness.
//!
//! Models what a compressing host actually sees on the wire: traffic from
//! many concurrent *flows*, where flow popularity is heavy-tailed (a few
//! elephants, a long tail of mice) and each flow's payload **drifts** over
//! its lifetime — periodically changing content so hot flows keep churning
//! the dictionary while cold flows stay compressible against their original
//! basis. Chunks are drawn flow-by-flow from a seeded [`Zipf`] sampler, so
//! the sequence is exactly reproducible and every load-harness connection
//! can run its own deterministic variant by varying the seed.
//!
//! The chunk layout reuses the churn generator's ≥ 3-bit separation trick:
//! flow index and drift generation are each spread over three bytes, so no
//! two distinct (flow, generation) pairs can fold onto one basis under GD's
//! single-bit deviation correction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipf;
use crate::ChunkWorkload;

/// Configuration of a [`FlowMixWorkload`].
#[derive(Debug, Clone)]
pub struct FlowMixConfig {
    /// Distinct flows in the mix (at most 65 536 stay distinct).
    pub flows: usize,
    /// Total chunks to draw.
    pub chunks: usize,
    /// Chunk size in bytes (≥ 32 so the pattern bytes fit).
    pub chunk_len: usize,
    /// Zipf popularity exponent across flows (1.0 ≈ classic web/DNS skew).
    pub zipf_exponent: f64,
    /// A flow's payload changes after this many of its own appearances
    /// (0 disables drift).
    pub drift_every: u32,
    /// RNG seed; same seed, same sequence.
    pub seed: u64,
}

impl FlowMixConfig {
    /// A small mix for smoke runs and tests: 256 flows, 16 384 chunks of
    /// 32 bytes, exponent 1.0, drift every 512 appearances.
    pub fn small() -> Self {
        Self {
            flows: 256,
            chunks: 16_384,
            chunk_len: 32,
            zipf_exponent: 1.0,
            drift_every: 512,
            seed: 0x5A1F_F10E,
        }
    }

    /// The small mix re-seeded (one per load-harness connection).
    pub fn small_with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::small()
        }
    }
}

/// The Zipf flow-mix workload; see the module docs.
#[derive(Debug, Clone)]
pub struct FlowMixWorkload {
    config: FlowMixConfig,
    zipf: Zipf,
}

impl FlowMixWorkload {
    /// Creates the workload.
    pub fn new(config: FlowMixConfig) -> Self {
        assert!(config.flows > 0, "flow mix needs at least one flow");
        assert!(
            config.flows <= 1 << 16,
            "at most 65536 distinct flows ({} requested)",
            config.flows
        );
        assert!(config.chunk_len >= 32, "pattern needs 32 bytes");
        let zipf = Zipf::new(config.flows, config.zipf_exponent);
        Self { config, zipf }
    }

    /// One chunk of `flow` at drift `generation`; both spread over three
    /// bytes for ≥ 3-bit pairwise separation.
    fn pattern(&self, flow: u32, generation: u32) -> Vec<u8> {
        let mut chunk = vec![0u8; self.config.chunk_len];
        chunk[0] = flow as u8;
        chunk[4] = flow as u8;
        chunk[8] = flow as u8;
        chunk[12] = (flow >> 8) as u8;
        chunk[16] = (flow >> 8) as u8;
        chunk[20] = (flow >> 8) as u8;
        chunk[24] = generation as u8;
        chunk[26] = generation as u8;
        chunk[28] = generation as u8;
        chunk
    }
}

impl ChunkWorkload for FlowMixWorkload {
    fn chunk_len(&self) -> usize {
        self.config.chunk_len
    }

    fn total_chunks(&self) -> usize {
        self.config.chunks
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut appearances = vec![0u32; self.config.flows];
        Box::new((0..self.config.chunks).map(move |_| {
            let flow = self.zipf.sample(&mut rng);
            let seen = appearances[flow];
            appearances[flow] = seen.wrapping_add(1);
            let generation = seen.checked_div(self.config.drift_every).unwrap_or(0);
            self.pattern(flow as u32, generation)
        }))
    }
}

/// Configuration of a [`ManyFlowsWorkload`].
#[derive(Debug, Clone)]
pub struct ManyFlowsConfig {
    /// Distinct tenants; tenant popularity is Zipf-skewed by rank.
    pub tenants: usize,
    /// Distinct flows in total, split evenly across tenants (at least one
    /// per tenant).
    pub flows: usize,
    /// Total chunks to draw.
    pub chunks: usize,
    /// Chunk size in bytes (≥ 32 so the pattern bytes fit).
    pub chunk_len: usize,
    /// Zipf exponent for tenant *and* per-tenant flow popularity.
    pub zipf_exponent: f64,
    /// Drift cadence of the sensor-style flows (0 disables drift).
    pub drift_every: u32,
    /// RNG seed; same seed, same event sequence.
    pub seed: u64,
}

impl ManyFlowsConfig {
    /// A small mix for tests and smoke runs: 8 tenants, 64 flows,
    /// 8 192 chunks of 32 bytes, exponent 1.0, drift every 64.
    pub fn small() -> Self {
        Self {
            tenants: 8,
            flows: 64,
            chunks: 8_192,
            chunk_len: 32,
            zipf_exponent: 1.0,
            drift_every: 64,
            seed: 0x0F10_3535,
        }
    }

    /// The small mix re-seeded (one per load-harness connection).
    pub fn small_with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::small()
        }
    }

    /// Flows each tenant owns (the even split, at least one).
    pub fn flows_per_tenant(&self) -> usize {
        (self.flows / self.tenants).max(1)
    }
}

/// One event of a [`ManyFlowsWorkload`]: a chunk tagged with its owning
/// tenant and per-tenant flow id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowChunk {
    /// The owning tenant (Zipf rank: tenant 0 is the most popular).
    pub tenant: u64,
    /// The flow id within the tenant.
    pub flow: u64,
    /// The chunk payload.
    pub bytes: Vec<u8>,
}

/// Thousands of interleaved flows across Zipf-skewed tenants — the
/// multiplexed counterpart of [`FlowMixWorkload`], feeding the flow
/// router, the multiplexed server tests and the `multi_tenant` bench.
///
/// Every event samples a tenant by Zipf popularity, then a flow within
/// that tenant by the same skew. Flow content comes in three styles,
/// assigned round-robin by `(tenant + flow) % 3`:
///
/// - **sensor**: slow drift — payload changes every
///   [`drift_every`](ManyFlowsConfig::drift_every) appearances;
/// - **dns**: a cycling pool of eight payload generations (a stable name
///   set revisited over and over — maximally dictionary-friendly);
/// - **churn**: a fresh generation on every appearance (worst case —
///   every chunk installs a new basis).
///
/// Tenant, flow and generation are each spread over three chunk bytes,
/// so any two distinct `(tenant, flow, generation)` triples differ in at
/// least 3 bits and never fold onto one basis under GD's single-bit
/// deviation correction.
#[derive(Debug, Clone)]
pub struct ManyFlowsWorkload {
    config: ManyFlowsConfig,
    tenant_zipf: Zipf,
    flow_zipf: Zipf,
}

impl ManyFlowsWorkload {
    /// Creates the workload.
    pub fn new(config: ManyFlowsConfig) -> Self {
        assert!(config.tenants > 0, "many-flows mix needs a tenant");
        assert!(
            config.tenants <= 256,
            "at most 256 distinct tenants ({} requested)",
            config.tenants
        );
        assert!(
            config.flows >= config.tenants,
            "need at least one flow per tenant ({} flows, {} tenants)",
            config.flows,
            config.tenants
        );
        assert!(config.chunk_len >= 32, "pattern needs 32 bytes");
        let tenant_zipf = Zipf::new(config.tenants, config.zipf_exponent);
        let flow_zipf = Zipf::new(config.flows_per_tenant(), config.zipf_exponent);
        Self {
            config,
            tenant_zipf,
            flow_zipf,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ManyFlowsConfig {
        &self.config
    }

    /// Every `(tenant, flow)` pair the workload can emit, in order.
    pub fn keys(&self) -> Vec<(u64, u64)> {
        let per_tenant = self.config.flows_per_tenant();
        (0..self.config.tenants as u64)
            .flat_map(|tenant| (0..per_tenant as u64).map(move |flow| (tenant, flow)))
            .collect()
    }

    /// One chunk of `(tenant, flow)` at drift `generation`; all three
    /// spread over three bytes for ≥ 3-bit pairwise separation.
    fn pattern(&self, tenant: u64, flow: u64, generation: u32) -> Vec<u8> {
        let mut chunk = vec![0u8; self.config.chunk_len];
        chunk[0] = flow as u8;
        chunk[4] = flow as u8;
        chunk[8] = flow as u8;
        chunk[12] = tenant as u8;
        chunk[16] = tenant as u8;
        chunk[20] = tenant as u8;
        chunk[24] = generation as u8;
        chunk[26] = generation as u8;
        chunk[28] = generation as u8;
        // High flow byte, for mixes wider than 256 flows per tenant.
        chunk[1] = (flow >> 8) as u8;
        chunk[5] = (flow >> 8) as u8;
        chunk[9] = (flow >> 8) as u8;
        chunk
    }

    /// The tagged event stream: deterministic for a given seed.
    pub fn events(&self) -> Box<dyn Iterator<Item = FlowChunk> + '_> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let per_tenant = self.config.flows_per_tenant();
        let mut appearances = vec![0u32; self.config.tenants * per_tenant];
        Box::new((0..self.config.chunks).map(move |_| {
            let tenant = self.tenant_zipf.sample(&mut rng);
            let flow = self.flow_zipf.sample(&mut rng);
            let index = tenant * per_tenant + flow;
            let seen = appearances[index];
            appearances[index] = seen.wrapping_add(1);
            let generation = match (tenant + flow) % 3 {
                // Sensor style: slow drift.
                0 => seen.checked_div(self.config.drift_every).unwrap_or(0),
                // DNS style: a cycling pool of eight generations.
                1 => seen % 8,
                // Churn style: a fresh basis every appearance.
                _ => seen,
            };
            FlowChunk {
                tenant: tenant as u64,
                flow: flow as u64,
                bytes: self.pattern(tenant as u64, flow as u64, generation),
            }
        }))
    }
}

impl ChunkWorkload for ManyFlowsWorkload {
    fn chunk_len(&self) -> usize {
        self.config.chunk_len
    }

    fn total_chunks(&self) -> usize {
        self.config.chunks
    }

    /// The untagged chunk stream (for single-stream reuse of the mix).
    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        Box::new(self.events().map(|event| event.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let a: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small())
            .chunks()
            .take(512)
            .collect();
        let b: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small())
            .chunks()
            .take(512)
            .collect();
        assert_eq!(a, b);
        let c: Vec<Vec<u8>> = FlowMixWorkload::new(FlowMixConfig::small_with_seed(7))
            .chunks()
            .take(512)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let workload = FlowMixWorkload::new(FlowMixConfig::small());
        let mut counts = vec![0usize; 256];
        for chunk in workload.chunks() {
            let flow = chunk[0] as usize | ((chunk[12] as usize) << 8);
            counts[flow] += 1;
        }
        let top = counts[0];
        let tail: usize = counts[200..].iter().sum();
        assert!(
            top > counts[100] * 5,
            "rank 0 ({top}) should dominate rank 100 ({})",
            counts[100]
        );
        assert!(top > tail / 8, "head should rival the far tail in volume");
    }

    #[test]
    fn drift_changes_a_hot_flows_payload() {
        let workload = FlowMixWorkload::new(FlowMixConfig {
            drift_every: 16,
            chunks: 4096,
            ..FlowMixConfig::small()
        });
        let mut rank0 = Vec::new();
        for chunk in workload.chunks() {
            if chunk[0] == 0 && chunk[12] == 0 {
                rank0.push(chunk);
            }
        }
        assert!(rank0.len() > 32, "rank 0 must appear often");
        let distinct: std::collections::HashSet<&Vec<u8>> = rank0.iter().collect();
        assert!(
            distinct.len() > 1,
            "drift must change the hot flow's payload"
        );
    }

    #[test]
    fn many_flows_is_deterministic_and_tagged_in_range() {
        let workload = ManyFlowsWorkload::new(ManyFlowsConfig::small());
        let a: Vec<FlowChunk> = workload.events().take(1024).collect();
        let b: Vec<FlowChunk> = workload.events().take(1024).collect();
        assert_eq!(a, b);
        let other = ManyFlowsWorkload::new(ManyFlowsConfig::small_with_seed(3));
        let c: Vec<FlowChunk> = other.events().take(1024).collect();
        assert_ne!(a, c);
        let keys = workload.keys();
        for event in &a {
            assert!(keys.contains(&(event.tenant, event.flow)));
            assert_eq!(event.bytes.len(), 32);
        }
    }

    #[test]
    fn many_flows_tenant_popularity_is_skewed() {
        let workload = ManyFlowsWorkload::new(ManyFlowsConfig::small());
        let mut per_tenant = [0usize; 8];
        for event in workload.events() {
            per_tenant[event.tenant as usize] += 1;
        }
        assert!(
            per_tenant[0] > per_tenant[7] * 3,
            "tenant 0 ({}) should dominate tenant 7 ({})",
            per_tenant[0],
            per_tenant[7]
        );
        assert!(per_tenant.iter().all(|&n| n > 0), "every tenant appears");
    }

    #[test]
    fn many_flows_mixes_stable_and_churning_styles() {
        let workload = ManyFlowsWorkload::new(ManyFlowsConfig {
            chunks: 16_384,
            ..ManyFlowsConfig::small()
        });
        let mut distinct: std::collections::HashMap<
            (u64, u64),
            std::collections::HashSet<Vec<u8>>,
        > = std::collections::HashMap::new();
        let mut appearances: std::collections::HashMap<(u64, u64), usize> =
            std::collections::HashMap::new();
        for event in workload.events() {
            let key = (event.tenant, event.flow);
            distinct.entry(key).or_default().insert(event.bytes);
            *appearances.entry(key).or_default() += 1;
        }
        // A hot churn-style flow installs a new basis per appearance; a hot
        // dns-style flow cycles at most eight payloads.
        let churny = distinct.iter().any(|(key, set)| {
            (key.0 + key.1) % 3 == 2 && set.len() > 32 && set.len() == appearances[key]
        });
        let stable = distinct
            .iter()
            .any(|(key, set)| (key.0 + key.1) % 3 == 1 && appearances[key] > 64 && set.len() <= 8);
        assert!(churny, "expected a churn-style flow with per-chunk bases");
        assert!(stable, "expected a dns-style flow cycling a small pool");
    }
}
