//! Synthetic campus-DNS workload (substitute for the paper's real trace).
//!
//! The paper replays "a day of DNS queries at a 4000 users university
//! campus", filtered to 34-byte queries to the main resolver and excluding
//! the DNS transaction identifier, which is a random number (section 7).
//! A 34-byte DNS query minus its 2-byte transaction ID is exactly 32 bytes =
//! one 256-bit chunk with the paper's parameters — which is why the dataset
//! fits ZipLine so well.
//!
//! We do not redistribute the original trace; this generator produces
//! queries with the same redundancy structure: a pool of distinct query
//! names sized like a campus working set, queried under a Zipf popularity
//! distribution, each wire-format query being exactly 34 bytes.

use crate::zipf::Zipf;
use crate::ChunkWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic DNS workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsWorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Number of distinct query names in the campus working set.
    pub distinct_names: usize,
    /// Zipf exponent of the name popularity distribution.
    pub zipf_exponent: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl DnsWorkloadConfig {
    /// A full-day campus trace: the paper's filtered trace is ≈25 MB of
    /// 34-byte queries, i.e. ≈735 000 queries; a 4 000-user campus resolves
    /// a working set of a few thousand distinct names.
    pub fn paper_scale() -> Self {
        Self {
            queries: 735_000,
            distinct_names: 8_000,
            zipf_exponent: 1.0,
            seed: 0xD45_0001,
        }
    }

    /// A reduced workload for tests and quick runs.
    pub fn small() -> Self {
        Self {
            queries: 10_000,
            distinct_names: 400,
            zipf_exponent: 1.0,
            seed: 0xD45_0001,
        }
    }
}

impl Default for DnsWorkloadConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Total size of each generated query message in bytes (the paper's filter).
pub const QUERY_LEN: usize = 34;
/// Size of the chunk ZipLine processes: the query minus the random 2-byte
/// transaction identifier.
pub const CHUNK_LEN: usize = QUERY_LEN - 2;

/// The synthetic DNS workload.
#[derive(Debug, Clone)]
pub struct DnsWorkload {
    config: DnsWorkloadConfig,
    names: Vec<String>,
    popularity: Zipf,
}

impl DnsWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    /// Panics on a degenerate configuration (zero queries or names).
    pub fn new(config: DnsWorkloadConfig) -> Self {
        assert!(config.queries > 0 && config.distinct_names > 0);
        let names = (0..config.distinct_names).map(campus_name).collect();
        let popularity = Zipf::new(config.distinct_names, config.zipf_exponent);
        Self {
            config,
            names,
            popularity,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DnsWorkloadConfig {
        &self.config
    }

    /// The distinct query names in the working set.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Builds the 34-byte wire-format query for the name at `rank`, with the
    /// given transaction id.
    pub fn query_message(&self, rank: usize, transaction_id: u16) -> Vec<u8> {
        build_query(&self.names[rank], transaction_id)
    }

    /// Iterator over full 34-byte query messages (with random transaction
    /// ids), in arrival order.
    pub fn queries(&self) -> impl Iterator<Item = Vec<u8>> + '_ {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut produced = 0usize;
        std::iter::from_fn(move || {
            if produced >= self.config.queries {
                return None;
            }
            produced += 1;
            let rank = self.popularity.sample(&mut rng);
            let txid: u16 = rng.gen();
            Some(self.query_message(rank, txid))
        })
    }
}

impl ChunkWorkload for DnsWorkload {
    fn chunk_len(&self) -> usize {
        CHUNK_LEN
    }

    fn total_chunks(&self) -> usize {
        self.config.queries
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        // The chunk is the query with the 2-byte transaction id stripped —
        // the same filter the paper applies to the campus trace.
        Box::new(self.queries().map(|q| q[2..].to_vec()))
    }
}

/// Builds a campus-style name whose wire-format query is exactly 34 bytes.
///
/// QNAME must encode to 18 bytes: two labels whose lengths sum to 15, plus
/// two length bytes and the root terminator.
fn campus_name(rank: usize) -> String {
    // "hostNNNNN" (9) + "campus" (6) = 15 label characters, so the QNAME
    // encodes to 1 + 9 + 1 + 6 + 1 = 18 bytes and the query to 34 bytes.
    format!("host{:05}.campus", rank % 100_000)
}

/// Builds a 34-byte DNS query (header + one A/IN question) for `name`.
pub fn build_query(name: &str, transaction_id: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(QUERY_LEN);
    out.extend_from_slice(&transaction_id.to_be_bytes());
    out.extend_from_slice(&0x0100u16.to_be_bytes()); // flags: RD
    out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    out.extend_from_slice(&0u16.to_be_bytes()); // ANCOUNT
    out.extend_from_slice(&0u16.to_be_bytes()); // NSCOUNT
    out.extend_from_slice(&0u16.to_be_bytes()); // ARCOUNT
    for label in name.split('.') {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0); // root label
    out.extend_from_slice(&1u16.to_be_bytes()); // QTYPE = A
    out.extend_from_slice(&1u16.to_be_bytes()); // QCLASS = IN
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn queries_are_exactly_34_bytes() {
        let workload = DnsWorkload::new(DnsWorkloadConfig::small());
        for q in workload.queries().take(200) {
            assert_eq!(q.len(), QUERY_LEN);
        }
        // And across the whole name pool, not just popular ones.
        for rank in 0..workload.names().len() {
            assert_eq!(
                workload.query_message(rank, 0).len(),
                QUERY_LEN,
                "rank {rank}"
            );
        }
    }

    #[test]
    fn chunks_strip_the_transaction_id() {
        let workload = DnsWorkload::new(DnsWorkloadConfig::small());
        assert_eq!(workload.chunk_len(), 32);
        let chunk = workload.chunks().next().unwrap();
        assert_eq!(chunk.len(), CHUNK_LEN);
        // The flags field (0x0100) is now at offset 0.
        assert_eq!(&chunk[0..2], &[0x01, 0x00]);
    }

    #[test]
    fn same_name_different_txid_yields_identical_chunks() {
        let workload = DnsWorkload::new(DnsWorkloadConfig::small());
        let a = workload.query_message(3, 0x1111);
        let b = workload.query_message(3, 0xFFFF);
        assert_ne!(a, b, "transaction ids differ");
        assert_eq!(a[2..], b[2..], "payload after txid is identical");
    }

    #[test]
    fn distinct_chunks_bounded_by_name_pool() {
        let config = DnsWorkloadConfig {
            queries: 5_000,
            distinct_names: 100,
            ..DnsWorkloadConfig::small()
        };
        let workload = DnsWorkload::new(config);
        let distinct: HashSet<Vec<u8>> = workload.chunks().collect();
        assert!(distinct.len() <= 100);
        assert!(distinct.len() > 10, "Zipf should still touch many names");
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let workload = DnsWorkload::new(DnsWorkloadConfig {
            queries: 50_000,
            distinct_names: 500,
            ..DnsWorkloadConfig::small()
        });
        let mut counts = std::collections::HashMap::new();
        for chunk in workload.chunks() {
            *counts.entry(chunk).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular name accounts for far more than its uniform share.
        assert!(freqs[0] as f64 > 50_000.0 / 500.0 * 10.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let w1 = DnsWorkload::new(DnsWorkloadConfig::small());
        let w2 = DnsWorkload::new(DnsWorkloadConfig::small());
        let a: Vec<Vec<u8>> = w1.queries().take(100).collect();
        let b: Vec<Vec<u8>> = w2.queries().take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn query_wire_format_is_parseable() {
        let q = build_query("host00042.campus", 0xABCD);
        assert_eq!(q.len(), 34);
        assert_eq!(&q[0..2], &[0xAB, 0xCD]);
        assert_eq!(u16::from_be_bytes([q[4], q[5]]), 1, "QDCOUNT");
        // QNAME starts at offset 12: label "host00042" then "campus".
        assert_eq!(q[12], 9);
        assert_eq!(&q[13..22], b"host00042");
        assert_eq!(q[22], 6);
        assert_eq!(&q[23..29], b"campus");
        assert_eq!(q[29], 0);
        assert_eq!(u16::from_be_bytes([q[30], q[31]]), 1, "QTYPE A");
        assert_eq!(u16::from_be_bytes([q[32], q[33]]), 1, "QCLASS IN");
    }

    #[test]
    fn paper_scale_totals() {
        let config = DnsWorkloadConfig::paper_scale();
        // ≈ 25 MB of 34-byte queries, as in the paper's Figure 3 x-axis.
        let total_bytes = config.queries * QUERY_LEN;
        assert!((24_000_000..26_000_000).contains(&total_bytes));
    }
}
