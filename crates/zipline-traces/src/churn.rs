//! A dictionary-churn workload: more distinct bases than the dictionary can
//! hold.
//!
//! The PR-3 live decoder sync makes capacity-exceeding streams a first-class
//! scenario; this generator is the shared fixture its regression tests and
//! benches run on. It produces `distinct` distinct chunk patterns, each
//! repeated `repeats` times in a row — the repeats compress to `Ref` records
//! whose identifiers are evicted and recycled soon after, which is exactly
//! the regime where a post-hoc snapshot sync aliases earlier frames.
//!
//! Every pair of patterns differs in at least 3 bits (the pattern index is
//! written to three separate bytes), so no two chunks can fold to the same
//! basis under GD's single-bit deviation correction: the stream is
//! guaranteed to carry `distinct` distinct bases.

use crate::ChunkWorkload;

/// Configuration of a [`ChurnWorkload`].
#[derive(Debug, Clone)]
pub struct ChurnWorkloadConfig {
    /// Number of distinct bases (choose ≥ 4× the dictionary capacity to
    /// exercise identifier recycling). At most 65 536 are distinct.
    pub distinct: u32,
    /// Consecutive appearances of each basis (≥ 2 produces `Ref` records
    /// that later alias under snapshot-only sync).
    pub repeats: u32,
    /// Chunk size in bytes (≥ 24 so the pattern bytes fit).
    pub chunk_len: usize,
}

impl ChurnWorkloadConfig {
    /// A workload with `factor`× more distinct bases than `capacity`, each
    /// appearing twice, at the given chunk size.
    pub fn exceeding_capacity(capacity: usize, factor: u32, chunk_len: usize) -> Self {
        Self {
            distinct: factor * capacity as u32,
            repeats: 2,
            chunk_len,
        }
    }
}

/// The churn workload; see the module docs.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    config: ChurnWorkloadConfig,
}

impl ChurnWorkload {
    /// Creates the workload.
    pub fn new(config: ChurnWorkloadConfig) -> Self {
        assert!(config.chunk_len >= 24, "pattern needs 24 bytes");
        // The pattern encodes 16 bits of the index; beyond that, "distinct"
        // patterns would silently repeat and stop exercising churn.
        assert!(
            config.distinct <= 1 << 16,
            "at most 65536 distinct patterns ({} requested)",
            config.distinct
        );
        Self { config }
    }

    /// One pattern chunk: the index spread over three bytes per half so any
    /// two distinct indices differ in ≥ 3 bits.
    fn pattern(&self, i: u32) -> Vec<u8> {
        let mut chunk = vec![0u8; self.config.chunk_len];
        chunk[0] = i as u8;
        chunk[4] = i as u8;
        chunk[8] = i as u8;
        chunk[12] = (i >> 8) as u8;
        chunk[16] = (i >> 8) as u8;
        chunk[20] = (i >> 8) as u8;
        chunk
    }

    /// The whole workload as one contiguous buffer (chunks concatenated in
    /// order) — convenient for batch-API tests and benches.
    pub fn bytes(&self) -> Vec<u8> {
        let mut data = Vec::with_capacity(self.total_chunks() * self.config.chunk_len);
        for chunk in self.chunks() {
            data.extend_from_slice(&chunk);
        }
        data
    }
}

impl ChunkWorkload for ChurnWorkload {
    fn chunk_len(&self) -> usize {
        self.config.chunk_len
    }

    fn total_chunks(&self) -> usize {
        self.config.distinct as usize * self.config.repeats as usize
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        Box::new((0..self.config.distinct).flat_map(move |i| {
            let chunk = self.pattern(i);
            (0..self.config.repeats).map(move |_| chunk.clone())
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_are_pairwise_three_bits_apart() {
        let workload = ChurnWorkload::new(ChurnWorkloadConfig {
            distinct: 300, // crosses the 8-bit boundary
            repeats: 1,
            chunk_len: 32,
        });
        let chunks: Vec<Vec<u8>> = workload.chunks().collect();
        assert_eq!(chunks.len(), 300);
        for (i, a) in chunks.iter().enumerate() {
            for b in chunks.iter().skip(i + 1) {
                let distance: u32 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x ^ y).count_ones())
                    .sum();
                assert!(distance >= 3, "patterns too close: {distance} bits");
            }
        }
    }

    #[test]
    fn repeats_and_bytes_agree_with_the_iterator() {
        let workload = ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(16, 4, 32));
        assert_eq!(workload.total_chunks(), 128);
        assert_eq!(workload.chunk_len(), 32);
        let bytes = workload.bytes();
        assert_eq!(bytes.len(), 128 * 32);
        let from_iter: Vec<u8> = workload.chunks().flatten().collect();
        assert_eq!(bytes, from_iter);
        // Consecutive repeats are identical; distinct patterns differ.
        assert_eq!(bytes[0..32], bytes[32..64]);
        assert_ne!(bytes[0..32], bytes[64..96]);
    }
}
