//! Converting workloads into Ethernet frames and pcap traces.
//!
//! The paper converts its chunk datasets "to a pcap trace of Ethernet
//! packets containing the chunks as payload", then replays the trace at the
//! switch. These helpers do the same for any [`ChunkWorkload`], so the
//! experiment harness and external tools (tcpreplay, Wireshark) see the same
//! bytes.

use crate::ChunkWorkload;
use zipline_net::error::Result;
use zipline_net::ethernet::{EthernetFrame, ETHERTYPE_IPV4};
use zipline_net::mac::MacAddress;
use zipline_net::pcap::{PcapPacket, PcapWriter};
use zipline_net::time::{SimDuration, SimTime};

/// Framing parameters for a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Source MAC address of every frame.
    pub src: MacAddress,
    /// Destination MAC address of every frame.
    pub dst: MacAddress,
    /// EtherType of the generated frames (the switch treats them as
    /// type 1 / raw packets).
    pub ethertype: u16,
    /// Inter-packet gap used for pcap timestamps.
    pub spacing: SimDuration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            src: MacAddress::local(1),
            dst: MacAddress::local(2),
            ethertype: ETHERTYPE_IPV4,
            spacing: SimDuration::from_micros(1),
        }
    }
}

/// Converts every chunk of a workload into an Ethernet frame.
pub fn chunks_to_frames(workload: &dyn ChunkWorkload, config: &TraceConfig) -> Vec<EthernetFrame> {
    workload
        .chunks()
        .map(|chunk| EthernetFrame::new(config.dst, config.src, config.ethertype, chunk))
        .collect()
}

/// Writes a workload as a pcap trace into `writer` and returns the number of
/// packets written.
pub fn chunks_to_pcap<W: std::io::Write>(
    workload: &dyn ChunkWorkload,
    config: &TraceConfig,
    writer: W,
) -> Result<u64> {
    let mut pcap = PcapWriter::new(writer)?;
    let mut timestamp = SimTime::ZERO;
    for chunk in workload.chunks() {
        let frame = EthernetFrame::new(config.dst, config.src, config.ethertype, chunk);
        pcap.write_packet(&PcapPacket::from_frame(timestamp, &frame))?;
        timestamp += config.spacing;
    }
    Ok(pcap.packets_written())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{SensorWorkload, SensorWorkloadConfig};
    use zipline_net::pcap::read_trace;

    fn small_workload() -> SensorWorkload {
        SensorWorkload::new(SensorWorkloadConfig {
            chunks: 50,
            ..SensorWorkloadConfig::small()
        })
    }

    #[test]
    fn frames_carry_the_chunks_as_payload() {
        let workload = small_workload();
        let config = TraceConfig::default();
        let frames = chunks_to_frames(&workload, &config);
        assert_eq!(frames.len(), 50);
        let chunks: Vec<Vec<u8>> = workload.chunks().collect();
        for (frame, chunk) in frames.iter().zip(chunks.iter()) {
            assert_eq!(&frame.payload, chunk);
            assert_eq!(frame.src, config.src);
            assert_eq!(frame.dst, config.dst);
            assert_eq!(frame.ethertype, config.ethertype);
        }
    }

    #[test]
    fn pcap_roundtrip_preserves_payloads_and_spacing() {
        let workload = small_workload();
        let config = TraceConfig {
            spacing: SimDuration::from_micros(10),
            ..TraceConfig::default()
        };
        let mut buffer = Vec::new();
        let written = chunks_to_pcap(&workload, &config, &mut buffer).unwrap();
        assert_eq!(written, 50);

        let packets = read_trace(&buffer).unwrap();
        assert_eq!(packets.len(), 50);
        let chunks: Vec<Vec<u8>> = workload.chunks().collect();
        for (i, (packet, chunk)) in packets.iter().zip(chunks.iter()).enumerate() {
            let frame = packet.to_frame().unwrap();
            assert_eq!(&frame.payload, chunk, "packet {i}");
            assert_eq!(packet.timestamp.as_nanos(), i as u64 * 10_000);
        }
    }
}
