//! A crash-interrupted churn workload: the shared fixture for warm-restart
//! and recovery tests.
//!
//! The durable engine store (PR 6) promises that a process killed
//! mid-stream resumes at the last committed batch boundary with no
//! duplicated or lost wire frames. Exercising that needs a workload split
//! into the part fed *before* the crash and the part fed by the restarted
//! process — over data that churns the dictionary past capacity, so the
//! recovery also has to restore identifier recycling state correctly, not
//! just a small static dictionary.
//!
//! [`CrashWorkload`] wraps a [`ChurnWorkload`] and a crash point (a chunk
//! index): [`CrashWorkload::pre_crash`] and [`CrashWorkload::post_crash`]
//! are [`ChunkWorkload`]s over the two halves, and feeding them to two
//! engine incarnations in sequence must be indistinguishable — frame for
//! frame past the resume boundary — from feeding [`CrashWorkload::full`]
//! to one uninterrupted engine.

use crate::churn::{ChurnWorkload, ChurnWorkloadConfig};
use crate::ChunkWorkload;

/// Configuration of a [`CrashWorkload`].
#[derive(Debug, Clone)]
pub struct CrashWorkloadConfig {
    /// The underlying churn stream (see [`ChurnWorkloadConfig`]).
    pub churn: ChurnWorkloadConfig,
    /// Chunk index at which the writer dies: `pre_crash` yields chunks
    /// `[0, crash_after_chunks)`, `post_crash` the rest. Must lie strictly
    /// inside the stream so both phases are non-empty.
    pub crash_after_chunks: usize,
}

/// The crash-interrupted workload; see the module docs.
#[derive(Debug, Clone)]
pub struct CrashWorkload {
    inner: ChurnWorkload,
    crash_after: usize,
}

/// One side of the crash point, usable anywhere a [`ChunkWorkload`] is.
#[derive(Debug, Clone)]
pub struct CrashPhase {
    inner: ChurnWorkload,
    /// First chunk index of the phase.
    start: usize,
    /// One past the last chunk index of the phase.
    end: usize,
}

impl CrashWorkload {
    /// Creates the workload; panics unless the crash point is strictly
    /// inside the stream (a crash before the first or after the last chunk
    /// would leave one phase empty and the test vacuous).
    pub fn new(config: CrashWorkloadConfig) -> Self {
        let inner = ChurnWorkload::new(config.churn);
        assert!(
            config.crash_after_chunks > 0 && config.crash_after_chunks < inner.total_chunks(),
            "crash point {} must fall strictly inside the {}-chunk stream",
            config.crash_after_chunks,
            inner.total_chunks()
        );
        Self {
            inner,
            crash_after: config.crash_after_chunks,
        }
    }

    /// A capacity-exceeding churn stream (`factor`× more distinct bases
    /// than `capacity`) that crashes at its midpoint — after the
    /// dictionary has already evicted and recycled identifiers, so the
    /// recovery must restore churn state, not just a warm cache.
    pub fn exceeding_capacity(capacity: usize, factor: u32, chunk_len: usize) -> Self {
        let churn = ChurnWorkloadConfig::exceeding_capacity(capacity, factor, chunk_len);
        let total = churn.distinct as usize * churn.repeats as usize;
        Self::new(CrashWorkloadConfig {
            churn,
            crash_after_chunks: total / 2,
        })
    }

    /// The uninterrupted stream (the reference run recovery is judged
    /// against).
    pub fn full(&self) -> &ChurnWorkload {
        &self.inner
    }

    /// Chunks fed before the writer dies.
    pub fn pre_crash(&self) -> CrashPhase {
        CrashPhase {
            inner: self.inner.clone(),
            start: 0,
            end: self.crash_after,
        }
    }

    /// Chunks the restarted writer feeds after recovery.
    pub fn post_crash(&self) -> CrashPhase {
        CrashPhase {
            inner: self.inner.clone(),
            start: self.crash_after,
            end: self.inner.total_chunks(),
        }
    }

    /// The crash point as a byte offset into [`ChurnWorkload::bytes`] —
    /// what a resumed producer compares against the store's recovered
    /// `bytes_in` counter.
    pub fn crash_offset_bytes(&self) -> usize {
        self.crash_after * self.inner.chunk_len()
    }
}

impl ChunkWorkload for CrashPhase {
    fn chunk_len(&self) -> usize {
        self.inner.chunk_len()
    }

    fn total_chunks(&self) -> usize {
        self.end - self.start
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        Box::new(
            self.inner
                .chunks()
                .skip(self.start)
                .take(self.end - self.start),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_partition_the_full_stream_exactly() {
        let workload = CrashWorkload::exceeding_capacity(16, 4, 32);
        let full: Vec<Vec<u8>> = workload.full().chunks().collect();
        let pre: Vec<Vec<u8>> = workload.pre_crash().chunks().collect();
        let post: Vec<Vec<u8>> = workload.post_crash().chunks().collect();
        assert_eq!(pre.len() + post.len(), full.len());
        assert_eq!(pre.len(), workload.pre_crash().total_chunks());
        assert_eq!(post.len(), workload.post_crash().total_chunks());
        let rejoined: Vec<Vec<u8>> = pre.into_iter().chain(post).collect();
        assert_eq!(rejoined, full);
        assert_eq!(
            workload.crash_offset_bytes(),
            workload.pre_crash().total_chunks() * 32
        );
    }

    #[test]
    fn midpoint_crash_lands_past_the_first_eviction_wave() {
        // The default crash point must sit deep enough into the stream
        // that a 16-identifier dictionary has already churned: half of a
        // 4×-capacity stream covers 32 distinct bases.
        let workload = CrashWorkload::exceeding_capacity(16, 4, 32);
        assert!(workload.pre_crash().total_chunks() >= 2 * 16);
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn crash_outside_the_stream_is_rejected() {
        let churn = ChurnWorkloadConfig::exceeding_capacity(16, 4, 32);
        CrashWorkload::new(CrashWorkloadConfig {
            crash_after_chunks: 128,
            churn,
        });
    }
}
