//! Synthetic sensor-readout workload (the paper's synthetic dataset).
//!
//! Section 7: "We engineered the synthetic dataset to be behaviorally close
//! to typical readouts from a sensor. We generate 3,124,000 chunks of
//! 256 bit (matching the parameters we chose)."
//!
//! The generator models a fleet of sensors, each cycling through a small set
//! of quantized readings (temperature-style values that dwell on a plateau
//! and occasionally step). Two properties matter for GD — both part of what
//! "engineered [...] matching the parameters we chose" means in the paper:
//!
//! * each plateau value is canonicalized onto a **GD codeword** (its
//!   deviation is zero), so the number of distinct 247-bit bases is exactly
//!   `sensors × readings_per_sensor` — small enough to fit the 2¹⁵-entry
//!   dictionary and a static table compresses every chunk (Figure 3's 0.09
//!   bar);
//! * individual chunks may still differ from their plateau value by one
//!   **noise bit** anywhere in the chunk — GD absorbs that into the
//!   deviation for free (the same basis is found), which is precisely the
//!   paper's pitch.

use crate::ChunkWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zipline_gd::codec::{ChunkCodec, EncodedChunk};
use zipline_gd::config::GdConfig;

/// Configuration of the synthetic sensor workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorWorkloadConfig {
    /// Total number of chunks to generate (paper: 3 124 000).
    pub chunks: usize,
    /// Chunk size in bytes (paper: 32, i.e. 256 bit).
    pub chunk_len: usize,
    /// Number of simulated sensors.
    pub sensors: usize,
    /// Number of distinct quantized readings each sensor cycles through.
    pub readings_per_sensor: usize,
    /// Number of consecutive chunks a sensor dwells on one reading before
    /// stepping to the next.
    pub dwell: usize,
    /// Probability that a chunk carries a single-bit noise flip somewhere in
    /// its payload.
    pub noise_probability: f64,
    /// When set, plateau values are canonicalized onto GD codewords for this
    /// Hamming parameter (the paper's dataset is engineered to match its
    /// chosen parameters, m = 8). `None` produces arbitrary plateaus whose
    /// noisy variants map to distinct bases — useful as a GD-unfriendly
    /// ablation workload.
    pub canonical_m: Option<u32>,
    /// PRNG seed; the workload is fully deterministic given the seed.
    pub seed: u64,
}

impl SensorWorkloadConfig {
    /// The full-size dataset used by the paper (3 124 000 chunks of 32
    /// bytes). About 100 MB of payload, ~26 000 distinct bases.
    pub fn paper_scale() -> Self {
        Self {
            chunks: 3_124_000,
            chunk_len: 32,
            sensors: 512,
            readings_per_sensor: 50,
            dwell: 24,
            noise_probability: 0.2,
            canonical_m: Some(8),
            seed: 0x5EED_0001,
        }
    }

    /// A reduced dataset with the same statistical structure, sized for unit
    /// tests and quick runs (same sensors-to-chunks ratio, ~1/100 scale).
    pub fn small() -> Self {
        Self {
            chunks: 31_240,
            chunk_len: 32,
            sensors: 64,
            readings_per_sensor: 20,
            dwell: 24,
            noise_probability: 0.2,
            canonical_m: Some(8),
            seed: 0x5EED_0001,
        }
    }

    /// Number of distinct plateau chunks (and therefore distinct bases,
    /// noise aside) this configuration can produce.
    pub fn distinct_patterns(&self) -> usize {
        self.sensors * self.readings_per_sensor
    }
}

impl Default for SensorWorkloadConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// The synthetic sensor workload.
#[derive(Debug, Clone)]
pub struct SensorWorkload {
    config: SensorWorkloadConfig,
    /// Pre-computed plateau chunks, indexed by
    /// `sensor * readings_per_sensor + reading`.
    plateaus: Vec<Vec<u8>>,
}

impl SensorWorkload {
    /// Creates the workload for a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero chunks, zero sensors,
    /// chunk shorter than the 8-byte reading header).
    pub fn new(config: SensorWorkloadConfig) -> Self {
        assert!(
            config.chunk_len >= 12,
            "chunk too short for the reading layout"
        );
        assert!(config.sensors > 0 && config.readings_per_sensor > 0 && config.dwell > 0);
        assert!((0.0..=1.0).contains(&config.noise_probability));
        let canonicalizer = config.canonical_m.map(|m| {
            let gd = GdConfig {
                m,
                id_bits: 15,
                chunk_bytes: config.chunk_len,
                tofino_padding_bits: 0,
            };
            gd.validate()
                .expect("chunk large enough for the canonical Hamming parameter");
            ChunkCodec::new(&gd).expect("valid GD configuration")
        });
        let mut plateaus = Vec::with_capacity(config.sensors * config.readings_per_sensor);
        for sensor in 0..config.sensors {
            for reading in 0..config.readings_per_sensor {
                let raw = raw_plateau(&config, sensor, reading);
                let chunk = match &canonicalizer {
                    Some(codec) => {
                        // Snap the plateau onto its GD codeword (deviation 0)
                        // so single-bit noise never creates a new basis.
                        let encoded = codec.encode_chunk(&raw).expect("chunk size matches");
                        codec
                            .decode_chunk(&EncodedChunk {
                                extra: encoded.extra,
                                deviation: 0,
                                basis: encoded.basis,
                                basis_hash: 0,
                            })
                            .expect("canonical chunk reconstructs")
                    }
                    None => raw,
                };
                plateaus.push(chunk);
            }
        }
        Self { config, plateaus }
    }

    /// The configuration.
    pub fn config(&self) -> &SensorWorkloadConfig {
        &self.config
    }

    /// The plateau chunk for a given sensor and reading index — the value the
    /// sensor reports while dwelling, before per-chunk noise. When the
    /// configuration requests canonicalization, this is the GD codeword the
    /// raw plateau maps to.
    pub fn plateau_chunk(&self, sensor: usize, reading_idx: usize) -> Vec<u8> {
        self.plateaus[sensor * self.config.readings_per_sensor + reading_idx].clone()
    }
}

/// Raw (un-canonicalized) plateau layout.
///
/// Layout (for the default 32-byte chunk): bytes 0..2 sensor id, 2..4
/// firmware/constant tag, 4..8 quantized reading, 8..12 unit/status flags,
/// remaining bytes a per-sensor constant calibration block.
fn raw_plateau(config: &SensorWorkloadConfig, sensor: usize, reading_idx: usize) -> Vec<u8> {
    let mut chunk = vec![0u8; config.chunk_len];
    chunk[0..2].copy_from_slice(&(sensor as u16).to_be_bytes());
    chunk[2..4].copy_from_slice(&0xC0DEu16.to_be_bytes());
    // Quantized reading: a value in tenths of a degree around 20 °C,
    // stepping by 0.5 °C per reading index.
    let reading = 200u32 + (reading_idx as u32) * 5;
    chunk[4..8].copy_from_slice(&reading.to_be_bytes());
    chunk[8..12].copy_from_slice(&0x0001_0000u32.to_be_bytes());
    // Per-sensor calibration block: constant bytes derived from the
    // sensor id so different sensors have different bases.
    let mut state = (sensor as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1);
    for byte in chunk.iter_mut().skip(12) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *byte = (state >> 56) as u8;
    }
    chunk
}

impl ChunkWorkload for SensorWorkload {
    fn chunk_len(&self) -> usize {
        self.config.chunk_len
    }

    fn total_chunks(&self) -> usize {
        self.config.chunks
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        let config = self.config.clone();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sensors = config.sensors;
        let mut reading_idx = vec![0usize; sensors];
        let mut produced = 0usize;
        let workload = self.clone();

        Box::new(std::iter::from_fn(move || {
            if produced >= config.chunks {
                return None;
            }
            // Round-robin over sensors, like a polling gateway.
            let sensor = produced % sensors;
            // Each sensor steps to its next quantized reading every
            // `dwell` of *its own* samples.
            let own_sample = produced / sensors;
            if own_sample > 0 && own_sample.is_multiple_of(config.dwell) && sensor == 0 {
                // Advance all sensors at the dwell boundary (they are polled
                // in lockstep), wrapping around the reading set.
                for idx in reading_idx.iter_mut() {
                    *idx = (*idx + 1) % config.readings_per_sensor;
                }
            }
            let mut chunk = workload.plateau_chunk(sensor, reading_idx[sensor]);
            // Single-bit measurement noise, absorbed by the GD deviation.
            if rng.gen_bool(config.noise_probability) {
                let bit = rng.gen_range(0..config.chunk_len * 8);
                chunk[bit / 8] ^= 1 << (7 - (bit % 8));
            }
            produced += 1;
            Some(chunk)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_scale_matches_section7_numbers() {
        let config = SensorWorkloadConfig::paper_scale();
        assert_eq!(config.chunks, 3_124_000);
        assert_eq!(config.chunk_len * 8, 256);
        // Distinct bases must fit the 2^15-entry dictionary.
        assert!(config.distinct_patterns() <= 32_768);
    }

    #[test]
    fn produces_requested_number_of_chunks_of_right_size() {
        let workload = SensorWorkload::new(SensorWorkloadConfig {
            chunks: 1000,
            ..SensorWorkloadConfig::small()
        });
        let chunks: Vec<Vec<u8>> = workload.chunks().collect();
        assert_eq!(chunks.len(), 1000);
        assert!(chunks.iter().all(|c| c.len() == 32));
        assert_eq!(workload.total_chunks(), 1000);
        assert_eq!(workload.chunk_len(), 32);
    }

    #[test]
    fn deterministic_given_seed() {
        let workload = SensorWorkload::new(SensorWorkloadConfig::small());
        let a: Vec<Vec<u8>> = workload.chunks().take(500).collect();
        let b: Vec<Vec<u8>> = workload.chunks().take(500).collect();
        assert_eq!(a, b);
        let different_seed = SensorWorkload::new(SensorWorkloadConfig {
            seed: 999,
            ..SensorWorkloadConfig::small()
        });
        let c: Vec<Vec<u8>> = different_seed.chunks().take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn chunk_diversity_is_bounded_by_distinct_patterns() {
        let config = SensorWorkloadConfig {
            chunks: 20_000,
            sensors: 16,
            readings_per_sensor: 10,
            noise_probability: 0.0,
            ..SensorWorkloadConfig::small()
        };
        let workload = SensorWorkload::new(config.clone());
        let distinct: HashSet<Vec<u8>> = workload.chunks().collect();
        assert!(
            distinct.len() <= config.distinct_patterns(),
            "{} distinct chunks > {} patterns",
            distinct.len(),
            config.distinct_patterns()
        );
        // And the workload is not trivially constant either.
        assert!(distinct.len() > config.sensors);
    }

    #[test]
    fn noise_flips_at_most_one_bit_from_the_plateau() {
        let config = SensorWorkloadConfig {
            chunks: 2_000,
            sensors: 4,
            readings_per_sensor: 3,
            noise_probability: 1.0,
            ..SensorWorkloadConfig::small()
        };
        let workload = SensorWorkload::new(config);
        // Re-derive each chunk's plateau by clearing the noise: the chunk
        // must differ from *some* plateau chunk in at most one bit.
        let plateaus: Vec<Vec<u8>> = (0..4)
            .flat_map(|s| (0..3).map(move |r| (s, r)))
            .map(|(s, r)| workload.plateau_chunk(s, r))
            .collect();
        for chunk in workload.chunks().take(500) {
            let min_distance = plateaus
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(chunk.iter())
                        .map(|(a, b)| (a ^ b).count_ones() as usize)
                        .sum::<usize>()
                })
                .min()
                .unwrap();
            assert!(min_distance <= 1, "chunk deviates by {min_distance} bits");
        }
    }

    #[test]
    fn noisy_chunks_share_their_plateau_basis() {
        // The property the canonicalization buys: even with a noise flip on
        // every chunk, the number of distinct GD bases stays bounded by the
        // number of plateau patterns, so the dictionary (and the paper's
        // static table) covers the whole workload.
        let config = SensorWorkloadConfig {
            chunks: 5_000,
            sensors: 8,
            readings_per_sensor: 4,
            noise_probability: 1.0,
            ..SensorWorkloadConfig::small()
        };
        let workload = SensorWorkload::new(config.clone());
        let codec = ChunkCodec::new(&GdConfig::paper_default()).unwrap();
        let mut bases = HashSet::new();
        for chunk in workload.chunks() {
            bases.insert(codec.encode_chunk(&chunk).unwrap().basis);
        }
        assert!(
            bases.len() <= config.distinct_patterns(),
            "{} bases > {} patterns",
            bases.len(),
            config.distinct_patterns()
        );
    }

    #[test]
    fn uncanonicalized_plateaus_are_available_as_an_ablation() {
        let config = SensorWorkloadConfig {
            chunks: 100,
            sensors: 4,
            readings_per_sensor: 2,
            canonical_m: None,
            noise_probability: 0.0,
            ..SensorWorkloadConfig::small()
        };
        let workload = SensorWorkload::new(config);
        // Without canonicalization the plateau still round-trips through GD
        // (GD is lossless regardless), it just does not sit on a codeword.
        let codec = ChunkCodec::new(&GdConfig::paper_default()).unwrap();
        let chunk = workload.plateau_chunk(0, 0);
        let encoded = codec.encode_chunk(&chunk).unwrap();
        assert_eq!(codec.decode_chunk(&encoded).unwrap(), chunk);
    }

    #[test]
    fn different_sensors_have_different_plateaus() {
        let workload = SensorWorkload::new(SensorWorkloadConfig::small());
        let a = workload.plateau_chunk(0, 0);
        let b = workload.plateau_chunk(1, 0);
        let c = workload.plateau_chunk(0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "chunk too short")]
    fn tiny_chunks_are_rejected() {
        let _ = SensorWorkload::new(SensorWorkloadConfig {
            chunk_len: 4,
            ..SensorWorkloadConfig::small()
        });
    }
}
