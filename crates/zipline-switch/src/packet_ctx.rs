//! Per-packet context handed to a pipeline program.
//!
//! A [`PacketContext`] plays the role of the parsed headers plus intrinsic
//! metadata of a P4 program: the program inspects and rewrites the frame,
//! chooses an egress port (or drop), and may emit digests towards the
//! control plane. The one thing it can *not* do is recirculate the packet —
//! ZipLine is explicitly a single-pass design ("ZipLine does not need packet
//! recirculation as GD can be implemented in a single round", section 3) and
//! the node enforces it.

use zipline_net::ethernet::EthernetFrame;
use zipline_net::sim::PortId;

/// A digest message queued by the data plane for the control plane.
///
/// On the real target a digest carries a few header/metadata fields chosen by
/// the P4 program; here it is an opaque byte payload (the ZipLine encoder
/// puts the basis bytes in it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    /// Identifier of the digest type (a program may define several).
    pub kind: u16,
    /// Digest payload.
    pub data: Vec<u8>,
}

impl Digest {
    /// Builds a digest.
    pub fn new(kind: u16, data: Vec<u8>) -> Self {
        Self { kind, data }
    }
}

/// The mutable per-packet state a program operates on.
#[derive(Debug, Clone)]
pub struct PacketContext {
    /// Port the frame arrived on.
    pub ingress_port: PortId,
    /// The frame itself; programs rewrite the payload / EtherType in place.
    pub frame: EthernetFrame,
    /// Port the frame should leave on; `None` until the program decides.
    pub egress_port: Option<PortId>,
    /// True when the program decided to drop the frame.
    pub dropped: bool,
    /// Digests to hand to the control plane.
    pub digests: Vec<Digest>,
}

impl PacketContext {
    /// Builds the context for a frame arriving on `ingress_port`.
    pub fn new(ingress_port: PortId, frame: EthernetFrame) -> Self {
        Self {
            ingress_port,
            frame,
            egress_port: None,
            dropped: false,
            digests: Vec::new(),
        }
    }

    /// A context holding a zeroed placeholder frame — the recyclable initial
    /// state for nodes that [`reset`](Self::reset) a scratch context per
    /// packet.
    pub fn empty() -> Self {
        Self::new(0, Self::placeholder_frame())
    }

    /// The zeroed placeholder frame left behind by [`Self::take_frame`].
    fn placeholder_frame() -> EthernetFrame {
        EthernetFrame::new(
            zipline_net::mac::MacAddress::new([0; 6]),
            zipline_net::mac::MacAddress::new([0; 6]),
            0,
            Vec::new(),
        )
    }

    /// Re-arms an existing context for a new frame, keeping the digest
    /// buffer's allocation. Together with [`Self::take_frame`] this lets the
    /// switch node recycle one context across all packets instead of
    /// allocating per packet.
    pub fn reset(&mut self, ingress_port: PortId, frame: EthernetFrame) {
        self.ingress_port = ingress_port;
        self.frame = frame;
        self.egress_port = None;
        self.dropped = false;
        self.digests.clear();
    }

    /// Moves the (possibly rewritten) frame out of the context, leaving an
    /// empty placeholder so the context can be recycled via [`Self::reset`].
    pub fn take_frame(&mut self) -> EthernetFrame {
        std::mem::replace(&mut self.frame, Self::placeholder_frame())
    }

    /// Sends the frame out of `port` (the normal unicast action).
    pub fn forward_to(&mut self, port: PortId) {
        self.egress_port = Some(port);
        self.dropped = false;
    }

    /// Drops the frame.
    pub fn drop_packet(&mut self) {
        self.dropped = true;
        self.egress_port = None;
    }

    /// Queues a digest for the control plane.
    pub fn emit_digest(&mut self, digest: Digest) {
        self.digests.push(digest);
    }

    /// True when the program produced a deliverable verdict
    /// (either forward or drop).
    pub fn has_verdict(&self) -> bool {
        self.dropped || self.egress_port.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipline_net::ethernet::ETHERTYPE_IPV4;
    use zipline_net::mac::MacAddress;

    fn frame() -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![0; 8],
        )
    }

    #[test]
    fn forward_and_drop_verdicts() {
        let mut ctx = PacketContext::new(3, frame());
        assert_eq!(ctx.ingress_port, 3);
        assert!(!ctx.has_verdict());
        ctx.forward_to(5);
        assert_eq!(ctx.egress_port, Some(5));
        assert!(ctx.has_verdict());
        ctx.drop_packet();
        assert!(ctx.dropped);
        assert_eq!(ctx.egress_port, None);
        assert!(ctx.has_verdict());
        // Forwarding again cancels the drop.
        ctx.forward_to(1);
        assert!(!ctx.dropped);
    }

    #[test]
    fn reset_and_take_frame_recycle_the_context() {
        let mut ctx = PacketContext::new(0, frame());
        ctx.forward_to(2);
        ctx.emit_digest(Digest::new(1, vec![0x01]));
        let taken = ctx.take_frame();
        assert_eq!(taken.payload, vec![0; 8]);
        assert!(ctx.frame.payload.is_empty());

        ctx.reset(4, frame());
        assert_eq!(ctx.ingress_port, 4);
        assert!(!ctx.has_verdict());
        assert!(ctx.digests.is_empty());
        assert_eq!(ctx.frame.payload, vec![0; 8]);
    }

    #[test]
    fn digests_accumulate() {
        let mut ctx = PacketContext::new(0, frame());
        ctx.emit_digest(Digest::new(1, vec![0xAA]));
        ctx.emit_digest(Digest::new(2, vec![0xBB, 0xCC]));
        assert_eq!(ctx.digests.len(), 2);
        assert_eq!(ctx.digests[1], Digest::new(2, vec![0xBB, 0xCC]));
    }
}
