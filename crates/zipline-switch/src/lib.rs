//! Programmable-switch substrate modelled on the Barefoot Tofino / TNA
//! target used by ZipLine.
//!
//! The paper's contribution is a mapping of Generalized Deduplication onto
//! the primitives a Tofino data plane actually offers: CRC externs,
//! match-action tables with constant or runtime entries, per-entry idle
//! timeouts, digests to the control plane, registers and counters — all under
//! the constraint that per-packet work is constant-time and packets are never
//! recirculated. This crate provides those primitives, plus a switch node
//! ([`node::SwitchNode`]) that plugs a [`program::PipelineProgram`] into the
//! discrete-event network of `zipline-net` and models the data-plane /
//! control-plane split (digests are only acted upon after a configurable
//! control-plane latency — the effect measured by the paper's
//! dynamic-learning experiment).
//!
//! The ZipLine encode/decode programs themselves live in the `zipline`
//! crate; this crate only knows about switches in general. A plain L2
//! forwarding program ([`program::L2ForwardingProgram`]) is included as the
//! "No op" baseline of Figure 4.

pub mod counter;
pub mod crc_extern;
pub mod digest;
pub mod error;
pub mod node;
pub mod packet_ctx;
pub mod program;
pub mod register;
pub mod table;

pub use counter::{CounterArray, CounterValue};
pub use crc_extern::CrcExtern;
pub use digest::DigestQueue;
pub use error::SwitchError;
pub use node::{SwitchConfig, SwitchNode, SwitchStats};
pub use packet_ctx::{Digest, PacketContext};
pub use program::{L2ForwardingProgram, PipelineProgram};
pub use register::RegisterArray;
pub use table::{ExactMatchTable, TableEntry};
