//! Error type for the switch substrate.

use std::fmt;

/// Errors produced by switch resources and programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SwitchError {
    /// A table has reached its maximum number of entries.
    TableFull { table: String, max_entries: usize },
    /// A table key was not found when it was required.
    EntryNotFound(String),
    /// A register or counter index is out of range.
    IndexOutOfRange { index: usize, size: usize },
    /// The program attempted something the hardware target disallows
    /// (e.g. recirculation when configured for single-pass operation).
    TargetConstraint(String),
    /// Resource configuration is invalid (zero-sized table, port out of
    /// range, …).
    InvalidConfig(String),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::TableFull { table, max_entries } => {
                write!(f, "table {table} is full ({max_entries} entries)")
            }
            SwitchError::EntryNotFound(key) => write!(f, "entry not found: {key}"),
            SwitchError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} out of range (size {size})")
            }
            SwitchError::TargetConstraint(msg) => write!(f, "target constraint violated: {msg}"),
            SwitchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SwitchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = SwitchError::TableFull {
            table: "bases".into(),
            max_entries: 32768,
        };
        assert!(e.to_string().contains("bases"));
        assert!(e.to_string().contains("32768"));
        assert!(SwitchError::EntryNotFound("k".into())
            .to_string()
            .contains('k'));
        assert!(SwitchError::IndexOutOfRange { index: 9, size: 4 }
            .to_string()
            .contains('9'));
        assert!(SwitchError::TargetConstraint("recirculation".into())
            .to_string()
            .contains("recirculation"));
        assert!(SwitchError::InvalidConfig("zero ports".into())
            .to_string()
            .contains("zero"));
    }
}
