//! Packet/byte counters.
//!
//! ZipLine "adds counters to provide easily-accessible statistics of the
//! inner-workings": packets are classified according to how they are
//! transformed (section 5). [`CounterArray`] models an indexed counter as P4
//! exposes it — the data plane bumps an index, the control plane reads the
//! whole array.

use crate::error::{Result, SwitchError};

/// Value of one counter cell: packet and byte counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterValue {
    /// Number of packets counted.
    pub packets: u64,
    /// Number of bytes counted.
    pub bytes: u64,
}

/// An indexed packets-and-bytes counter array.
#[derive(Debug, Clone)]
pub struct CounterArray {
    name: String,
    cells: Vec<CounterValue>,
}

impl CounterArray {
    /// Creates a counter array with `size` cells.
    pub fn new(name: impl Into<String>, size: usize) -> Result<Self> {
        if size == 0 {
            return Err(SwitchError::InvalidConfig("counter array of size 0".into()));
        }
        Ok(Self {
            name: name.into(),
            cells: vec![CounterValue::default(); size],
        })
    }

    /// Name of the array.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Counts one packet of `bytes` bytes at `index`.
    pub fn count(&mut self, index: usize, bytes: usize) -> Result<()> {
        let size = self.cells.len();
        let cell = self
            .cells
            .get_mut(index)
            .ok_or(SwitchError::IndexOutOfRange { index, size })?;
        cell.packets += 1;
        cell.bytes += bytes as u64;
        Ok(())
    }

    /// Control-plane read of one cell.
    pub fn read(&self, index: usize) -> Result<CounterValue> {
        self.cells
            .get(index)
            .copied()
            .ok_or(SwitchError::IndexOutOfRange {
                index,
                size: self.cells.len(),
            })
    }

    /// Control-plane read of the whole array.
    pub fn snapshot(&self) -> &[CounterValue] {
        &self.cells
    }

    /// Sum over all cells.
    pub fn total(&self) -> CounterValue {
        let mut total = CounterValue::default();
        for c in &self.cells {
            total.packets += c.packets;
            total.bytes += c.bytes;
        }
        total
    }

    /// Control-plane reset.
    pub fn clear(&mut self) {
        self.cells
            .iter_mut()
            .for_each(|c| *c = CounterValue::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates_packets_and_bytes() {
        let mut c = CounterArray::new("per-type", 3).unwrap();
        c.count(0, 64).unwrap();
        c.count(0, 64).unwrap();
        c.count(2, 1500).unwrap();
        assert_eq!(
            c.read(0).unwrap(),
            CounterValue {
                packets: 2,
                bytes: 128
            }
        );
        assert_eq!(c.read(1).unwrap(), CounterValue::default());
        assert_eq!(
            c.read(2).unwrap(),
            CounterValue {
                packets: 1,
                bytes: 1500
            }
        );
        assert_eq!(
            c.total(),
            CounterValue {
                packets: 3,
                bytes: 1628
            }
        );
        assert_eq!(c.name(), "per-type");
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn out_of_range_errors() {
        let mut c = CounterArray::new("x", 1).unwrap();
        assert!(c.count(1, 10).is_err());
        assert!(c.read(5).is_err());
    }

    #[test]
    fn clear_resets_all_cells() {
        let mut c = CounterArray::new("x", 2).unwrap();
        c.count(1, 9).unwrap();
        c.clear();
        assert_eq!(c.total(), CounterValue::default());
        assert_eq!(c.snapshot().len(), 2);
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(CounterArray::new("empty", 0).is_err());
    }
}
