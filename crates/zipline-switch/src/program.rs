//! The pipeline-program abstraction and basic forwarding programs.
//!
//! A [`PipelineProgram`] is the Rust stand-in for a compiled P4 program
//! loaded onto the switch: it gets one [`PacketContext`] per packet
//! (data-plane work, conceptually constant-time) and is also the target of
//! the two control-plane entry points — digest handling and control packets
//! from an external controller — which the hosting [`crate::node::SwitchNode`]
//! invokes only after the configured control-plane latency.

use crate::packet_ctx::{Digest, PacketContext};
use zipline_net::ethernet::EthernetFrame;
use zipline_net::sim::PortId;
use zipline_net::time::SimTime;

/// A program loaded on a switch.
pub trait PipelineProgram: 'static {
    /// Program name (diagnostics).
    fn name(&self) -> String {
        "p4-program".to_string()
    }

    /// Data-plane processing of one packet.
    fn ingress(&mut self, ctx: &mut PacketContext, now: SimTime);

    /// Control-plane handling of a digest emitted by `ingress`. Invoked after
    /// the switch's control-plane latency. May emit packets (packet-out) as
    /// `(port, frame)` pairs — e.g. notifications to a central controller.
    fn handle_digest(&mut self, _digest: Digest, _now: SimTime) -> Vec<(PortId, EthernetFrame)> {
        Vec::new()
    }

    /// Control-plane handling of a packet that arrived on one of the
    /// switch's CPU ports (e.g. a table-update command from a central
    /// controller). Also latency-deferred. May emit packets.
    fn handle_control_packet(
        &mut self,
        _frame: EthernetFrame,
        _now: SimTime,
    ) -> Vec<(PortId, EthernetFrame)> {
        Vec::new()
    }
}

/// A plain L2 forwarding program with a static port map — the switch acting
/// "as a regular Ethernet switch", which is the "No op" baseline of
/// Figure 4.
#[derive(Debug, Clone)]
pub struct L2ForwardingProgram {
    /// `port_map[ingress_port]` = egress port. Frames arriving on ports not
    /// covered by the map are dropped.
    port_map: Vec<Option<PortId>>,
}

impl L2ForwardingProgram {
    /// Builds a program from an explicit ingress → egress port map.
    pub fn new(port_map: Vec<Option<PortId>>) -> Self {
        Self { port_map }
    }

    /// Convenience: a two-port wire, forwarding port 0 → port 1 and
    /// port 1 → port 0 (how the paper's throughput baseline is cabled).
    pub fn two_port_wire() -> Self {
        Self {
            port_map: vec![Some(1), Some(0)],
        }
    }

    /// Convenience: a "hairpin" that sends every frame back out of port 0,
    /// used by the latency experiment where one server sends packets to
    /// itself via the switch.
    pub fn hairpin(port: PortId) -> Self {
        let mut port_map = vec![None; port + 1];
        port_map[port] = Some(port);
        Self { port_map }
    }
}

impl PipelineProgram for L2ForwardingProgram {
    fn name(&self) -> String {
        "l2-forwarding".to_string()
    }

    fn ingress(&mut self, ctx: &mut PacketContext, _now: SimTime) {
        match self.port_map.get(ctx.ingress_port).copied().flatten() {
            Some(egress) => ctx.forward_to(egress),
            None => ctx.drop_packet(),
        }
    }
}

/// A learning L2 switch: floods unknown destinations and learns source MAC
/// addresses, like a standard Ethernet bridge. Used in tests and examples
/// where static port maps are inconvenient.
#[derive(Debug, Clone)]
pub struct LearningSwitchProgram {
    ports: usize,
    mac_table: std::collections::HashMap<zipline_net::mac::MacAddress, PortId>,
}

impl LearningSwitchProgram {
    /// Builds a learning switch with `ports` ports.
    pub fn new(ports: usize) -> Self {
        Self {
            ports,
            mac_table: std::collections::HashMap::new(),
        }
    }

    /// Number of learned MAC addresses.
    pub fn learned(&self) -> usize {
        self.mac_table.len()
    }
}

impl PipelineProgram for LearningSwitchProgram {
    fn name(&self) -> String {
        "learning-switch".to_string()
    }

    fn ingress(&mut self, ctx: &mut PacketContext, _now: SimTime) {
        if ctx.ingress_port >= self.ports {
            ctx.drop_packet();
            return;
        }
        self.mac_table.insert(ctx.frame.src, ctx.ingress_port);
        match self.mac_table.get(&ctx.frame.dst) {
            Some(&port) if port != ctx.ingress_port => ctx.forward_to(port),
            Some(_) => ctx.drop_packet(), // destination is behind the ingress port
            None => {
                // Flood: the SwitchNode interprets `egress_port == None` with
                // `dropped == false` as "no verdict", so express flooding as
                // a drop here; tests that need flooding use static maps.
                // A full flooding implementation would need multicast support
                // in the node, which ZipLine itself never uses.
                ctx.drop_packet();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipline_net::ethernet::ETHERTYPE_IPV4;
    use zipline_net::mac::MacAddress;

    fn frame(src: u8, dst: u8) -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(dst),
            MacAddress::local(src),
            ETHERTYPE_IPV4,
            vec![0; 16],
        )
    }

    #[test]
    fn two_port_wire_forwards_both_directions() {
        let mut prog = L2ForwardingProgram::two_port_wire();
        assert_eq!(prog.name(), "l2-forwarding");

        let mut ctx = PacketContext::new(0, frame(1, 2));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.egress_port, Some(1));

        let mut ctx = PacketContext::new(1, frame(2, 1));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.egress_port, Some(0));
    }

    #[test]
    fn unmapped_ports_drop() {
        let mut prog = L2ForwardingProgram::new(vec![Some(1), None]);
        let mut ctx = PacketContext::new(1, frame(1, 2));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
        let mut ctx = PacketContext::new(7, frame(1, 2));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
    }

    #[test]
    fn hairpin_reflects_on_same_port() {
        let mut prog = L2ForwardingProgram::hairpin(2);
        let mut ctx = PacketContext::new(2, frame(1, 1));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.egress_port, Some(2));
        let mut ctx = PacketContext::new(0, frame(1, 1));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
    }

    #[test]
    fn default_control_plane_hooks_do_nothing() {
        let mut prog = L2ForwardingProgram::two_port_wire();
        assert!(prog
            .handle_digest(Digest::new(0, vec![]), SimTime::ZERO)
            .is_empty());
        assert!(prog
            .handle_control_packet(frame(1, 2), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn learning_switch_learns_sources() {
        let mut prog = LearningSwitchProgram::new(4);
        assert_eq!(prog.name(), "learning-switch");
        // Host 1 on port 0 talks to (unknown) host 2: dropped, but learned.
        let mut ctx = PacketContext::new(0, frame(1, 2));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
        assert_eq!(prog.learned(), 1);
        // Host 2 on port 3 replies to host 1: forwarded to port 0.
        let mut ctx = PacketContext::new(3, frame(2, 1));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.egress_port, Some(0));
        assert_eq!(prog.learned(), 2);
        // Host 1 to host 2 now goes to port 3.
        let mut ctx = PacketContext::new(0, frame(1, 2));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert_eq!(ctx.egress_port, Some(3));
        // A destination that maps back to the ingress port is dropped.
        let mut ctx = PacketContext::new(0, frame(3, 1));
        prog.ingress(&mut ctx, SimTime::ZERO);
        assert!(ctx.dropped);
    }
}
