//! The switch node: plugs a [`PipelineProgram`] into the discrete-event
//! network.
//!
//! The node models the properties of the hardware target that matter for the
//! paper's claims:
//!
//! * **line-rate forwarding** — per-packet data-plane work never delays other
//!   packets; every forwarded frame incurs only a fixed pipeline latency,
//!   independent of the program (the vendor's guarantee quoted in section 7:
//!   any program that compiles runs at line speed as long as it avoids
//!   recirculation);
//! * **slow control plane** — digests and control packets are acted upon only
//!   after a configurable control-plane latency, which is what the
//!   dynamic-learning experiment measures (≈1.77 ms from unknown basis to
//!   effective table entry);
//! * **per-port counters** and digest-queue accounting for the statistics the
//!   evaluation reads out.

use crate::digest::DigestQueue;
use crate::error::{Result, SwitchError};
use crate::packet_ctx::{Digest, PacketContext};
use crate::program::PipelineProgram;
use std::any::Any;
use std::collections::VecDeque;
use zipline_net::ethernet::EthernetFrame;
use zipline_net::sim::{Node, NodeCtx, PortId};
use zipline_net::time::SimDuration;

/// Static configuration of a switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of front-panel ports.
    pub ports: usize,
    /// Fixed ingress-to-egress pipeline latency applied to every forwarded
    /// frame. A Tofino pipeline traversal is well under a microsecond; the
    /// default of 600 ns keeps the Figure 5 RTTs in the few-microsecond
    /// range the paper reports.
    pub pipeline_latency: SimDuration,
    /// Delay between the data plane emitting a digest (or a control packet
    /// arriving on a CPU port) and the control plane acting on it.
    pub control_plane_latency: SimDuration,
    /// Ports that lead to the controller; frames arriving there are treated
    /// as control traffic rather than data traffic.
    pub cpu_ports: Vec<PortId>,
    /// Capacity of the digest queue between data and control plane.
    pub digest_queue_capacity: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        Self {
            ports: 32,
            pipeline_latency: SimDuration::from_nanos(600),
            control_plane_latency: SimDuration::from_micros(850),
            cpu_ports: Vec::new(),
            digest_queue_capacity: 1024,
        }
    }
}

impl SwitchConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.ports == 0 {
            return Err(SwitchError::InvalidConfig("switch with 0 ports".into()));
        }
        for &p in &self.cpu_ports {
            if p >= self.ports {
                return Err(SwitchError::InvalidConfig(format!(
                    "CPU port {p} outside 0..{}",
                    self.ports
                )));
            }
        }
        Ok(())
    }
}

/// Per-port packet/byte counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames received on the port.
    pub rx_frames: u64,
    /// Wire bytes received on the port.
    pub rx_bytes: u64,
    /// Frames transmitted on the port.
    pub tx_frames: u64,
    /// Wire bytes transmitted on the port.
    pub tx_bytes: u64,
}

/// Switch-level counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    /// Data frames processed by the pipeline.
    pub frames_in: u64,
    /// Frames forwarded out of a port.
    pub frames_out: u64,
    /// Frames dropped by the program (or left without a verdict).
    pub frames_dropped: u64,
    /// Digests accepted into the digest queue.
    pub digests_emitted: u64,
    /// Digests dropped because the queue was full.
    pub digests_dropped: u64,
    /// Control packets received on CPU ports.
    pub control_packets_in: u64,
    /// Packets emitted by the control plane (packet-out).
    pub control_packets_out: u64,
}

/// Timer tokens used by the switch node.
const TOKEN_EGRESS: u64 = 1;
const TOKEN_DIGEST: u64 = 2;
const TOKEN_CONTROL: u64 = 3;

/// A programmable switch in the simulated network.
pub struct SwitchNode<P: PipelineProgram> {
    config: SwitchConfig,
    program: P,
    stats: SwitchStats,
    port_counters: Vec<PortCounters>,
    pending_egress: VecDeque<(PortId, EthernetFrame)>,
    digest_queue: DigestQueue<Digest>,
    pending_control: VecDeque<EthernetFrame>,
    /// Recycled per-packet context (keeps the digest buffer allocation warm
    /// across packets instead of allocating per frame).
    ctx_scratch: PacketContext,
}

impl<P: PipelineProgram> SwitchNode<P> {
    /// Creates a switch running `program`.
    pub fn new(config: SwitchConfig, program: P) -> Result<Self> {
        config.validate()?;
        let digest_queue = DigestQueue::new("digests", config.digest_queue_capacity)?;
        let ports = config.ports;
        Ok(Self {
            config,
            program,
            stats: SwitchStats::default(),
            port_counters: vec![PortCounters::default(); ports],
            pending_egress: VecDeque::new(),
            digest_queue,
            pending_control: VecDeque::new(),
            ctx_scratch: PacketContext::empty(),
        })
    }

    /// Creates a switch with the default configuration.
    pub fn with_default_config(program: P) -> Self {
        Self::new(SwitchConfig::default(), program).expect("default config is valid")
    }

    /// The loaded program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Mutable access to the loaded program (control-plane style
    /// configuration from outside the simulation).
    pub fn program_mut(&mut self) -> &mut P {
        &mut self.program
    }

    /// Switch-level counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Per-port counters.
    pub fn port_counters(&self) -> &[PortCounters] {
        &self.port_counters
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    fn send_now(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
        if let Some(counters) = self.port_counters.get_mut(port) {
            counters.tx_frames += 1;
            counters.tx_bytes += frame.wire_len() as u64;
        }
        ctx.send(port, frame);
    }
}

impl<P: PipelineProgram> Node for SwitchNode<P> {
    fn name(&self) -> String {
        format!("switch[{}]", self.program.name())
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
        if let Some(counters) = self.port_counters.get_mut(port) {
            counters.rx_frames += 1;
            counters.rx_bytes += frame.wire_len() as u64;
        }

        if self.config.cpu_ports.contains(&port) {
            // Control traffic: defer to the control plane after its latency.
            self.stats.control_packets_in += 1;
            self.pending_control.push_back(frame);
            ctx.schedule_at(ctx.now() + self.config.control_plane_latency, TOKEN_CONTROL);
            return;
        }

        self.stats.frames_in += 1;
        self.ctx_scratch.reset(port, frame);
        self.program.ingress(&mut self.ctx_scratch, ctx.now());

        for digest in self.ctx_scratch.digests.drain(..) {
            if self.digest_queue.push(digest) {
                self.stats.digests_emitted += 1;
                ctx.schedule_at(ctx.now() + self.config.control_plane_latency, TOKEN_DIGEST);
            } else {
                self.stats.digests_dropped += 1;
            }
        }

        match (self.ctx_scratch.dropped, self.ctx_scratch.egress_port) {
            (false, Some(egress)) => {
                self.pending_egress
                    .push_back((egress, self.ctx_scratch.take_frame()));
                ctx.schedule_at(ctx.now() + self.config.pipeline_latency, TOKEN_EGRESS);
            }
            _ => {
                self.stats.frames_dropped += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            TOKEN_EGRESS => {
                if let Some((port, frame)) = self.pending_egress.pop_front() {
                    self.stats.frames_out += 1;
                    self.send_now(ctx, port, frame);
                }
            }
            TOKEN_DIGEST => {
                if let Some(digest) = self.digest_queue.pop() {
                    let outputs = self.program.handle_digest(digest, ctx.now());
                    for (port, frame) in outputs {
                        self.stats.control_packets_out += 1;
                        self.send_now(ctx, port, frame);
                    }
                }
            }
            TOKEN_CONTROL => {
                if let Some(frame) = self.pending_control.pop_front() {
                    let outputs = self.program.handle_control_packet(frame, ctx.now());
                    for (port, frame) in outputs {
                        self.stats.control_packets_out += 1;
                        self.send_now(ctx, port, frame);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::L2ForwardingProgram;
    use zipline_net::ethernet::ETHERTYPE_IPV4;
    use zipline_net::host::CaptureSink;
    use zipline_net::link::LinkParams;
    use zipline_net::mac::MacAddress;
    use zipline_net::sim::Network;
    use zipline_net::time::{DataRate, SimTime};

    fn frame(payload_len: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![0xEE; payload_len],
        )
    }

    /// Program used to test the digest and control-packet paths.
    struct DigestingProgram {
        digests_handled: Vec<(SimTime, Digest)>,
        control_handled: Vec<(SimTime, EthernetFrame)>,
    }

    impl DigestingProgram {
        fn new() -> Self {
            Self {
                digests_handled: Vec::new(),
                control_handled: Vec::new(),
            }
        }
    }

    impl PipelineProgram for DigestingProgram {
        fn name(&self) -> String {
            "digesting".to_string()
        }
        fn ingress(&mut self, ctx: &mut PacketContext, _now: SimTime) {
            ctx.emit_digest(Digest::new(1, ctx.frame.payload.clone()));
            ctx.forward_to(1);
        }
        fn handle_digest(&mut self, digest: Digest, now: SimTime) -> Vec<(PortId, EthernetFrame)> {
            self.digests_handled.push((now, digest));
            Vec::new()
        }
        fn handle_control_packet(
            &mut self,
            frame: EthernetFrame,
            now: SimTime,
        ) -> Vec<(PortId, EthernetFrame)> {
            self.control_handled.push((now, frame.clone()));
            // Reply out of port 0 (packet-out).
            vec![(0, frame)]
        }
    }

    #[test]
    fn forwards_with_pipeline_latency() {
        let mut net = Network::new();
        let config = SwitchConfig {
            ports: 2,
            pipeline_latency: SimDuration::from_nanos(600),
            ..SwitchConfig::default()
        };
        let switch = SwitchNode::new(config, L2ForwardingProgram::two_port_wire()).unwrap();
        let sw = net.add_node(Box::new(switch));
        let sink = net.add_node(Box::new(CaptureSink::counting()));
        net.connect((sw, 1), (sink, 0), LinkParams::ideal())
            .unwrap();

        net.inject_frame(SimTime::from_micros(10), sw, 0, frame(100));
        net.run(100);

        let sink_node = net.node_as::<CaptureSink>(sink).unwrap();
        assert_eq!(sink_node.stats().frames_received, 1);
        assert_eq!(
            sink_node.stats().first_arrival.unwrap(),
            SimTime::from_micros(10) + SimDuration::from_nanos(600)
        );

        let sw_node = net.node_as::<SwitchNode<L2ForwardingProgram>>(sw).unwrap();
        assert_eq!(sw_node.stats().frames_in, 1);
        assert_eq!(sw_node.stats().frames_out, 1);
        assert_eq!(sw_node.stats().frames_dropped, 0);
        assert_eq!(sw_node.port_counters()[0].rx_frames, 1);
        assert_eq!(sw_node.port_counters()[1].tx_frames, 1);
        assert!(Node::name(sw_node).to_string().contains("l2-forwarding"));
    }

    #[test]
    fn dropped_frames_are_counted() {
        let mut net = Network::new();
        let switch = SwitchNode::with_default_config(L2ForwardingProgram::new(vec![None]));
        let sw = net.add_node(Box::new(switch));
        net.inject_frame(SimTime::ZERO, sw, 0, frame(64));
        net.run(10);
        let sw_node = net.node_as::<SwitchNode<L2ForwardingProgram>>(sw).unwrap();
        assert_eq!(sw_node.stats().frames_dropped, 1);
        assert_eq!(sw_node.stats().frames_out, 0);
    }

    #[test]
    fn digests_reach_the_control_plane_after_latency() {
        let mut net = Network::new();
        let config = SwitchConfig {
            ports: 2,
            control_plane_latency: SimDuration::from_millis(1),
            ..SwitchConfig::default()
        };
        let switch = SwitchNode::new(config, DigestingProgram::new()).unwrap();
        let sw = net.add_node(Box::new(switch));
        net.inject_frame(SimTime::from_micros(5), sw, 0, frame(10));
        net.run(100);

        let sw_node = net.node_as::<SwitchNode<DigestingProgram>>(sw).unwrap();
        assert_eq!(sw_node.stats().digests_emitted, 1);
        assert_eq!(sw_node.program().digests_handled.len(), 1);
        let (handled_at, digest) = &sw_node.program().digests_handled[0];
        assert_eq!(
            *handled_at,
            SimTime::from_micros(5) + SimDuration::from_millis(1)
        );
        assert_eq!(digest.data, vec![0xEE; 10]);
    }

    #[test]
    fn digest_queue_overflow_drops_digests() {
        let mut net = Network::new();
        let config = SwitchConfig {
            ports: 2,
            digest_queue_capacity: 2,
            control_plane_latency: SimDuration::from_millis(10),
            ..SwitchConfig::default()
        };
        let switch = SwitchNode::new(config, DigestingProgram::new()).unwrap();
        let sw = net.add_node(Box::new(switch));
        for i in 0..5u64 {
            net.inject_frame(SimTime(i), sw, 0, frame(10));
        }
        net.run(100);
        let sw_node = net.node_as::<SwitchNode<DigestingProgram>>(sw).unwrap();
        assert_eq!(sw_node.stats().digests_emitted, 2);
        assert_eq!(sw_node.stats().digests_dropped, 3);
        assert_eq!(sw_node.program().digests_handled.len(), 2);
    }

    #[test]
    fn cpu_port_frames_go_to_the_control_plane() {
        let mut net = Network::new();
        let config = SwitchConfig {
            ports: 4,
            cpu_ports: vec![3],
            control_plane_latency: SimDuration::from_micros(500),
            ..SwitchConfig::default()
        };
        let switch = SwitchNode::new(config, DigestingProgram::new()).unwrap();
        let sw = net.add_node(Box::new(switch));
        let sink = net.add_node(Box::new(CaptureSink::counting()));
        net.connect((sw, 0), (sink, 0), LinkParams::ideal())
            .unwrap();

        net.inject_frame(SimTime::ZERO, sw, 3, frame(20));
        net.run(100);

        let sw_node = net.node_as::<SwitchNode<DigestingProgram>>(sw).unwrap();
        assert_eq!(sw_node.stats().control_packets_in, 1);
        assert_eq!(
            sw_node.stats().frames_in,
            0,
            "control traffic bypasses the pipeline"
        );
        assert_eq!(sw_node.program().control_handled.len(), 1);
        assert_eq!(
            sw_node.program().control_handled[0].0,
            SimTime::from_micros(500)
        );
        // The packet-out reply reached the sink.
        assert_eq!(sw_node.stats().control_packets_out, 1);
        let sink_node = net.node_as::<CaptureSink>(sink).unwrap();
        assert_eq!(sink_node.stats().frames_received, 1);
    }

    #[test]
    fn throughput_is_not_degraded_by_processing() {
        // The key line-rate property: forwarding delay is a constant latency,
        // so back-to-back frames keep their spacing (no per-packet slowdown).
        let mut net = Network::new();
        let config = SwitchConfig {
            ports: 2,
            ..SwitchConfig::default()
        };
        let switch = SwitchNode::new(config, L2ForwardingProgram::two_port_wire()).unwrap();
        let sw = net.add_node(Box::new(switch));
        let sink = net.add_node(Box::new(CaptureSink::counting()));
        net.connect((sw, 1), (sink, 0), LinkParams::line_rate_100g())
            .unwrap();

        // Inject 1000 frames spaced at exactly the 1518-byte line-rate
        // interval (121.44 ns -> use 122 ns).
        let spacing = DataRate::LINE_RATE_100G.serialization_delay(1518);
        for i in 0..1000u64 {
            net.inject_frame(SimTime(i * spacing.as_nanos()), sw, 0, frame(1500));
        }
        net.run(100_000);
        let sink_node = net.node_as::<CaptureSink>(sink).unwrap();
        assert_eq!(sink_node.stats().frames_received, 1000);
        let rate = sink_node.stats().throughput();
        assert!(rate.as_gbps() > 95.0, "achieved {rate}");
    }

    #[test]
    fn config_validation() {
        assert!(SwitchConfig {
            ports: 0,
            ..SwitchConfig::default()
        }
        .validate()
        .is_err());
        assert!(SwitchConfig {
            ports: 4,
            cpu_ports: vec![4],
            ..SwitchConfig::default()
        }
        .validate()
        .is_err());
        assert!(SwitchConfig::default().validate().is_ok());
        assert!(SwitchNode::new(
            SwitchConfig {
                ports: 0,
                ..SwitchConfig::default()
            },
            L2ForwardingProgram::two_port_wire()
        )
        .is_err());
    }

    #[test]
    fn program_mut_allows_external_configuration() {
        let mut switch = SwitchNode::with_default_config(LearningProgramStub::default());
        switch.program_mut().value = 42;
        assert_eq!(switch.program().value, 42);
        assert_eq!(switch.config().ports, 32);
    }

    #[derive(Default)]
    struct LearningProgramStub {
        value: u32,
    }
    impl PipelineProgram for LearningProgramStub {
        fn ingress(&mut self, ctx: &mut PacketContext, _now: SimTime) {
            ctx.drop_packet();
        }
    }
}
