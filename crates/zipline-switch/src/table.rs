//! Exact-match match-action tables.
//!
//! ZipLine stores its basis ↔ identifier mappings "in regular match-action
//! tables and manage\[s\] them with the control plane", relying on two TNA
//! features in particular (sections 5 and 6):
//!
//! * **digests** notify the control plane of unknown bases (modelled by
//!   [`crate::digest::DigestQueue`]);
//! * **per-table-entry TTLs** ("idle timeouts") let the control plane
//!   implement an LRU policy over identifiers.
//!
//! [`ExactMatchTable`] models the data-plane view: lookups are exact-match on
//! a fixed-width key, hits refresh the entry's idle timer and bump a direct
//! counter, and the number of entries is bounded by what was allocated at
//! compile time. All mutations (insert/remove/expire) are control-plane
//! operations.

use crate::error::{Result, SwitchError};
use std::collections::HashMap;
use std::hash::Hash;
use zipline_net::time::{SimDuration, SimTime};

/// One installed table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry<A> {
    /// Action data returned on a hit.
    pub action: A,
    /// Time the entry was installed by the control plane.
    pub installed_at: SimTime,
    /// Time of the most recent data-plane hit (or installation).
    pub last_hit: SimTime,
    /// Number of data-plane hits.
    pub hit_count: u64,
}

/// An exact-match table with bounded capacity, per-entry idle tracking and
/// direct counters.
#[derive(Debug, Clone)]
pub struct ExactMatchTable<K, A> {
    name: String,
    max_entries: usize,
    entries: HashMap<K, TableEntry<A>>,
    /// Idle timeout after which `expired` reports an entry; `None` disables
    /// ageing.
    idle_timeout: Option<SimDuration>,
    /// Data-plane lookups that found no entry.
    misses: u64,
    /// Data-plane lookups that found an entry.
    hits: u64,
}

impl<K: Eq + Hash + Clone, A: Clone> ExactMatchTable<K, A> {
    /// Creates a table with the given capacity.
    pub fn new(name: impl Into<String>, max_entries: usize) -> Result<Self> {
        if max_entries == 0 {
            return Err(SwitchError::InvalidConfig("table with 0 entries".into()));
        }
        Ok(Self {
            name: name.into(),
            max_entries,
            entries: HashMap::new(),
            idle_timeout: None,
            misses: 0,
            hits: 0,
        })
    }

    /// Creates a table with per-entry idle timeout enabled (TNA's entry
    /// ageing feature).
    pub fn with_idle_timeout(
        name: impl Into<String>,
        max_entries: usize,
        idle_timeout: SimDuration,
    ) -> Result<Self> {
        let mut t = Self::new(name, max_entries)?;
        t.idle_timeout = Some(idle_timeout);
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of entries.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further entry can be installed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// Number of data-plane lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of data-plane lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Data-plane lookup: on a hit, refreshes the entry's idle timer, bumps
    /// its direct counter and returns a copy of the action data.
    pub fn lookup(&mut self, key: &K, now: SimTime) -> Option<A> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_hit = now;
                entry.hit_count += 1;
                self.hits += 1;
                Some(entry.action.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Data-plane lookup without touching idle state or counters (used by
    /// tests and diagnostics; real lookups should use [`lookup`](Self::lookup)).
    pub fn peek(&self, key: &K) -> Option<&A> {
        self.entries.get(key).map(|e| &e.action)
    }

    /// Control-plane insert. Fails when the table is full (the control plane
    /// must free an entry first, which is exactly the LRU management the
    /// paper describes) or when the key is already present.
    pub fn insert(&mut self, key: K, action: A, now: SimTime) -> Result<()> {
        if self.entries.contains_key(&key) {
            return Err(SwitchError::InvalidConfig(format!(
                "duplicate key in table {}",
                self.name
            )));
        }
        if self.is_full() {
            return Err(SwitchError::TableFull {
                table: self.name.clone(),
                max_entries: self.max_entries,
            });
        }
        self.entries.insert(
            key,
            TableEntry {
                action,
                installed_at: now,
                last_hit: now,
                hit_count: 0,
            },
        );
        Ok(())
    }

    /// Control-plane update of an existing entry's action data.
    pub fn modify(&mut self, key: &K, action: A) -> Result<()> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.action = action;
                Ok(())
            }
            None => Err(SwitchError::EntryNotFound(self.name.clone())),
        }
    }

    /// Control-plane removal.
    pub fn remove(&mut self, key: &K) -> Result<A> {
        self.entries
            .remove(key)
            .map(|e| e.action)
            .ok_or(SwitchError::EntryNotFound(self.name.clone()))
    }

    /// Control-plane read of a whole entry (action + metadata).
    pub fn entry(&self, key: &K) -> Option<&TableEntry<A>> {
        self.entries.get(key)
    }

    /// Keys whose idle time exceeds the configured timeout — what TNA
    /// delivers to the control plane as ageing notifications. Empty when no
    /// idle timeout is configured.
    pub fn expired(&self, now: SimTime) -> Vec<K> {
        let Some(timeout) = self.idle_timeout else {
            return Vec::new();
        };
        self.entries
            .iter()
            .filter(|(_, e)| now.since(e.last_hit) > timeout)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The key that has gone longest without a data-plane hit, if any —
    /// the victim the control plane's LRU policy picks when the identifier
    /// pool is exhausted.
    pub fn least_recently_hit(&self) -> Option<&K> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.last_hit)
            .map(|(k, _)| k)
    }

    /// Iterates over `(key, entry)` pairs in unspecified order
    /// (control-plane bulk read).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &TableEntry<A>)> {
        self.entries.iter()
    }

    /// Control-plane clear.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut table: ExactMatchTable<u32, String> = ExactMatchTable::new("map", 4).unwrap();
        table.insert(7, "seven".into(), t(0)).unwrap();
        assert_eq!(table.lookup(&7, t(1)), Some("seven".into()));
        assert_eq!(table.lookup(&8, t(1)), None);
        assert_eq!(table.hits(), 1);
        assert_eq!(table.misses(), 1);
        assert_eq!(table.remove(&7).unwrap(), "seven");
        assert!(table.remove(&7).is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut table: ExactMatchTable<u32, u32> = ExactMatchTable::new("small", 2).unwrap();
        table.insert(1, 10, t(0)).unwrap();
        table.insert(2, 20, t(0)).unwrap();
        assert!(table.is_full());
        let err = table.insert(3, 30, t(0)).unwrap_err();
        assert!(matches!(err, SwitchError::TableFull { .. }));
        // Freeing one entry allows the insert.
        table.remove(&1).unwrap();
        table.insert(3, 30, t(1)).unwrap();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn duplicate_keys_are_rejected_but_modify_works() {
        let mut table: ExactMatchTable<u32, u32> = ExactMatchTable::new("map", 4).unwrap();
        table.insert(1, 10, t(0)).unwrap();
        assert!(table.insert(1, 11, t(0)).is_err());
        table.modify(&1, 11).unwrap();
        assert_eq!(table.peek(&1), Some(&11));
        assert!(table.modify(&2, 20).is_err());
    }

    #[test]
    fn hit_counters_and_last_hit_update_only_on_lookup() {
        let mut table: ExactMatchTable<u32, u32> = ExactMatchTable::new("map", 4).unwrap();
        table.insert(1, 10, t(0)).unwrap();
        table.lookup(&1, t(5));
        table.lookup(&1, t(9));
        table.peek(&1);
        let entry = table.entry(&1).unwrap();
        assert_eq!(entry.hit_count, 2);
        assert_eq!(entry.last_hit, t(9));
        assert_eq!(entry.installed_at, t(0));
    }

    #[test]
    fn idle_timeout_reports_stale_entries() {
        let mut table: ExactMatchTable<u32, u32> =
            ExactMatchTable::with_idle_timeout("aged", 8, SimDuration::from_micros(100)).unwrap();
        table.insert(1, 10, t(0)).unwrap();
        table.insert(2, 20, t(0)).unwrap();
        // Keep entry 2 fresh.
        table.lookup(&2, t(90));
        let mut expired = table.expired(t(150));
        expired.sort_unstable();
        assert_eq!(expired, vec![1]);
        // Without ageing configured, nothing expires.
        let plain: ExactMatchTable<u32, u32> = ExactMatchTable::new("plain", 8).unwrap();
        assert!(plain.expired(t(1_000_000)).is_empty());
    }

    #[test]
    fn least_recently_hit_tracks_lru_victim() {
        let mut table: ExactMatchTable<u32, u32> = ExactMatchTable::new("map", 8).unwrap();
        assert!(table.least_recently_hit().is_none());
        table.insert(1, 10, t(0)).unwrap();
        table.insert(2, 20, t(1)).unwrap();
        table.insert(3, 30, t(2)).unwrap();
        table.lookup(&1, t(10));
        assert_eq!(table.least_recently_hit(), Some(&2));
        table.lookup(&2, t(11));
        assert_eq!(table.least_recently_hit(), Some(&3));
    }

    #[test]
    fn iter_and_clear() {
        let mut table: ExactMatchTable<u32, u32> = ExactMatchTable::new("map", 8).unwrap();
        for i in 0..5 {
            table.insert(i, i * 10, t(0)).unwrap();
        }
        assert_eq!(table.iter().count(), 5);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.max_entries(), 8);
        assert_eq!(table.name(), "map");
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(ExactMatchTable::<u32, u32>::new("bad", 0).is_err());
    }

    #[test]
    fn byte_vector_keys_work() {
        // The ZipLine basis table keys on the 247-bit basis serialized to
        // bytes; exercise the same key type here.
        let mut table: ExactMatchTable<Vec<u8>, u16> = ExactMatchTable::new("bases", 16).unwrap();
        let basis = vec![0xAB; 31];
        table.insert(basis.clone(), 7, t(0)).unwrap();
        assert_eq!(table.lookup(&basis, t(1)), Some(7));
        assert_eq!(table.lookup(&vec![0xCD; 31], t(1)), None);
    }
}
