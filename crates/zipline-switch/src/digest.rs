//! Digests from the data plane to the control plane.
//!
//! "Unknown bases are sent up by means of digests, as provided by P4₁₆/TNA"
//! (section 5). A digest is a small message the data plane emits without
//! stalling the packet; the control plane drains them asynchronously. The
//! hardware queue is finite — under a burst of unknown bases, digests are
//! dropped and the corresponding packets simply stay uncompressed until a
//! later packet's digest gets through, which is faithful to the real system
//! and exercised by the failure-injection tests.

use crate::error::{Result, SwitchError};
use std::collections::VecDeque;

/// A bounded queue of digest messages.
#[derive(Debug, Clone)]
pub struct DigestQueue<T> {
    name: String,
    capacity: usize,
    queue: VecDeque<T>,
    /// Digests dropped because the queue was full.
    dropped: u64,
    /// Digests successfully enqueued.
    enqueued: u64,
}

impl<T> DigestQueue<T> {
    /// Creates a queue holding at most `capacity` pending digests.
    pub fn new(name: impl Into<String>, capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(SwitchError::InvalidConfig(
                "digest queue of capacity 0".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            capacity,
            queue: VecDeque::new(),
            dropped: 0,
            enqueued: 0,
        })
    }

    /// Queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of pending digests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of digests currently pending.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no digest is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of digests dropped due to a full queue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of digests accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Data-plane push. Returns `true` when the digest was queued, `false`
    /// when it was dropped because the queue is full.
    pub fn push(&mut self, digest: T) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.queue.push_back(digest);
            self.enqueued += 1;
            true
        }
    }

    /// Control-plane pop (oldest first).
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Control-plane drain of every pending digest.
    pub fn drain(&mut self) -> Vec<T> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut q: DigestQueue<u32> = DigestQueue::new("bases", 4).unwrap();
        assert!(q.is_empty());
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.enqueued(), 2);
        assert_eq!(q.name(), "bases");
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q: DigestQueue<u32> = DigestQueue::new("bases", 2).unwrap();
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert!(!q.push(4));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 2);
        // Draining makes room again.
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.push(5));
        assert_eq!(q.dropped(), 2);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(DigestQueue::<u32>::new("bad", 0).is_err());
    }
}
