//! Stateful register arrays.
//!
//! Tofino registers are fixed-size arrays of small cells that the data plane
//! can read-modify-write — once per packet, at a single index, in constant
//! time. The paper's original design kept the basis-ID mappings in registers
//! for instantaneous learning before moving them to match-action tables
//! managed by the control plane (section 6); registers remain useful for
//! counters, sequence numbers and the ablation that re-creates that original
//! design.

use crate::error::{Result, SwitchError};

/// A register array of `u64` cells.
///
/// The update closure passed to [`RegisterArray::read_modify_write`] mirrors
/// a Tofino stateful ALU program: it sees the old value and produces the new
/// value plus an output forwarded to the packet.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    name: String,
    cells: Vec<u64>,
    /// Number of data-plane accesses, for diagnostics.
    accesses: u64,
}

impl RegisterArray {
    /// Creates an array of `size` zero-initialized cells.
    pub fn new(name: impl Into<String>, size: usize) -> Result<Self> {
        if size == 0 {
            return Err(SwitchError::InvalidConfig(
                "register array of size 0".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            cells: vec![0; size],
            accesses: 0,
        })
    }

    /// Name of the array.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Number of data-plane accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Reads one cell.
    pub fn read(&mut self, index: usize) -> Result<u64> {
        self.check(index)?;
        self.accesses += 1;
        Ok(self.cells[index])
    }

    /// Writes one cell.
    pub fn write(&mut self, index: usize, value: u64) -> Result<()> {
        self.check(index)?;
        self.accesses += 1;
        self.cells[index] = value;
        Ok(())
    }

    /// Atomically (from the pipeline's point of view) updates one cell and
    /// returns a value to the packet, like a stateful ALU.
    pub fn read_modify_write<F>(&mut self, index: usize, f: F) -> Result<u64>
    where
        F: FnOnce(u64) -> (u64, u64),
    {
        self.check(index)?;
        self.accesses += 1;
        let (new_value, output) = f(self.cells[index]);
        self.cells[index] = new_value;
        Ok(output)
    }

    /// Control-plane bulk read (not counted as data-plane access).
    pub fn snapshot(&self) -> &[u64] {
        &self.cells
    }

    /// Control-plane reset of every cell.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
    }

    fn check(&self, index: usize) -> Result<()> {
        if index >= self.cells.len() {
            Err(SwitchError::IndexOutOfRange {
                index,
                size: self.cells.len(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut r = RegisterArray::new("seq", 8).unwrap();
        assert_eq!(r.size(), 8);
        assert_eq!(r.read(3).unwrap(), 0);
        r.write(3, 42).unwrap();
        assert_eq!(r.read(3).unwrap(), 42);
        assert_eq!(r.name(), "seq");
        assert_eq!(r.accesses(), 3);
    }

    #[test]
    fn read_modify_write_returns_alu_output() {
        let mut r = RegisterArray::new("counter", 4).unwrap();
        // Increment and return the previous value.
        let out = r.read_modify_write(0, |old| (old + 1, old)).unwrap();
        assert_eq!(out, 0);
        let out = r.read_modify_write(0, |old| (old + 1, old)).unwrap();
        assert_eq!(out, 1);
        assert_eq!(r.read(0).unwrap(), 2);
    }

    #[test]
    fn out_of_range_indices_error() {
        let mut r = RegisterArray::new("x", 2).unwrap();
        assert!(matches!(
            r.read(2),
            Err(SwitchError::IndexOutOfRange { .. })
        ));
        assert!(r.write(5, 1).is_err());
        assert!(r.read_modify_write(9, |v| (v, v)).is_err());
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(RegisterArray::new("empty", 0).is_err());
    }

    #[test]
    fn snapshot_and_clear_are_control_plane_operations() {
        let mut r = RegisterArray::new("x", 3).unwrap();
        r.write(1, 7).unwrap();
        assert_eq!(r.snapshot(), &[0, 7, 0]);
        let accesses_before = r.accesses();
        r.clear();
        assert_eq!(r.snapshot(), &[0, 0, 0]);
        assert_eq!(
            r.accesses(),
            accesses_before,
            "control-plane ops are not counted"
        );
    }
}
