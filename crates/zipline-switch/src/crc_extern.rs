//! The CRC extern of the data plane.
//!
//! Tofino exposes hash/CRC units that P4 programs configure with a custom
//! polynomial; ZipLine "extensively relies on this component to efficiently
//! implement the key steps of the GD algorithm, namely the computation of
//! syndromes" (section 5). This wrapper exists so the switch programs use an
//! interface shaped like the hardware unit — a named engine configured once
//! with a `CRCPolynomial`-style parameter, computing over whole byte
//! containers — rather than calling the math library directly, and so the
//! per-switch resource inventory can report how many CRC units a program
//! uses (a real constraint on the ASIC).

use crate::error::{Result, SwitchError};
use zipline_gd::bits::BitVec;
use zipline_gd::crc::{CrcEngine, CrcSpec};
use zipline_gd::poly::Gf2Poly;

/// A hardware CRC unit configured with one polynomial.
#[derive(Debug, Clone)]
pub struct CrcExtern {
    name: String,
    engine: CrcEngine,
    /// Number of invocations, for resource/diagnostic reporting.
    invocations: u64,
}

impl CrcExtern {
    /// Configures a CRC unit from its width and the polynomial parameter as
    /// written in Table 1 of the paper (the generator without its leading
    /// `x^m` term) — the same value a P4 `CRCPolynomial<>` instantiation
    /// takes.
    pub fn new(name: impl Into<String>, width: u32, poly_parameter: u64) -> Result<Self> {
        let spec = CrcSpec::new(width, poly_parameter)
            .map_err(|e| SwitchError::InvalidConfig(format!("CRC spec: {e}")))?;
        Ok(Self {
            name: name.into(),
            engine: CrcEngine::new(spec),
            invocations: 0,
        })
    }

    /// Configures a CRC unit from a full generator polynomial.
    pub fn from_generator(name: impl Into<String>, generator: Gf2Poly) -> Result<Self> {
        let spec = CrcSpec::from_full_poly(generator)
            .map_err(|e| SwitchError::InvalidConfig(format!("CRC spec: {e}")))?;
        Ok(Self {
            name: name.into(),
            engine: CrcEngine::new(spec),
            invocations: 0,
        })
    }

    /// Name of the unit (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CRC width in bits.
    pub fn width(&self) -> u32 {
        self.engine.width()
    }

    /// Number of times the unit has been invoked.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Computes the CRC of a whole byte container (the usual data-plane
    /// case: the hash unit consumes header/metadata containers).
    pub fn hash_bytes(&mut self, data: &[u8]) -> u64 {
        self.invocations += 1;
        self.engine.compute_bytes(data)
    }

    /// Computes the CRC of an arbitrary bit string (used where the paper's
    /// fields are not byte aligned). Word-parallel via
    /// [`CrcEngine::checksum_words`].
    pub fn hash_bits(&mut self, data: &BitVec) -> u64 {
        self.invocations += 1;
        self.engine.compute_bits(data)
    }

    /// Computes the CRC of the bit range `[start, end)` of `data` without
    /// materialising the sub-sequence — how the encode program hashes the
    /// Hamming block sitting inside a parsed payload. On the hardware target
    /// this is just the hash unit consuming a field slice; here it maps to
    /// [`CrcEngine::checksum_bit_range`].
    pub fn hash_bit_range(&mut self, data: &BitVec, start: usize, end: usize) -> u64 {
        self.invocations += 1;
        self.engine.checksum_bit_range(data, start, end)
    }

    /// Computes the CRC of a message given as packed words (word-parallel
    /// fast path; see [`CrcEngine::checksum_words`] for the word order).
    pub fn hash_words(&mut self, words: &[u64], bit_len: usize) -> u64 {
        self.invocations += 1;
        self.engine.checksum_words(words, bit_len)
    }

    /// Access to the underlying engine (e.g. for building syndrome lookup
    /// tables at program load time, which is control-plane work).
    pub fn engine(&self) -> &CrcEngine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc3_unit_matches_paper_table2() {
        // Same check as Table 2 (b), but exercised through the extern
        // interface the data plane uses.
        let mut unit = CrcExtern::new("syndrome", 3, 0x3).unwrap();
        assert_eq!(unit.width(), 3);
        let expected = [
            (0b0000001u64, 0b001u64),
            (0b0000010, 0b010),
            (0b0000100, 0b100),
            (0b0001000, 0b011),
            (0b0010000, 0b110),
            (0b0100000, 0b111),
            (0b1000000, 0b101),
        ];
        for (seq, crc) in expected {
            let bits = BitVec::from_u64(seq, 7);
            assert_eq!(unit.hash_bits(&bits), crc, "{seq:07b}");
        }
        assert_eq!(unit.invocations(), 7);
    }

    #[test]
    fn crc8_unit_from_table1_parameter() {
        // m = 8 row of Table 1: parameter 0x1D.
        let mut unit = CrcExtern::new("crc8", 8, 0x1D).unwrap();
        let data = [0u8; 32];
        assert_eq!(unit.hash_bytes(&data), 0);
        let data = [0xFFu8; 32];
        let h = unit.hash_bytes(&data);
        assert!(h < 256);
        assert_eq!(unit.invocations(), 2);
        assert_eq!(unit.name(), "crc8");
    }

    #[test]
    fn word_and_range_paths_match_the_bit_path() {
        let mut unit = CrcExtern::new("syndrome", 8, 0x1D).unwrap();
        let bytes: Vec<u8> = (0..33u8)
            .map(|i| i.wrapping_mul(73).wrapping_add(5))
            .collect();
        let bits = BitVec::from_bytes(&bytes);
        let reference = unit.hash_bits(&bits);
        assert_eq!(unit.hash_words(bits.words(), bits.len()), reference);
        assert_eq!(unit.hash_bit_range(&bits, 0, bits.len()), reference);
        // A strict sub-range equals hashing the materialised slice.
        let sliced = bits.slice(1..256);
        let expected = unit.hash_bits(&sliced);
        assert_eq!(unit.hash_bit_range(&bits, 1, 256), expected);
        assert_eq!(unit.invocations(), 5);
    }

    #[test]
    fn from_generator_matches_parameter_construction() {
        let g = Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]);
        let mut a = CrcExtern::from_generator("a", g).unwrap();
        let mut b = CrcExtern::new("b", 8, 0x1D).unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        assert_eq!(a.hash_bytes(&data), b.hash_bytes(&data));
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        assert!(CrcExtern::new("bad", 0, 0).is_err());
        assert!(CrcExtern::new("bad", 40, 0).is_err());
        // Parameter with bits above the width.
        assert!(CrcExtern::new("bad", 3, 0x9).is_err());
        assert!(CrcExtern::from_generator("bad", Gf2Poly::ONE).is_err());
    }
}
