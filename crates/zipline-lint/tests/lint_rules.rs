//! Expected-diagnostic tests over the fixture workspace in
//! `tests/fixtures/ws/` — every rule has at least one firing case, one
//! clean case and one allowed case — plus a generated-workspace test for
//! L003's reverse direction and an exit-code test for the CLI.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use zipline_lint::Finding;

fn fixture_findings() -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    zipline_lint::run(&root).expect("fixture workspace scans")
}

/// `(path, line, rule)` triples of every finding for one rule.
fn sites(findings: &[Finding], rule: &str) -> Vec<(String, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

const WIRE: &str = "crates/zipline-server/src/wire.rs";
const PERSIST: &str = "crates/zipline-engine/src/persist.rs";
const GROUPS: &str = "crates/zipline-bench/benches/groups.rs";
const MISC: &str = "crates/zipline-misc/src/lib.rs";

#[test]
fn l001_flags_panic_sites_and_honors_tests_and_allows() {
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "L001"),
        vec![
            (WIRE.into(), 17), // payload[0]
            (WIRE.into(), 25), // .unwrap()
            (WIRE.into(), 26), // .expect()
            (WIRE.into(), 28), // panic!
        ],
        "allowed site (line 31) and test-scope unwrap must not fire"
    );
}

#[test]
fn l002_reports_missing_facets_per_declared_kind() {
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "L002"),
        vec![
            (PERSIST.into(), 5), // KIND_RECORD: no `==`/match decode
            (WIRE.into(), 6),    // KIND_BETA: no decode, no test
            (WIRE.into(), 7),    // KIND_GAMMA: nothing at all
        ],
        "KIND_ALPHA/KIND_HEADER are fully covered; KIND_RESERVED is allowed"
    );
    let beta = findings
        .iter()
        .find(|f| f.rule == "L002" && f.line == 6)
        .expect("KIND_BETA finding");
    assert!(beta.message.contains("decode"), "{}", beta.message);
    assert!(beta.message.contains("test"), "{}", beta.message);
    assert!(
        !beta.message.contains("encode site"),
        "KIND_BETA is encoded: {}",
        beta.message
    );
}

#[test]
fn l003_flags_untracked_and_dynamic_groups() {
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "L003"),
        vec![
            (GROUPS.into(), 6),  // untracked_experiment
            (GROUPS.into(), 10), // benchmark_group(name)
        ],
        "tracked group (line 5) and allowed scratch group (line 8) must not fire"
    );
}

#[test]
fn l004_enforces_removal_deadlines() {
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "L004"),
        vec![
            (MISC.into(), 6),  // remove in 0.5.0, workspace at 0.9.0
            (MISC.into(), 12), // note without a removal version
            (MISC.into(), 15), // no note at all
        ],
        "future deadline (2.0.0) and allowed shim must not fire"
    );
}

#[test]
fn l005_requires_non_exhaustive_display_and_error() {
    let findings = fixture_findings();
    let bad: Vec<_> = findings.iter().filter(|f| f.rule == "L005").collect();
    assert_eq!(bad.len(), 3, "{bad:?}");
    assert!(bad.iter().all(|f| f.path == MISC && f.line == 35));
    let messages: BTreeSet<_> = bad.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("non_exhaustive")));
    assert!(messages.iter().any(|m| m.contains("Display")));
    assert!(messages.iter().any(|m| m.contains("std::error::Error")));
}

#[test]
fn l006_requires_entry_encode_decode_and_test_per_codec_id() {
    const REGISTRY: &str = "crates/zipline-engine/src/registry.rs";
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "L006"),
        vec![
            (REGISTRY.into(), 7), // CODEC_NOENTRY: never registered
            (REGISTRY.into(), 8), // CODEC_BARE: nothing at all
        ],
        "CODEC_FULL is fully covered; CODEC_RESERVED is allowed"
    );
    let noentry = findings
        .iter()
        .find(|f| f.rule == "L006" && f.line == 7)
        .expect("CODEC_NOENTRY finding");
    assert!(
        noentry.message.contains("registry entry"),
        "{}",
        noentry.message
    );
    assert!(
        !noentry.message.contains("encode site") && !noentry.message.contains("decode"),
        "CODEC_NOENTRY is encoded and decoded: {}",
        noentry.message
    );
    let bare = findings
        .iter()
        .find(|f| f.rule == "L006" && f.line == 8)
        .expect("CODEC_BARE finding");
    for facet in ["registry entry", "encode site", "decode", "test"] {
        assert!(bare.message.contains(facet), "{}", bare.message);
    }
}

#[test]
fn malformed_allows_are_findings_not_silent_noops() {
    let findings = fixture_findings();
    assert_eq!(
        sites(&findings, "BAD-ALLOW"),
        vec![
            (MISC.into(), 44), // no justification
            (MISC.into(), 47), // unknown rule L999
        ]
    );
}

#[test]
fn fixture_total_is_exactly_the_cases_above() {
    // A new rule or a detection change must update the expectations, not
    // slip extra findings past them.
    assert_eq!(fixture_findings().len(), 19);
}

/// L003's reverse direction: a group in the tracked set with no
/// `benchmark_group` registration. The workspace is generated so the
/// expectations track the real `TRACKED_GROUPS` as it grows.
#[test]
fn l003_flags_tracked_groups_with_no_registration() {
    let tracked = zipline_bench::regression::TRACKED_GROUPS;
    let (kept, dropped) = tracked.split_at(tracked.len() - 1);
    let dropped = dropped.first().expect("tracked set is non-empty");

    let root = std::env::temp_dir().join(format!("zipline-lint-reverse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let bench_dir = root.join("crates/zipline-bench/benches");
    let src_dir = root.join("crates/zipline-bench/src");
    std::fs::create_dir_all(&bench_dir).unwrap();
    std::fs::create_dir_all(&src_dir).unwrap();

    let mut regression = String::from("pub const TRACKED_GROUPS: &[&str] = &[\n");
    for group in tracked {
        regression.push_str(&format!("    \"{group}\",\n"));
    }
    regression.push_str("];\n");
    std::fs::write(src_dir.join("regression.rs"), regression).unwrap();

    let mut bench = String::from("fn bench(c: &mut Criterion) {\n");
    for group in kept {
        bench.push_str(&format!(
            "    let mut g = c.benchmark_group(\"{group}\");\n"
        ));
    }
    bench.push_str("}\n");
    std::fs::write(bench_dir.join("all_but_one.rs"), bench).unwrap();

    let findings = zipline_lint::run(&root).expect("generated workspace scans");
    let l003 = sites(&findings, "L003");
    assert_eq!(l003.len(), 1, "{findings:?}");
    let (path, _) = &l003[0];
    assert_eq!(path, "crates/zipline-bench/src/regression.rs");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "L003" && f.message.contains(dropped)),
        "finding must name the unregistered group `{dropped}`: {findings:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// The CLI contract CI relies on: exit 1 with `path:line:` diagnostics on
/// a dirty tree, exit 0 on a clean one.
#[test]
fn cli_exit_codes_and_output_shape() {
    let bin = env!("CARGO_BIN_EXE_zipline-lint");
    let fixture: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");

    let dirty = std::process::Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&fixture)
        .output()
        .expect("run zipline-lint");
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(
        stdout.contains("crates/zipline-server/src/wire.rs:17: L001:"),
        "diagnostics are file:line: RULE: message — got:\n{stdout}"
    );

    let live_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let clean = std::process::Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&live_root)
        .output()
        .expect("run zipline-lint");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "live tree must lint clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
