//! Fixture for L006: every codec id constant must be registered,
//! encoded, decoded and tested.

pub struct CodecId(pub u8);

pub const CODEC_FULL: CodecId = CodecId(1);
pub const CODEC_NOENTRY: CodecId = CodecId(2);
pub const CODEC_BARE: CodecId = CodecId(3);
// zipline-lint: allow(L006): reserved id, wired up in the next PR
pub const CODEC_RESERVED: CodecId = CodecId(9);

pub fn standard(registry: &mut Registry) {
    registry.entry(CODEC_FULL, "full");
}

pub fn emit(out: &mut Vec<u8>) {
    out.push(CODEC_FULL.0);
    out.push(CODEC_NOENTRY.0);
}

pub fn parse(id: u8) -> bool {
    id == CODEC_FULL.0 || id == CODEC_NOENTRY.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn ids_are_distinct() {
        assert!(super::CODEC_FULL.0 != super::CODEC_NOENTRY.0);
    }
}
