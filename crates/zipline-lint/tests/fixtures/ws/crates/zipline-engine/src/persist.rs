//! Fixture for L002 with comparison-style decode sites (the persist.rs
//! idiom: header kinds are matched with `==`, not `match` arms).

const KIND_HEADER: u8 = 0x10;
const KIND_RECORD: u8 = 0x11;

pub fn write_logs(out: &mut Vec<u8>) {
    out.push(KIND_HEADER);
    out.push(KIND_RECORD);
}

pub fn is_header(kind: u8) -> bool {
    kind == KIND_HEADER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_detected() {
        assert!(is_header(KIND_HEADER));
        let _ = KIND_RECORD;
    }
}
