//! Fixture for L004 (deprecation expiry), L005 (error-enum hygiene) and
//! allow-directive hygiene. The fixture workspace is at version 0.9.0.

use std::fmt;

#[deprecated(note = "use new_thing instead; remove in 0.5.0")]
pub fn expired_thing() {}

#[deprecated(note = "use newer_thing instead; remove in 2.0.0")]
pub fn aging_thing() {}

#[deprecated(note = "just do not call this")]
pub fn versionless_thing() {}

#[deprecated]
pub fn noteless_thing() {}

// zipline-lint: allow(L004): removal is blocked on the v2 migration tooling
#[deprecated(note = "remove in 0.1.0")]
pub fn pinned_thing() {}

#[non_exhaustive]
pub enum GoodError {
    Broken,
}

impl fmt::Display for GoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "broken")
    }
}

impl std::error::Error for GoodError {}

pub enum BadError {
    Oops,
}

// zipline-lint: allow(L005): crate-internal failure type, replaced by the error rework
pub enum SidecarError {
    Hmm,
}

// zipline-lint: allow(L001)
pub fn missing_justification() {}

// zipline-lint: allow(L999): this rule does not exist
pub fn unknown_rule() {}
