//! Fixture for L003 forward checks: tracked, untracked, allowed and
//! dynamically-named bench groups.

fn bench(c: &mut Criterion) {
    let mut tracked = c.benchmark_group("engine_scaling");
    let mut untracked = c.benchmark_group("untracked_experiment");
    // zipline-lint: allow(L003): scratch bench for local profiling only
    let mut scratch = c.benchmark_group("scratch_local");
    let name = format!("dynamic_{}", 1);
    let mut dynamic = c.benchmark_group(name);
}
