//! Fixture for L001 (panic paths) and L002 (record-kind exhaustiveness),
//! mirroring the real wire.rs layout. Never compiled — consumed by the
//! lint's integration tests, which assert on exact lines below.

const KIND_ALPHA: u8 = 0x01;
const KIND_BETA: u8 = 0x02;
const KIND_GAMMA: u8 = 0x03;
// zipline-lint: allow(L002): reserved for the replication protocol, lands with it
const KIND_RESERVED: u8 = 0x7F;

pub fn encode(out: &mut Vec<u8>) {
    out.push(KIND_ALPHA);
    out.push(KIND_BETA);
}

pub fn decode(payload: &[u8]) -> u8 {
    let kind = payload[0];
    match kind {
        KIND_ALPHA => payload.len() as u8,
        other => other,
    }
}

pub fn helpers(buf: &[u8]) -> u32 {
    let a = buf.first().unwrap();
    let b = buf.get(1).expect("second byte");
    if *a > *b {
        panic!("inverted");
    }
    // zipline-lint: allow(L001): length checked by the caller's framing contract
    let c = buf.get(2).unwrap();
    (*a + *b + *c) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_roundtrips() {
        let mut out = Vec::new();
        encode(&mut out);
        assert_eq!(decode(&out), KIND_ALPHA);
        let first = out.first().unwrap();
        assert_eq!(*first, KIND_ALPHA);
    }
}
