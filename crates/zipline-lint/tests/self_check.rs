//! The lint eats its own dog food: the live workspace must be clean, so a
//! violation introduced anywhere in the tree fails `cargo test` even
//! before CI's dedicated lint step runs.

use std::path::Path;

#[test]
fn live_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = zipline_lint::run(&root).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "the live tree must lint clean; fix or allow (with justification):\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
