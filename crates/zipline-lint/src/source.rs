//! Per-file analysis state: the lexed token stream plus the two structural
//! overlays every rule needs — which lines are *test code* (skipped by the
//! panic rules, counted by the exhaustiveness rule) and which lines carry
//! an `allow` opt-out directive.
//!
//! # Test scope
//!
//! A region is test code when it is the item following a `#[cfg(test)]`
//! attribute (typically `mod tests { … }`, but any item form works) or a
//! `mod tests { … }` block without the attribute. Regions are computed by
//! brace-matching over the token stream — strings and comments are already
//! out of the way, so `{`/`}` counting is exact.
//!
//! # Allow directives
//!
//! ```text
//! // zipline-lint: allow(L001): CRC-32 spec is a compile-time constant
//! ```
//!
//! The justification after the final colon is **required**: an allow
//! without one is itself a finding (`BAD-ALLOW`). A directive suppresses
//! findings of the named rule on its own line (trailing-comment style) and
//! on the following line (line-above style).

use crate::lexer::{lex, Comment, Lexed, Tok};

/// One source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (`crates/…/src/x.rs`).
    pub rel_path: String,
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
    /// Inclusive `(start_line, end_line)` spans of test code.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed allow directives.
    pub allows: Vec<AllowDirective>,
}

/// A parsed `// zipline-lint: allow(RULE): why` comment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowDirective {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule code being allowed (`L001` … `L005`).
    pub rule: String,
    /// Justification text after the colon; empty means malformed.
    pub justification: String,
}

impl SourceFile {
    /// Lexes and annotates one file.
    pub fn parse(rel_path: impl Into<String>, source: &str) -> Self {
        let Lexed { tokens, comments } = lex(source);
        let test_ranges = compute_test_ranges(&tokens);
        let allows = parse_allows(&comments);
        Self {
            rel_path: rel_path.into(),
            tokens,
            comments,
            test_ranges,
            allows,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` item or `mod tests`.
    pub fn in_test_scope(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// True when a well-formed allow for `rule` covers `line` (the
    /// directive's own line for trailing comments, or the line directly
    /// below it for line-above comments).
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && !a.justification.is_empty() && (a.line == line || a.line + 1 == line)
        })
    }

    /// Allow directives missing their required justification.
    pub fn malformed_allows(&self) -> impl Iterator<Item = &AllowDirective> {
        self.allows.iter().filter(|a| a.justification.is_empty())
    }
}

/// Finds the spans of test items; see the module docs for the definition.
fn compute_test_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let start_line = tokens[i].line;
        // `#[cfg(test)]` — seven tokens exactly.
        let is_cfg_test = tokens[i].kind.is_punct('#')
            && matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct('['))
            && matches!(tokens.get(i + 2), Some(t) if t.kind.ident() == Some("cfg"))
            && matches!(tokens.get(i + 3), Some(t) if t.kind.is_punct('('))
            && matches!(tokens.get(i + 4), Some(t) if t.kind.ident() == Some("test"))
            && matches!(tokens.get(i + 5), Some(t) if t.kind.is_punct(')'))
            && matches!(tokens.get(i + 6), Some(t) if t.kind.is_punct(']'));
        // `mod tests` without the attribute.
        let is_mod_tests = tokens[i].kind.ident() == Some("mod")
            && matches!(tokens.get(i + 1), Some(t) if t.kind.ident() == Some("tests"));

        if is_cfg_test {
            // Skip this attribute and any further attributes, then span the
            // item that follows (to its matching `}` or terminating `;`).
            let mut j = i + 7;
            while matches!(tokens.get(j), Some(t) if t.kind.is_punct('#')) {
                j = skip_attribute(tokens, j);
            }
            if let Some((end_line, next)) = span_item(tokens, j) {
                ranges.push((start_line, end_line));
                i = next;
                continue;
            }
        } else if is_mod_tests {
            if let Some((end_line, next)) = span_item(tokens, i + 2) {
                ranges.push((start_line, end_line));
                i = next;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Skips one `#[…]` attribute starting at the `#`; returns the index past
/// its closing `]`.
fn skip_attribute(tokens: &[Tok], at: usize) -> usize {
    let mut j = at + 1; // past '#'
    if !matches!(tokens.get(j), Some(t) if t.kind.is_punct('[')) {
        return at + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].kind.is_punct('[') {
            depth += 1;
        } else if tokens[j].kind.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// From the first token of an item, finds its end: the line of the
/// matching `}` of its first brace block, or of a `;` reached before any
/// `{`. Returns `(end_line, index past the item)`.
fn span_item(tokens: &[Tok], start: usize) -> Option<(u32, usize)> {
    let mut j = start;
    while j < tokens.len() {
        if tokens[j].kind.is_punct(';') {
            return Some((tokens[j].line, j + 1));
        }
        if tokens[j].kind.is_punct('{') {
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].kind.is_punct('{') {
                    depth += 1;
                } else if tokens[j].kind.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((tokens[j].line, j + 1));
                    }
                }
                j += 1;
            }
            // Unbalanced braces: treat the rest of the file as the item.
            return Some((tokens.last()?.line, tokens.len()));
        }
        j += 1;
    }
    None
}

/// Extracts allow directives from the comment stream. Doc comments
/// (`///`, `//!`, `/**`, `/*!`) are excluded: documentation may quote the
/// directive syntax without enacting it.
fn parse_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut allows = Vec::new();
    for comment in comments {
        if matches!(comment.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(at) = comment.text.find("zipline-lint:") else {
            continue;
        };
        let rest = comment.text[at + "zipline-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = &rest[close + 1..];
        let justification = tail
            .strip_prefix(':')
            .map(|j| j.trim().to_string())
            .unwrap_or_default();
        allows.push(AllowDirective {
            line: comment.line,
            rule,
            justification,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_and_mod_tests_regions_are_spanned() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
mod tests {
    fn more() {}
}
fn live_again() {}
";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.test_ranges, vec![(2, 5), (6, 8)]);
        assert!(!file.in_test_scope(1));
        assert!(file.in_test_scope(4));
        assert!(file.in_test_scope(7));
        assert!(!file.in_test_scope(9));
    }

    #[test]
    fn cfg_test_with_stacked_attributes_spans_the_item() {
        let src = "\
#[cfg(test)]
#[allow(dead_code)]
fn only_in_tests() {
    body();
}
fn live() {}
";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.test_ranges, vec![(1, 5)]);
        assert!(!file.in_test_scope(6));
    }

    #[test]
    fn allow_directives_parse_and_require_justification() {
        let src = "\
// zipline-lint: allow(L001): CRC spec is a compile-time constant
let a = x.unwrap();
let b = y.unwrap(); // zipline-lint: allow(L001): checked two lines up
// zipline-lint: allow(L003):
let c = 1;
/// docs quoting `zipline-lint: allow(L002): example` are not directives
let d = 2;
";
        let file = SourceFile::parse("x.rs", src);
        assert!(file.is_allowed("L001", 2), "line-above form");
        assert!(file.is_allowed("L001", 3), "trailing form");
        assert!(!file.is_allowed("L001", 5), "directives do not leak");
        assert!(!file.is_allowed("L003", 5), "empty justification is void");
        assert!(
            !file.is_allowed("L002", 7),
            "doc comments are not directives"
        );
        assert_eq!(file.malformed_allows().count(), 1);
    }

    #[test]
    fn braces_inside_strings_do_not_break_spans() {
        let src = "\
#[cfg(test)]
mod tests {
    const S: &str = \"}}}{{{\";
}
fn live() {}
";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.test_ranges, vec![(1, 4)]);
        assert!(!file.in_test_scope(5));
    }
}
