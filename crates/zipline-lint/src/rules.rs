//! The six workspace-invariant rules. Each is a pure function from the
//! lexed [`Workspace`] to a list of [`Finding`]s; `run_all` applies every
//! rule plus the allow-directive hygiene pass.
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | no panic paths in socket/disk byte-handling code |
//! | L002 | every record-kind constant has an encode site, a decode site and test coverage |
//! | L003 | every criterion bench group is in the CI gate's tracked set (or explicitly allowed) |
//! | L004 | `#[deprecated]` items name a removal version that has not been reached |
//! | L005 | public error enums are `#[non_exhaustive]` and implement `Display` + `Error` |
//! | L006 | every `CODEC_*` codec id has a registry entry, an encode site, a decode match and test coverage |
//!
//! Every rule honors `// zipline-lint: allow(CODE): justification` on the
//! finding's line or the line above; see [`crate::source`].

use std::fmt;

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::workspace::{parse_version, version_at_least, Workspace};

/// One diagnostic: rule code, location and message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule code (`L001` … `L006`, or `BAD-ALLOW`).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

fn finding(file: &SourceFile, line: u32, rule: &str, message: impl Into<String>) -> Finding {
    Finding {
        path: file.rel_path.clone(),
        line,
        rule: rule.to_string(),
        message: message.into(),
    }
}

/// Rule codes an allow directive may name.
pub const KNOWN_RULES: &[&str] = &["L001", "L002", "L003", "L004", "L005", "L006"];

/// Runs every rule and the allow-hygiene pass; findings come back sorted
/// by path, line, rule.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(allow_hygiene(ws));
    findings.extend(l001_no_panic_paths(ws));
    findings.extend(l002_record_kind_exhaustiveness(ws));
    findings.extend(l003_tracked_bench_sync(ws));
    findings.extend(l004_deprecation_expiry(ws));
    findings.extend(l005_error_enum_hygiene(ws));
    findings.extend(l006_codec_id_exhaustiveness(ws));
    findings.sort();
    findings
}

/// Allow directives are themselves checked: a missing justification or an
/// unknown rule code makes the directive void *and* a finding — a silent
/// no-op allow is worse than no allow.
fn allow_hygiene(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for allow in &file.allows {
            if !KNOWN_RULES.contains(&allow.rule.as_str()) {
                findings.push(finding(
                    file,
                    allow.line,
                    "BAD-ALLOW",
                    format!(
                        "allow directive names unknown rule `{}` (known: {})",
                        allow.rule,
                        KNOWN_RULES.join(", ")
                    ),
                ));
            } else if allow.justification.is_empty() {
                findings.push(finding(
                    file,
                    allow.line,
                    "BAD-ALLOW",
                    format!(
                        "allow directive for {} is missing its required justification \
                         (`// zipline-lint: allow({}): <why>`)",
                        allow.rule, allow.rule
                    ),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L001 — no-panic-paths
// ---------------------------------------------------------------------------

/// Files (by workspace-relative prefix) whose non-test code must be free
/// of panic paths: everything that parses bytes from a socket or disk.
pub const L001_SCOPE: &[&str] = &[
    "crates/zipline-server/src",
    "crates/zipline-engine/src/persist.rs",
];

const L001: &str = "L001";

fn l001_in_scope(rel_path: &str) -> bool {
    L001_SCOPE
        .iter()
        .any(|prefix| rel_path == *prefix || rel_path.starts_with(&format!("{prefix}/")))
}

fn l001_no_panic_paths(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.files.iter().filter(|f| l001_in_scope(&f.rel_path)) {
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if file.in_test_scope(tok.line) {
                continue;
            }
            let mut report = |message: String| {
                if !file.is_allowed(L001, tok.line) {
                    findings.push(finding(file, tok.line, L001, message));
                }
            };
            match &tok.kind {
                TokKind::Ident(name) if name == "unwrap" || name == "expect" => {
                    let is_method_call = i > 0
                        && toks[i - 1].kind.is_punct('.')
                        && matches!(toks.get(i + 1), Some(t) if t.kind.is_punct('('));
                    if is_method_call {
                        report(format!(
                            "`.{name}()` in a panic-free path — byte-handling code must \
                             return a typed error instead of panicking"
                        ));
                    }
                }
                TokKind::Ident(name)
                    if matches!(
                        name.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) =>
                {
                    let is_macro = matches!(toks.get(i + 1), Some(t) if t.kind.is_punct('!'));
                    if is_macro {
                        report(format!(
                            "`{name}!` in a panic-free path — byte-handling code must \
                             fail with a typed error, not a panic"
                        ));
                    }
                }
                TokKind::Punct('[') => {
                    // `expr[<int literal>]`: an index that panics when the
                    // slice is short. Array literals/attributes/types are
                    // excluded by requiring an expression on the left.
                    let indexes_expression = i > 0
                        && matches!(
                            toks[i - 1].kind,
                            TokKind::Ident(_) | TokKind::Punct(')') | TokKind::Punct(']')
                        );
                    let literal_index = matches!(toks.get(i + 1), Some(t) if matches!(t.kind, TokKind::Int(_)))
                        && matches!(toks.get(i + 2), Some(t) if t.kind.is_punct(']'));
                    if indexes_expression && literal_index {
                        report(
                            "literal slice index in a panic-free path — use `get`, \
                             `split_first` or a length-checked helper"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L002 — record-kind exhaustiveness
// ---------------------------------------------------------------------------

/// Files whose `KIND_*` constants define a record protocol and must stay
/// exhaustive across encode, decode and tests.
pub const L002_PROTOCOL_FILES: &[&str] = &[
    "crates/zipline-server/src/wire.rs",
    "crates/zipline-engine/src/persist.rs",
];

const L002: &str = "L002";

fn l002_record_kind_exhaustiveness(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for decl_path in L002_PROTOCOL_FILES {
        let Some(decl_file) = ws.file(decl_path) else {
            continue;
        };
        for (name, decl_line) in kind_const_declarations(decl_file) {
            let mut has_encode = false;
            let mut has_decode = false;
            let mut has_test = false;
            for file in &ws.files {
                for (i, tok) in file.tokens.iter().enumerate() {
                    if tok.kind.ident() != Some(name.as_str()) {
                        continue;
                    }
                    // Skip the declaration itself.
                    if file.rel_path == *decl_path
                        && i > 0
                        && file.tokens[i - 1].kind.ident() == Some("const")
                    {
                        continue;
                    }
                    let in_test = file.rel_path.contains("/tests/") || file.in_test_scope(tok.line);
                    if in_test {
                        has_test = true;
                        continue;
                    }
                    // Decode site: a match arm (`KIND_X =>`, `KIND_X |`)
                    // or an equality comparison against a parsed kind.
                    let next = file.tokens.get(i + 1).map(|t| &t.kind);
                    let prev = i.checked_sub(1).map(|p| &file.tokens[p].kind);
                    let is_decode = matches!(next, Some(TokKind::FatArrow))
                        || matches!(next, Some(TokKind::Punct('|')))
                        || matches!(next, Some(TokKind::EqEq))
                        || matches!(prev, Some(TokKind::EqEq));
                    if is_decode {
                        has_decode = true;
                    } else {
                        has_encode = true;
                    }
                }
            }
            let mut missing = Vec::new();
            if !has_encode {
                missing.push("an encode site");
            }
            if !has_decode {
                missing.push("a decode match/comparison");
            }
            if !has_test {
                missing.push("test coverage (a `#[cfg(test)]` or tests/ reference)");
            }
            if !missing.is_empty() && !decl_file.is_allowed(L002, decl_line) {
                findings.push(finding(
                    decl_file,
                    decl_line,
                    L002,
                    format!(
                        "record kind `{name}` is missing {} — a kind that ships \
                         encode-only (or untested) breaks protocol exhaustiveness",
                        missing.join(" and ")
                    ),
                ));
            }
        }
    }
    findings
}

/// `const KIND_*` declarations in one file: `(name, line)`.
fn kind_const_declarations(file: &SourceFile) -> Vec<(String, u32)> {
    let mut decls = Vec::new();
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind.ident() == Some("const") {
            if let Some(next) = toks.get(i + 1) {
                if let Some(name) = next.kind.ident() {
                    if name.starts_with("KIND_") {
                        decls.push((name.to_string(), next.line));
                    }
                }
            }
        }
    }
    decls
}

// ---------------------------------------------------------------------------
// L003 — tracked-bench sync
// ---------------------------------------------------------------------------

const L003: &str = "L003";
const BENCHES_DIR: &str = "crates/zipline-bench/benches";
const REGRESSION_RS: &str = "crates/zipline-bench/src/regression.rs";

/// The tracked set is the bench gate's own constant — imported, not
/// copied, so the lint and the gate can never drift apart.
fn tracked_groups() -> &'static [&'static str] {
    zipline_bench::regression::TRACKED_GROUPS
}

fn l003_tracked_bench_sync(ws: &Workspace) -> Vec<Finding> {
    let tracked = tracked_groups();
    let mut findings = Vec::new();
    let mut registered: Vec<String> = Vec::new();
    for file in ws.files_under(BENCHES_DIR) {
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind.ident() != Some("benchmark_group") {
                continue;
            }
            if !matches!(toks.get(i + 1), Some(t) if t.kind.is_punct('(')) {
                continue;
            }
            match toks.get(i + 2).map(|t| &t.kind) {
                Some(TokKind::Str(group)) => {
                    registered.push(group.clone());
                    if !tracked.contains(&group.as_str()) && !file.is_allowed(L003, tok.line) {
                        findings.push(finding(
                            file,
                            tok.line,
                            L003,
                            format!(
                                "bench group `{group}` is not in the CI gate's tracked set \
                                 (zipline-bench regression::TRACKED_GROUPS) — add it to the \
                                 gate or allow it with a justification"
                            ),
                        ));
                    }
                }
                _ => {
                    if !file.is_allowed(L003, tok.line) {
                        findings.push(finding(
                            file,
                            tok.line,
                            L003,
                            "bench group name is not a string literal — the tracked-set \
                             check cannot see it; use a literal or allow with the \
                             expanded names"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
    // Reverse direction: a tracked group with no registration is a renamed
    // or deleted bench target — the bench gate would only notice at bench
    // time; the lint notices at build time. Anchored to the tracked-set
    // source so the fix site is obvious.
    if let Some(reg_file) = ws.file(REGRESSION_RS) {
        for group in tracked {
            if registered.iter().any(|g| g == group) {
                continue;
            }
            let line = reg_file
                .tokens
                .iter()
                .find(|t| matches!(&t.kind, TokKind::Str(s) if s == group))
                .map(|t| t.line)
                .unwrap_or(1);
            if !reg_file.is_allowed(L003, line) {
                findings.push(finding(
                    reg_file,
                    line,
                    L003,
                    format!(
                        "tracked bench group `{group}` has no `benchmark_group(\"{group}\")` \
                         registration under {BENCHES_DIR}/ — renamed or deleted bench target"
                    ),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L004 — deprecation expiry
// ---------------------------------------------------------------------------

const L004: &str = "L004";

fn l004_deprecation_expiry(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.kind.is_punct('#') {
                continue;
            }
            if !matches!(toks.get(i + 1), Some(t) if t.kind.is_punct('[')) {
                continue;
            }
            if toks.get(i + 2).and_then(|t| t.kind.ident()) != Some("deprecated") {
                continue;
            }
            if file.is_allowed(L004, tok.line) {
                continue;
            }
            let note = deprecated_note(toks, i + 2);
            let Some(note) = note else {
                findings.push(finding(
                    file,
                    tok.line,
                    L004,
                    "`#[deprecated]` without a note — deprecations must carry \
                     `note = \"…; remove in <version>\"` so the shim has a deadline",
                ));
                continue;
            };
            let Some(removal) = removal_version(&note) else {
                findings.push(finding(
                    file,
                    tok.line,
                    L004,
                    format!(
                        "deprecation note `{note}` names no removal version — state \
                         `remove in <version>` so the shim has a deadline"
                    ),
                ));
                continue;
            };
            if version_at_least(&ws.version, &removal) {
                let dotted = |v: &[u64]| {
                    v.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(".")
                };
                findings.push(finding(
                    file,
                    tok.line,
                    L004,
                    format!(
                        "deprecated item's removal deadline {} is reached (workspace is \
                         at {}) — delete the shim",
                        dotted(&removal),
                        dotted(&ws.version)
                    ),
                ));
            }
        }
    }
    findings
}

/// The note string of a `#[deprecated(...)]` attribute starting at the
/// `deprecated` identifier; handles `#[deprecated = "…"]` and
/// `#[deprecated(note = "…", since = "…")]`. `None` when no note exists.
fn deprecated_note(toks: &[Tok], deprecated_at: usize) -> Option<String> {
    match toks.get(deprecated_at + 1).map(|t| &t.kind) {
        Some(TokKind::Punct('=')) => match toks.get(deprecated_at + 2).map(|t| &t.kind) {
            Some(TokKind::Str(s)) => Some(s.clone()),
            _ => None,
        },
        Some(TokKind::Punct('(')) => {
            let mut j = deprecated_at + 2;
            let mut depth = 1i32;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => depth -= 1,
                    TokKind::Ident(name) if name == "note" && depth == 1 => {
                        if matches!(toks.get(j + 1), Some(t) if t.kind.is_punct('=')) {
                            if let Some(TokKind::Str(s)) = toks.get(j + 2).map(|t| &t.kind) {
                                return Some(s.clone());
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

/// Extracts the version after `remove in ` (case-insensitive) in a note.
fn removal_version(note: &str) -> Option<Vec<u64>> {
    let lower = note.to_lowercase();
    let at = lower.find("remove in ")?;
    let rest = &note[at + "remove in ".len()..];
    let rest = rest.trim_start().trim_start_matches(['v', 'V']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    parse_version(&rest[..end])
}

// ---------------------------------------------------------------------------
// L005 — error-enum hygiene
// ---------------------------------------------------------------------------

const L005: &str = "L005";

fn l005_error_enum_hygiene(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        let Some(crate_prefix) = crate_src_prefix(&file.rel_path) else {
            continue;
        };
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind.ident() != Some("pub") {
                continue;
            }
            // Plain `pub` only: `pub(crate)` enums are not public API.
            if toks.get(i + 1).and_then(|t| t.kind.ident()) != Some("enum") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 2) else {
                continue;
            };
            let Some(name) = name_tok.kind.ident() else {
                continue;
            };
            if !name.ends_with("Error") || file.in_test_scope(tok.line) {
                continue;
            }
            if file.is_allowed(L005, tok.line) {
                continue;
            }
            let attrs = attribute_idents_before(toks, i);
            if !attrs.iter().any(|a| a == "non_exhaustive") {
                findings.push(finding(
                    file,
                    tok.line,
                    L005,
                    format!(
                        "public error enum `{name}` is not `#[non_exhaustive]` — \
                         downstream matches must stay open to new failure modes"
                    ),
                ));
            }
            for (trait_name, what) in [
                ("Display", "`Display` (human-readable message)"),
                ("Error", "`std::error::Error` (source chaining)"),
            ] {
                let implemented = ws
                    .files_under(crate_prefix)
                    .any(|f| has_impl_for(&f.tokens, trait_name, name));
                if !implemented {
                    findings.push(finding(
                        file,
                        tok.line,
                        L005,
                        format!("public error enum `{name}` does not implement {what}"),
                    ));
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// L006 — codec-id exhaustiveness
// ---------------------------------------------------------------------------

/// The file whose `CODEC_*` constants define the codec id space.
pub const L006_REGISTRY_FILE: &str = "crates/zipline-engine/src/registry.rs";

const L006: &str = "L006";

/// Every `CODEC_*` constant declared in the codec registry must be
/// registered (a `.entry(CODEC_X, …)` call in the registry file), appear at
/// an encode site, in a decode match/comparison, and in at least one test.
/// A codec id that only exists as a constant is a wire byte nothing can
/// produce or parse — exactly the drift this rule pins down. Occurrences
/// inside `use` declarations are ignored: a re-export is not an encode site.
fn l006_codec_id_exhaustiveness(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(decl_file) = ws.file(L006_REGISTRY_FILE) else {
        return findings;
    };
    for (name, decl_line) in codec_const_declarations(decl_file) {
        let mut has_entry = false;
        let mut has_encode = false;
        let mut has_decode = false;
        let mut has_test = false;
        for file in &ws.files {
            let in_use = use_statement_tokens(&file.tokens);
            for (i, tok) in file.tokens.iter().enumerate() {
                if tok.kind.ident() != Some(name.as_str()) || in_use[i] {
                    continue;
                }
                // Skip the declaration itself.
                if file.rel_path == L006_REGISTRY_FILE
                    && i > 0
                    && file.tokens[i - 1].kind.ident() == Some("const")
                {
                    continue;
                }
                let in_test = file.rel_path.contains("/tests/") || file.in_test_scope(tok.line);
                if in_test {
                    has_test = true;
                    continue;
                }
                // Registry entry: the first argument of an `.entry(…)` call
                // in the registry file. Registration alone is neither an
                // encode nor a decode site.
                if file.rel_path == L006_REGISTRY_FILE
                    && i >= 2
                    && file.tokens[i - 1].kind.is_punct('(')
                    && file.tokens[i - 2].kind.ident() == Some("entry")
                {
                    has_entry = true;
                    continue;
                }
                let next = file.tokens.get(i + 1).map(|t| &t.kind);
                let prev = i.checked_sub(1).map(|p| &file.tokens[p].kind);
                let is_decode = matches!(next, Some(TokKind::FatArrow))
                    || matches!(next, Some(TokKind::Punct('|')))
                    || matches!(next, Some(TokKind::EqEq))
                    || matches!(prev, Some(TokKind::EqEq));
                if is_decode {
                    has_decode = true;
                } else {
                    has_encode = true;
                }
            }
        }
        let mut missing = Vec::new();
        if !has_entry {
            missing.push("a registry entry (`.entry(…)` in the registry)");
        }
        if !has_encode {
            missing.push("an encode site");
        }
        if !has_decode {
            missing.push("a decode match/comparison");
        }
        if !has_test {
            missing.push("test coverage (a `#[cfg(test)]` or tests/ reference)");
        }
        if !missing.is_empty() && !decl_file.is_allowed(L006, decl_line) {
            findings.push(finding(
                decl_file,
                decl_line,
                L006,
                format!(
                    "codec id `{name}` is missing {} — an id the registry cannot \
                     build, nothing emits or nothing parses is codec-space drift",
                    missing.join(" and ")
                ),
            ));
        }
    }
    findings
}

/// `const CODEC_*` declarations in one file: `(name, line)`.
fn codec_const_declarations(file: &SourceFile) -> Vec<(String, u32)> {
    let mut decls = Vec::new();
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind.ident() == Some("const") {
            if let Some(next) = toks.get(i + 1) {
                if let Some(name) = next.kind.ident() {
                    if name.starts_with("CODEC_") {
                        decls.push((name.to_string(), next.line));
                    }
                }
            }
        }
    }
    decls
}

/// Marks every token that belongs to a `use` declaration (from the `use`
/// keyword through its terminating `;`), so imports and re-exports can be
/// excluded from site classification.
fn use_statement_tokens(toks: &[Tok]) -> Vec<bool> {
    let mut in_use = vec![false; toks.len()];
    let mut active = false;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind.ident() == Some("use") {
            active = true;
        }
        in_use[i] = active;
        if active && tok.kind.is_punct(';') {
            active = false;
        }
    }
    in_use
}

/// The `src/` tree prefix of the crate owning `rel_path`, or `None` for
/// files outside any crate's `src/` (benches, tests, examples).
fn crate_src_prefix(rel_path: &str) -> Option<&str> {
    if rel_path.starts_with("src/") {
        return Some("src/");
    }
    let rest = rel_path.strip_prefix("crates/")?;
    let crate_name_len = rest.find('/')?;
    let after = &rest[crate_name_len..];
    if after.starts_with("/src/") {
        Some(&rel_path[.."crates/".len() + crate_name_len + "/src/".len()])
    } else {
        None
    }
}

/// Idents inside the contiguous run of `#[…]` attributes directly above
/// token `i` (derives, `non_exhaustive`, `doc`, …).
fn attribute_idents_before(toks: &[Tok], mut i: usize) -> Vec<String> {
    let mut idents = Vec::new();
    while i > 0 {
        if !toks[i - 1].kind.is_punct(']') {
            break;
        }
        // Walk back to the matching '['.
        let mut depth = 0i32;
        let mut j = i - 1;
        loop {
            if toks[j].kind.is_punct(']') {
                depth += 1;
            } else if toks[j].kind.is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return idents;
            }
            j -= 1;
        }
        if j == 0 || !toks[j - 1].kind.is_punct('#') {
            break;
        }
        for t in &toks[j + 1..i - 1] {
            if let Some(name) = t.kind.ident() {
                idents.push(name.to_string());
            }
        }
        i = j - 1;
    }
    idents
}

/// True when the token stream contains `… <trait_name> for <type_name>`.
fn has_impl_for(toks: &[Tok], trait_name: &str, type_name: &str) -> bool {
    toks.windows(3).any(|w| {
        w[0].kind.ident() == Some(trait_name)
            && w[1].kind.ident() == Some("for")
            && w[2].kind.ident() == Some(type_name)
    })
}
