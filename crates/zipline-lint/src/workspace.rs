//! Workspace discovery: walks the repository tree, lexes every first-party
//! `.rs` file, and reads the workspace version from the root `Cargo.toml`.
//!
//! Skipped subtrees:
//!
//! * `target/` — build output;
//! * `vendor/` — offline API-subset shims for crates.io dependencies; they
//!   are third-party stand-ins, not repo code, and deliberately do not
//!   follow repo conventions;
//! * `fixtures/` — lint-rule test fixtures are *intentionally* full of
//!   violations and must never count against the live tree;
//! * dot-directories (`.git/`, `.github/` has no Rust anyway).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// The lexed view of every first-party source file plus workspace
/// metadata the rules need.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root the walk started from.
    pub root: PathBuf,
    /// Every `.rs` file found, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `version` from `[workspace.package]` in the root `Cargo.toml`,
    /// parsed as numeric components (`0.1.0` → `[0, 1, 0]`).
    pub version: Vec<u64>,
}

impl Workspace {
    /// Walks `root` and lexes everything. I/O errors are real errors — a
    /// linter that silently skips unreadable files is lying about coverage.
    pub fn load(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        let mut paths = Vec::new();
        collect_rs_files(&root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(rel, &text));
        }
        let version = workspace_version(&root)?;
        Ok(Self {
            root,
            files,
            version,
        })
    }

    /// Files whose relative path starts with `prefix` (or equals it).
    pub fn files_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| f.rel_path == prefix || f.rel_path.starts_with(prefix))
    }

    /// The file at exactly this relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads `version = "…"` from the `[workspace.package]` section of the
/// root manifest. Absent version (or manifest) is `[0]` — rules that
/// compare against it (L004) then only fire on explicit `0.x` deadlines,
/// which is the conservative direction.
fn workspace_version(root: &Path) -> io::Result<Vec<u64>> {
    let manifest = root.join("Cargo.toml");
    let text = match fs::read_to_string(&manifest) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(vec![0]),
        Err(e) => return Err(e),
    };
    let mut in_section = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.package]" || line == "[package]";
            continue;
        }
        if in_section {
            if let Some(rest) = line.strip_prefix("version") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    if let Some(v) = parse_quoted_version(rest) {
                        return Ok(v);
                    }
                }
            }
        }
    }
    Ok(vec![0])
}

fn parse_quoted_version(s: &str) -> Option<Vec<u64>> {
    let s = s.trim();
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    parse_version(&s[..end])
}

/// Parses `1.2.3` (any component count ≥ 1) into its numeric components.
pub fn parse_version(s: &str) -> Option<Vec<u64>> {
    let parts: Vec<u64> = s
        .trim()
        .trim_end_matches(|c: char| !c.is_ascii_digit())
        .split('.')
        .map(|p| p.parse().ok())
        .collect::<Option<Vec<u64>>>()?;
    if parts.is_empty() {
        None
    } else {
        Some(parts)
    }
}

/// Compares dotted versions component-wise, treating missing components
/// as zero (`0.2` == `0.2.0`).
pub fn version_at_least(current: &[u64], target: &[u64]) -> bool {
    let len = current.len().max(target.len());
    for i in 0..len {
        let c = current.get(i).copied().unwrap_or(0);
        let t = target.get(i).copied().unwrap_or(0);
        match c.cmp(&t) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_parse_and_compare() {
        assert_eq!(parse_version("0.2.0"), Some(vec![0, 2, 0]));
        assert_eq!(parse_version("1.10"), Some(vec![1, 10]));
        assert_eq!(parse_version("0.3."), Some(vec![0, 3]));
        assert_eq!(parse_version("x.y"), None);
        assert!(version_at_least(&[0, 2, 0], &[0, 2]));
        assert!(version_at_least(&[0, 3], &[0, 2, 9]));
        assert!(!version_at_least(&[0, 1, 9], &[0, 2]));
    }
}
