//! CLI driver: `cargo run -p zipline-lint -- --workspace`.
//!
//! Exit status 0 when the tree is clean, 1 when there are findings,
//! 2 on usage or I/O errors — so CI can distinguish "violations" from
//! "the linter itself failed to run".

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: zipline-lint --workspace [--root <path>]\n\
         \n\
         Checks the workspace invariants (L001..L006) and prints findings\n\
         as `path:line: RULE: message`. Exits 1 on findings, 2 on errors.\n\
         \n\
         --workspace      lint the whole workspace (required; the only mode)\n\
         --root <path>    workspace root to lint (default: ancestor of the\n\
                          current directory containing Cargo.toml, else `.`)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut workspace_mode = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace_mode = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !workspace_mode {
        usage();
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let findings = match zipline_lint::run(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("zipline-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if findings.is_empty() {
        eprintln!("zipline-lint: workspace clean ({} ok)", root.display());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!(
        "zipline-lint: {} finding{} — see `crates/zipline-lint/README.md` \
         for the rules and the allow syntax",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

/// Nearest ancestor of the current directory containing a `Cargo.toml`
/// with a `[workspace]` table; falls back to the current directory. Lets
/// the binary run from any subdirectory, matching cargo's own behavior.
fn find_workspace_root() -> PathBuf {
    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}
