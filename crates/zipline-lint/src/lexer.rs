//! A deliberately small Rust lexer: just enough token structure for the
//! lint rules, with full string/char/comment awareness so a `panic!` inside
//! a string literal or a doc comment never trips a rule.
//!
//! The scanner handles the syntax that actually occurs in this workspace
//! (and the syntax that would otherwise cause false positives):
//!
//! * line comments (`//`, `///`, `//!`) — captured with line numbers so the
//!   allow-directive parser can see them;
//! * nested block comments (`/* /* */ */`);
//! * string literals, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte
//!   and byte-raw strings — captured with their *content* so rules can read
//!   bench group names and deprecation notes;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * identifiers, integer/float literals, and punctuation (with `=>`, `==`,
//!   `::`, `..`, `->` kept as single tokens where a rule cares).
//!
//! It is *not* a parser: rules pattern-match over the token stream. That is
//! the right trade for an offline workspace with no `syn` — the rules below
//! need token adjacency, not a full AST.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token kinds the rules can pattern-match over.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `match`, `KIND_DATA`, …).
    Ident(String),
    /// Integer literal (`0`, `0x41`, `1_000`), kept as written.
    Int(String),
    /// Float literal (`1.5`, `1e9`).
    Float(String),
    /// String literal of any flavor, with the raw *content* (quotes,
    /// prefixes and hashes stripped; escapes left unprocessed).
    Str(String),
    /// Char or byte literal (content not needed by any rule).
    Char,
    /// Lifetime (`'a`); distinct from chars so `'a'` never confuses rules.
    Lifetime,
    /// Single punctuation character (`#`, `[`, `(`, `.`, `!`, …).
    Punct(char),
    /// `=>`
    FatArrow,
    /// `==`
    EqEq,
    /// `::`
    PathSep,
    /// `..` (also covers the head of `..=` and `...`)
    DotDot,
    /// `->`
    ThinArrow,
}

impl TokKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is exactly this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokKind::Punct(p) if *p == c)
    }
}

/// A captured `//` comment (content after the slashes, untrimmed).
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//` (or inside the `/* */`).
    pub text: String,
}

/// The full lex of one source file: tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order (line + block).
    pub comments: Vec<Comment>,
}

/// Lexes `source`; never fails — unterminated constructs are consumed to
/// end-of-file, which is the forgiving behavior a linter wants (the
/// compiler, not the linter, owns syntax errors).
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr) => {
            out.tokens.push(Tok { line, kind: $kind })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..end].to_string(),
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let comment_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut end = start;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'\n' {
                        line += 1;
                        end += 1;
                    } else if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let content_end = end.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: comment_line,
                    text: source[start..content_end].to_string(),
                });
                i = end;
            }
            '"' => {
                let (content, next, newlines) = scan_string(source, i + 1);
                push!(TokKind::Str(content));
                line += newlines;
                i = next;
            }
            'r' | 'b' if is_string_prefix(bytes, i) => {
                // r"…", r#"…"#, b"…", br"…", rb is not rust but harmless.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // `j` now sits on the opening quote.
                let raw = source[i..j].contains('r');
                if raw {
                    let (content, next, newlines) = scan_raw_string(source, j + 1, hashes);
                    push!(TokKind::Str(content));
                    line += newlines;
                    i = next;
                } else {
                    let (content, next, newlines) = scan_string(source, j + 1);
                    push!(TokKind::Str(content));
                    line += newlines;
                    i = next;
                }
            }
            '\'' => {
                // Lifetime vs. char literal: a lifetime is `'` + ident with
                // no closing quote right after the identifier.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Escaped char literal: consume through the close quote.
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    push!(TokKind::Char);
                    i = (j + 1).min(bytes.len());
                } else {
                    let ident_end = scan_ident_end(bytes, j);
                    if ident_end > j && bytes.get(ident_end) != Some(&b'\'') {
                        push!(TokKind::Lifetime);
                        i = ident_end;
                    } else {
                        // 'x' or '∂' (multi-byte): consume to closing quote.
                        while j < bytes.len() && bytes[j] != b'\'' {
                            if bytes[j] == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                        push!(TokKind::Char);
                        i = (j + 1).min(bytes.len());
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let end = scan_ident_end(bytes, i);
                push!(TokKind::Ident(source[i..end].to_string()));
                i = end;
            }
            c if c.is_ascii_digit() => {
                let (kind, end) = scan_number(source, i);
                push!(kind);
                i = end;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                push!(TokKind::FatArrow);
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                push!(TokKind::EqEq);
                i += 2;
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                push!(TokKind::PathSep);
                i += 2;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') => {
                push!(TokKind::DotDot);
                i += 2;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                push!(TokKind::ThinArrow);
                i += 2;
            }
            other => {
                push!(TokKind::Punct(other));
                i += other.len_utf8();
            }
        }
    }
    out
}

fn is_string_prefix(bytes: &[u8], i: usize) -> bool {
    // `r`/`b` starts a string prefix only when the run of r/b/# characters
    // ends at a double quote AND the prefix char is not part of a longer
    // identifier (e.g. `radius` or `break`).
    if i > 0 {
        let prev = bytes[i - 1] as char;
        if prev.is_ascii_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    // More than two prefix chars means an identifier like `rrr`.
    if j - i > 2 {
        return false;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_ident_end(bytes: &[u8], start: usize) -> usize {
    let mut end = start;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            end += 1;
        } else {
            break;
        }
    }
    end
}

/// Scans a non-raw string body starting just after the opening quote.
/// Returns (content, index past the closing quote, newlines crossed).
fn scan_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                return (source[start..i].to_string(), i + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[start..].to_string(), bytes.len(), newlines)
}

/// Scans a raw string body (`hashes` trailing `#`s close it) starting just
/// after the opening quote.
fn scan_raw_string(source: &str, start: usize, hashes: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (source[start..i].to_string(), i + 1 + hashes, newlines);
            }
        }
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (source[start..].to_string(), bytes.len(), newlines)
}

fn scan_number(source: &str, start: usize) -> (TokKind, usize) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut float = false;
    // Hex/octal/binary prefixes keep everything in the Int bucket.
    if bytes[i] == b'0'
        && matches!(
            bytes.get(i + 1),
            Some(&b'x') | Some(&b'X') | Some(&b'o') | Some(&b'b')
        )
    {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (TokKind::Int(source[start..i].to_string()), i);
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() || c == '_' {
            i += 1;
        } else if c == '.' && !float && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
            // `1.5` is a float; `1..n` is an int followed by a range.
            float = true;
            i += 1;
        } else if (c == 'e' || c == 'E')
            && bytes
                .get(i + 1)
                .is_some_and(|b| b.is_ascii_digit() || *b == b'-' || *b == b'+')
        {
            float = true;
            i += 2;
        } else if c.is_ascii_alphabetic() {
            // Type suffix (`u8`, `f64`, `usize`): consume, keep the kind.
            if c == 'f' {
                float = true;
            }
            i += 1;
        } else {
            break;
        }
    }
    let text = source[start..i].to_string();
    if float {
        (TokKind::Float(text), i)
    } else {
        (TokKind::Int(text), i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed.tokens.iter().filter_map(|t| t.kind.ident()).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r###"
            // panic! in a comment is fine
            let s = "unwrap() inside a string";
            let r = r#"panic!("raw")"#;
            /* block with unreachable!() and /* nesting */ still one comment */
            let c = 'p';
        "###;
        let lexed = lex(src);
        assert!(!idents(&lexed).contains(&"panic"));
        assert!(!idents(&lexed).contains(&"unwrap"));
        assert!(!idents(&lexed).contains(&"unreachable"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("panic!"));
        let strings: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            strings,
            vec!["unwrap() inside a string", r#"panic!("raw")"#]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nunwrap";
        let lexed = lex(src);
        let last = lexed.tokens.last().unwrap();
        assert_eq!(last.kind, TokKind::Ident("unwrap".into()));
        assert_eq!(last.line, 5);
    }

    #[test]
    fn composite_punctuation_stays_composite() {
        let lexed = lex("match k { A => 1, _ if a == b => 2 }; a..b; x::y; fn f() -> u8 {}");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::FatArrow));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::EqEq));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::DotDot));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::PathSep));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::ThinArrow));
    }

    #[test]
    fn numbers_classify_and_carry_text() {
        let lexed = lex("0x41 1_000 1.5 1e9 9000 64u32");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokKind::Int("0x41".into()),
                &TokKind::Int("1_000".into()),
                &TokKind::Float("1.5".into()),
                &TokKind::Float("1e9".into()),
                &TokKind::Int("9000".into()),
                &TokKind::Int("64u32".into()),
            ]
        );
    }

    #[test]
    fn byte_and_raw_prefixes_do_not_eat_identifiers() {
        let lexed = lex("let radius = b\"bytes\"; let brr = r\"raw\";");
        let ids = idents(&lexed);
        assert!(ids.contains(&"radius"));
        assert!(ids.contains(&"brr"));
    }
}
