//! zipline-lint: the workspace invariant checker.
//!
//! A deliberately small, dependency-free static analyzer for *this*
//! repository. It does not try to be a general Rust parser — it lexes
//! accurately (strings, comments, raw strings, lifetimes) and then pattern
//! matches on the token stream, which is exactly enough to enforce the
//! project-specific invariants that `rustc` and `clippy` cannot see:
//!
//! * **L001 no-panic-paths** — socket- and disk-facing byte handling
//!   (`zipline-server/src`, `zipline-engine/src/persist.rs`) must not
//!   contain `.unwrap()` / `.expect()` / `panic!`-family macros / literal
//!   slice indexing outside test code. A malformed frame must surface as a
//!   typed error, never a crash.
//! * **L002 record-kind exhaustiveness** — every `KIND_*` record constant
//!   declared in the wire/persist protocol files must appear at an encode
//!   site, in a decode match/comparison, and in at least one test.
//! * **L003 tracked-bench sync** — every criterion bench group under
//!   `zipline-bench/benches/` is either in the CI regression gate's
//!   tracked set (imported from `zipline_bench::regression`, not copied)
//!   or carries an explicit allow; tracked groups that no longer exist
//!   are flagged in the other direction.
//! * **L004 deprecation-expiry** — `#[deprecated]` must carry a note with
//!   `remove in <version>`; once the workspace version reaches it, the
//!   lint fails until the shim is deleted.
//! * **L005 error-enum hygiene** — public `*Error` enums are
//!   `#[non_exhaustive]` and implement `Display` + `std::error::Error`.
//! * **L006 codec-id exhaustiveness** — every `CODEC_*` constant declared
//!   in `zipline-engine/src/registry.rs` must have a registry `.entry(…)`,
//!   an encode site, a decode match/comparison, and test coverage, so no
//!   codec id ships that the registry cannot build or nothing can parse.
//!
//! Findings print as `path:line: RULE: message` and a non-empty set makes
//! the binary exit non-zero, so CI can gate on it directly. Opt-outs are
//! per-site comments with a mandatory justification:
//!
//! ```text
//! // zipline-lint: allow(L001): CRC spec parameters are compile-time constants
//! ```

pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use rules::{run_all, Finding};
pub use workspace::Workspace;

use std::io;
use std::path::Path;

/// Loads the workspace rooted at `root` and runs every rule. Findings are
/// sorted by path, line, rule.
pub fn run(root: impl AsRef<Path>) -> io::Result<Vec<Finding>> {
    let ws = Workspace::load(root)?;
    Ok(rules::run_all(&ws))
}
